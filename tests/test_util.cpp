#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "util/executor.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace drel {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, SplitBasic) {
    const auto parts = util::split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = util::split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
    const auto parts = util::split("hello", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, SplitEmptyString) {
    const auto parts = util::split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Strings, TrimBothEnds) {
    EXPECT_EQ(util::trim("  hello \t\n"), "hello");
    EXPECT_EQ(util::trim("hello"), "hello");
    EXPECT_EQ(util::trim("   "), "");
    EXPECT_EQ(util::trim(""), "");
}

TEST(Strings, ParseDoubleValid) {
    EXPECT_DOUBLE_EQ(util::parse_double("3.25"), 3.25);
    EXPECT_DOUBLE_EQ(util::parse_double(" -1e3 "), -1000.0);
    EXPECT_DOUBLE_EQ(util::parse_double("0"), 0.0);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
    EXPECT_THROW(util::parse_double("abc"), std::invalid_argument);
    EXPECT_THROW(util::parse_double("1.5x"), std::invalid_argument);
    EXPECT_THROW(util::parse_double(""), std::invalid_argument);
}

TEST(Strings, Join) {
    EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(util::join({}, ","), "");
    EXPECT_EQ(util::join({"one"}, ","), "one");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(util::starts_with("wasserstein", "wass"));
    EXPECT_FALSE(util::starts_with("kl", "wass"));
    EXPECT_TRUE(util::starts_with("x", ""));
}

// ------------------------------------------------------------------ table

TEST(Table, PrintAlignsColumns) {
    util::Table t({"method", "acc"});
    t.add_row({"local-erm", "0.71"});
    t.add_row({"em-dro", "0.84"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("method"), std::string::npos);
    EXPECT_NE(out.find("em-dro"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
    util::Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
    EXPECT_THROW(util::Table({}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
    util::Table t({"x", "y"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FmtPrecision) {
    EXPECT_EQ(util::Table::fmt(0.123456, 3), "0.123");
    EXPECT_EQ(util::Table::fmt(2.0, 1), "2.0");
}

// -------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresElapsedTime) {
    util::Stopwatch watch;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    EXPECT_GE(watch.elapsed_seconds(), 0.0);
    EXPECT_GE(watch.elapsed_millis(), watch.elapsed_seconds());  // ms >= s numerically
}

TEST(Stopwatch, ResetRestarts) {
    util::Stopwatch watch;
    watch.reset();
    EXPECT_LT(watch.elapsed_seconds(), 10.0);
}

// ---------------------------------------------------------------- logging

TEST(Logging, LevelFilterRoundTrip) {
    const auto original = util::log_level();
    util::set_log_level(util::LogLevel::kError);
    EXPECT_EQ(util::log_level(), util::LogLevel::kError);
    // Below-threshold line must be a no-op (no crash, no output assertion
    // needed — we only exercise the filter path).
    DREL_LOG_DEBUG("test") << "invisible";
    util::set_log_level(original);
}

TEST(Logging, StreamFormatsArbitraryTypes) {
    const auto original = util::log_level();
    util::set_log_level(util::LogLevel::kOff);
    DREL_LOG_ERROR("test") << "x=" << 42 << " y=" << 1.5;
    util::set_log_level(original);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
    util::ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
    util::ThreadPool pool(2);
    auto future = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(util::ThreadPool pool(0), std::invalid_argument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> hits(1000);
    util::parallel_for(1000, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallbackMatchesParallel) {
    std::vector<double> serial(500);
    std::vector<double> parallel(500);
    const auto body = [](std::size_t i) {
        return static_cast<double>(i) * 1.5 + static_cast<double>(i % 7);
    };
    util::parallel_for(500, 1, [&](std::size_t i) { serial[i] = body(i); });
    util::parallel_for(500, 6, [&](std::size_t i) { parallel[i] = body(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, RethrowsBodyException) {
    EXPECT_THROW(util::parallel_for(10, 4,
                                    [](std::size_t i) {
                                        if (i == 5) throw std::logic_error("bad index");
                                    }),
                 std::logic_error);
}

TEST(ParallelFor, HandlesEmptyAndSingleton) {
    int calls = 0;
    util::parallel_for(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    util::parallel_for(1, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

// Regression for the old per-call-pool destruction-order race: a body that
// throws used to let ~ThreadPool join workers AFTER the loop's atomic
// counter and futures had been destroyed (stack-use-after-scope, visible
// under ASan/TSan). Repeat under a high runner count to give every
// interleaving a chance.
TEST(ParallelFor, ThrowingBodyUnderHighThreadCountIsLifetimeSafe) {
    for (int rep = 0; rep < 25; ++rep) {
        EXPECT_THROW(util::parallel_for(10000, 16,
                                        [](std::size_t i) {
                                            if (i == 37) throw std::logic_error("bad");
                                        }),
                     std::logic_error);
    }
}

TEST(ParallelFor, FirstExceptionCancelsRemainingIterations) {
    constexpr std::size_t kCount = 1000000;
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(util::parallel_for(kCount, 8,
                                    [&](std::size_t i) {
                                        if (i == 0) throw std::runtime_error("stop");
                                        executed.fetch_add(1, std::memory_order_relaxed);
                                    }),
                 std::runtime_error);
    // Cooperative cancellation: runners stop claiming once the failure flag
    // is up, so only a small prefix of the range can have executed.
    EXPECT_LT(executed.load(), kCount / 2);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
    std::atomic<int> inner_calls{0};
    util::parallel_for(8, 4, [&](std::size_t) {
        util::parallel_for(100, 4, [&](std::size_t) {
            inner_calls.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_calls.load(), 800);
}

TEST(ParallelFor, ConcurrentCallersShareTheGlobalExecutor) {
    std::vector<std::thread> callers;
    std::vector<std::atomic<int>> counts(4);
    for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&, c] {
            util::parallel_for(500, 4, [&](std::size_t) {
                counts[static_cast<std::size_t>(c)].fetch_add(1, std::memory_order_relaxed);
            });
        });
    }
    for (auto& t : callers) t.join();
    for (const auto& count : counts) EXPECT_EQ(count.load(), 500);
}

TEST(ParallelForChunked, CoversRangeExactlyOnceWithExplicitGrain) {
    std::vector<std::atomic<int>> hits(1003);
    util::parallel_for_chunked(1003, 4, 64, [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(end, 1003u);
        ASSERT_LE(end - begin, 64u);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunked, AutoGrainCoversRangeExactlyOnce) {
    std::vector<std::atomic<int>> hits(777);
    util::parallel_for_chunked(777, 8, 0, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
    // Rounding-sensitive terms: any change in association order would show.
    const auto map = [](std::size_t i) {
        return std::sin(static_cast<double>(i) * 0.73) * 1e-3 + 1.0 / (1.0 + static_cast<double>(i));
    };
    const auto combine = [](double a, double b) { return a + b; };
    const double serial = util::parallel_reduce(12345, 0.0, map, combine, 1);
    for (const std::size_t threads : {2u, 4u, 8u}) {
        const double parallel = util::parallel_reduce(12345, 0.0, map, combine, threads);
        EXPECT_EQ(serial, parallel) << "threads=" << threads;
    }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
    EXPECT_EQ(util::parallel_reduce(
                  0, 42.0, [](std::size_t) { return 1.0; },
                  [](double a, double b) { return a + b; }, 4),
              42.0);
}

TEST(Executor, LocalInstanceRunsIndependentOfGlobal) {
    util::Executor executor(4);
    EXPECT_EQ(executor.max_threads(), 4u);
    std::atomic<int> counter{0};
    executor.parallel_for(257, 4, [&](std::size_t) {
        counter.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(counter.load(), 257);
}

TEST(Executor, SerialInstanceNeverSpawnsThreads) {
    util::Executor executor(1);
    const auto main_id = std::this_thread::get_id();
    executor.parallel_for(100, 8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), main_id);
    });
}

// ----------------------------------------------------- thread pool shutdown

TEST(ThreadPool, DrainPolicyRunsEverythingQueuedBeforeJoin) {
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    {
        util::ThreadPool pool(2, util::ShutdownPolicy::kDrain);
        for (int i = 0; i < 64; ++i) {
            futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
        }
    }  // destructor drains
    for (auto& f : futures) EXPECT_NO_THROW(f.get());
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, AbandonPolicyBreaksPromisesOfQueuedTasks) {
    util::ThreadPool pool(1, util::ShutdownPolicy::kAbandon);
    std::promise<void> gate;
    std::shared_future<void> gate_future = gate.get_future().share();
    std::promise<void> started;
    auto running = pool.submit([&, gate_future] {
        started.set_value();
        gate_future.wait();
    });
    started.get_future().wait();  // the lone worker is now inside the task
    std::vector<std::future<void>> queued;
    for (int i = 0; i < 8; ++i) queued.push_back(pool.submit([] {}));

    std::thread shutter([&pool] { pool.shutdown(); });
    while (!pool.is_shutting_down()) std::this_thread::yield();
    gate.set_value();  // release the in-flight task only after stop is signalled
    shutter.join();

    EXPECT_NO_THROW(running.get());  // in-flight task finished normally
    for (auto& f : queued) {
        // Abandoned tasks must fail fast with broken_promise, never hang.
        EXPECT_THROW(f.get(), std::future_error);
    }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
    util::ThreadPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ManyProducersSubmitConcurrently) {
    util::ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::mutex futures_mutex;
    std::vector<std::future<void>> futures;
    std::vector<std::thread> producers;
    for (int p = 0; p < 8; ++p) {
        producers.emplace_back([&] {
            for (int i = 0; i < 200; ++i) {
                auto f = pool.submit([&counter] { counter.fetch_add(1); });
                const std::lock_guard<std::mutex> lock(futures_mutex);
                futures.push_back(std::move(f));
            }
        });
    }
    for (auto& t : producers) t.join();
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 1600);
}

}  // namespace
}  // namespace drel
