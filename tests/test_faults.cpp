// Chaos suite for the deterministic fault-injection layer (edgesim/faults.hpp)
// and the simulators' graceful-degradation paths.
//
// The contract under test: for ANY FaultConfig (rates up to 1.0 across the
// board) and any seed, both simulators terminate without throwing, report a
// DegradedReason per device instead of dying, stay bit-identical across
// thread counts, and degrade monotonically as the fault rate rises.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/em_dro.hpp"
#include "dp/mixture_prior.hpp"
#include "dro/ambiguity.hpp"
#include "edgesim/faults.hpp"
#include "edgesim/lifecycle.hpp"
#include "edgesim/membership.hpp"
#include "edgesim/simulation.hpp"
#include "edgesim/transfer.hpp"
#include "models/loss.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::edgesim {
namespace {

using test_support::bits_equal;

// ------------------------------------------------------------- config layer

TEST(FaultConfig, ValidationRejectsNonPhysicalValues) {
    FaultConfig config;
    EXPECT_NO_THROW(config.validate());

    config = FaultConfig{};
    config.crash_prob = 1.5;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = FaultConfig{};
    config.upload_fail_prob = -0.2;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = FaultConfig{};
    config.max_upload_attempts = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = FaultConfig{};
    config.upload_backoff_base_seconds = -1.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = FaultConfig{};
    config.upload_backoff_jitter = 2.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = FaultConfig{};
    config.round_deadline_seconds = -1.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    // The plan constructor enforces the same contract.
    FaultConfig bad;
    bad.straggler_prob = 7.0;
    stats::Rng rng(1);
    EXPECT_THROW(FaultPlan(bad, rng), std::invalid_argument);
}

TEST(FaultConfig, UniformClampsAndSetsEveryRate) {
    const FaultConfig half = FaultConfig::uniform(0.5);
    EXPECT_DOUBLE_EQ(half.crash_prob, 0.5);
    EXPECT_DOUBLE_EQ(half.upload_garble_prob, 0.5);
    EXPECT_TRUE(half.any());

    const FaultConfig clamped = FaultConfig::uniform(3.0);
    EXPECT_DOUBLE_EQ(clamped.crash_prob, 1.0);
    EXPECT_NO_THROW(clamped.validate());
    EXPECT_FALSE(FaultConfig::uniform(-1.0).any());
}

TEST(DegradedReasonNames, AreStableLowercase) {
    EXPECT_STREQ(to_string(DegradedReason::kNone), "none");
    EXPECT_STREQ(to_string(DegradedReason::kCrashed), "crashed");
    EXPECT_STREQ(to_string(DegradedReason::kStraggler), "straggler");
    EXPECT_STREQ(to_string(DegradedReason::kFallbackLocalErm), "fallback_local_erm");
    EXPECT_STREQ(to_string(DegradedReason::kStalePrior), "stale_prior");
    EXPECT_STREQ(to_string(DegradedReason::kUploadDropped), "upload_dropped");
    EXPECT_STREQ(to_string(DegradedReason::kNonFinite), "non_finite");
}

// --------------------------------------------------------------- plan layer

TEST(FaultPlan, InactiveByDefaultAndWhenAllRatesZero) {
    const FaultPlan inactive;
    EXPECT_FALSE(inactive.active());
    const DeviceFaultDecision d = inactive.device_faults(3, 7);
    EXPECT_FALSE(d.crash || d.straggler || d.prior_corrupt || d.prior_stale ||
                 d.link_outage);
    const UploadOutcome up = inactive.upload_outcome(3, 7);
    EXPECT_TRUE(up.delivered);
    EXPECT_EQ(up.attempts, 1);
    EXPECT_EQ(up.retries, 0);

    stats::Rng rng(5);
    const FaultPlan zeros(FaultConfig{}, rng);
    EXPECT_FALSE(zeros.active());
}

TEST(FaultPlan, DecisionsArePureFunctionsOfTheCell) {
    stats::Rng rng(11);
    const FaultPlan plan(FaultConfig::uniform(0.4), rng);
    const FaultPlan twin(FaultConfig::uniform(0.4), rng);

    // Any query order, any repetition: the same cell always answers the same.
    const DeviceFaultDecision first = plan.device_faults(2, 5);
    (void)plan.device_faults(9, 0);
    (void)plan.upload_outcome(1, 1);
    const DeviceFaultDecision again = plan.device_faults(2, 5);
    EXPECT_EQ(first.crash, again.crash);
    EXPECT_EQ(first.straggler, again.straggler);
    EXPECT_EQ(first.prior_corrupt, again.prior_corrupt);
    EXPECT_EQ(first.prior_stale, again.prior_stale);
    EXPECT_EQ(first.link_outage, again.link_outage);
    EXPECT_TRUE(bits_equal(first.corrupt_position, again.corrupt_position));

    // A twin plan built from the same base stream agrees everywhere...
    for (std::size_t round = 0; round < 4; ++round) {
        for (std::size_t device = 0; device < 16; ++device) {
            const DeviceFaultDecision a = plan.device_faults(round, device);
            const DeviceFaultDecision b = twin.device_faults(round, device);
            EXPECT_EQ(a.crash, b.crash);
            EXPECT_EQ(a.link_outage, b.link_outage);
            const UploadOutcome ua = plan.upload_outcome(round, device);
            const UploadOutcome ub = twin.upload_outcome(round, device);
            EXPECT_EQ(ua.delivered, ub.delivered);
            EXPECT_EQ(ua.attempts, ub.attempts);
            EXPECT_TRUE(bits_equal(ua.simulated_seconds, ub.simulated_seconds));
        }
    }

    // ...while a different plan seed draws a different pattern.
    FaultConfig reseeded = FaultConfig::uniform(0.4);
    reseeded.seed = 99;
    const FaultPlan other(reseeded, rng);
    bool any_difference = false;
    for (std::size_t device = 0; device < 64 && !any_difference; ++device) {
        const DeviceFaultDecision a = plan.device_faults(0, device);
        const DeviceFaultDecision b = other.device_faults(0, device);
        any_difference = a.crash != b.crash || a.straggler != b.straggler ||
                         a.link_outage != b.link_outage;
    }
    EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, FaultSetsGrowMonotonicallyInTheRate) {
    stats::Rng rng(13);
    const std::vector<double> rates = {0.05, 0.2, 0.5, 0.9};
    std::vector<FaultPlan> plans;
    for (const double rate : rates) plans.emplace_back(FaultConfig::uniform(rate), rng);

    for (std::size_t i = 0; i + 1 < plans.size(); ++i) {
        for (std::size_t round = 0; round < 3; ++round) {
            for (std::size_t device = 0; device < 32; ++device) {
                const DeviceFaultDecision lo = plans[i].device_faults(round, device);
                const DeviceFaultDecision hi = plans[i + 1].device_faults(round, device);
                // Same cell, same uniforms, higher thresholds: every fault
                // present at the lower rate must persist at the higher one.
                EXPECT_LE(lo.crash, hi.crash);
                EXPECT_LE(lo.straggler, hi.straggler);
                EXPECT_LE(lo.prior_corrupt, hi.prior_corrupt);
                EXPECT_LE(lo.prior_stale, hi.prior_stale);
                EXPECT_LE(lo.link_outage, hi.link_outage);
            }
        }
    }
}

TEST(ChurnPlanMonotonicity, ChurnSetsGrowMonotonicallyInTheRate) {
    // The membership layer's churn plan rides the same contract as the
    // fault plan: one unconditional uniform per slot per cell, so at a
    // fixed seed raising the churn rate only ever ADDS events — a lower
    // rate's join/leave/loss/rejoin set is a subset of a higher rate's.
    stats::Rng rng(13);
    const std::vector<double> rates = {0.05, 0.2, 0.5, 0.9};
    std::vector<ChurnPlan> plans;
    for (const double rate : rates) plans.emplace_back(ChurnConfig::uniform(rate), rng);

    for (std::size_t i = 0; i + 1 < plans.size(); ++i) {
        for (std::size_t round = 0; round < 3; ++round) {
            for (std::size_t device = 0; device < 32; ++device) {
                const DeviceChurnDecision lo = plans[i].device_churn(round, device);
                const DeviceChurnDecision hi = plans[i + 1].device_churn(round, device);
                EXPECT_LE(lo.join, hi.join);
                EXPECT_LE(lo.leave, hi.leave);
                EXPECT_LE(lo.heartbeat_lost, hi.heartbeat_lost);
                EXPECT_LE(lo.rejoin, hi.rejoin);
            }
        }
    }

    // And raising ONE probability never re-rolls another slot's decision:
    // a leave-only sweep leaves the rejoin pattern of a mixed config intact.
    ChurnConfig mixed;
    mixed.leave_prob = 0.2;
    mixed.rejoin_prob = 0.4;
    ChurnConfig heavier = mixed;
    heavier.leave_prob = 0.8;
    const ChurnPlan a(mixed, rng);
    const ChurnPlan b(heavier, rng);
    for (std::size_t round = 0; round < 3; ++round) {
        for (std::size_t device = 0; device < 32; ++device) {
            const DeviceChurnDecision da = a.device_churn(round, device);
            const DeviceChurnDecision db = b.device_churn(round, device);
            EXPECT_EQ(da.rejoin, db.rejoin);
            EXPECT_LE(da.leave, db.leave);
        }
    }
}

TEST(FaultPlan, UploadRetriesBackOffAndRespectTheDeadline) {
    FaultConfig config;
    config.upload_fail_prob = 1.0;        // every attempt fails
    config.max_upload_attempts = 4;
    config.upload_backoff_base_seconds = 0.5;
    config.upload_backoff_jitter = 0.0;   // exact backoff arithmetic
    stats::Rng rng(17);
    const FaultPlan plan(config, rng);

    const UploadOutcome up = plan.upload_outcome(0, 0);
    EXPECT_FALSE(up.delivered);
    EXPECT_EQ(up.attempts, 4);
    EXPECT_EQ(up.retries, 3);
    // Backoffs 0.5, 1.0, 2.0 accrue between the four attempts.
    EXPECT_TRUE(bits_equal(up.simulated_seconds, 3.5));

    // A tight deadline cuts the retry loop short instead of hanging.
    config.round_deadline_seconds = 1.0;
    const FaultPlan strict(config, rng);
    const UploadOutcome capped = strict.upload_outcome(0, 0);
    EXPECT_FALSE(capped.delivered);
    EXPECT_EQ(capped.attempts, 2);        // 0.5 + 1.0 > deadline after attempt 2
    EXPECT_LE(capped.simulated_seconds, 1.0 + 0.5 + 1.0);

    // Zero fail probability delivers on the first attempt, garble or not.
    FaultConfig clean;
    clean.upload_garble_prob = 1.0;
    const FaultPlan garbler(clean, rng);
    const UploadOutcome delivered = garbler.upload_outcome(2, 3);
    EXPECT_TRUE(delivered.delivered);
    EXPECT_TRUE(delivered.garbled);
    EXPECT_EQ(delivered.attempts, 1);
}

TEST(FaultPlan, CorruptedPayloadNeverDecodes) {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({1.0, -1.0}, 0.3));
    const dp::MixturePrior prior({1.0}, std::move(atoms));
    const std::vector<std::uint8_t> payload = encode_prior(prior);

    stats::Rng rng(19);
    const FaultPlan plan(FaultConfig::uniform(0.5), rng);
    for (std::size_t device = 0; device < 8; ++device) {
        DeviceFaultDecision decision = plan.device_faults(0, device);
        const std::vector<std::uint8_t> garbled =
            plan.corrupt_payload(payload, decision);
        ASSERT_EQ(garbled.size(), payload.size());
        EXPECT_NE(garbled, payload);
        // The strict decoder must reject it — the tolerant path reports the
        // rejection instead of raising.
        EXPECT_FALSE(try_decode_prior(garbled).has_value());
    }
}

// ----------------------------------------------------- solver degradation

TEST(EmDroDegradation, NonFiniteStateIsReportedNotThrown) {
    const test_support::PopulationFixture f =
        test_support::make_population_fixture(/*seed=*/23, /*n_train=*/12, /*n_test=*/40);
    // A degenerate prior atom: variance so small the quadratic form
    // overflows at any theta away from the mean, driving log_pdf to -inf.
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic(
        std::vector<double>(f.train.dim(), 40.0), 1e-308));
    const dp::MixturePrior degenerate({1.0}, std::move(atoms));

    const auto loss = models::make_logistic_loss();
    const core::EmDroSolver solver(f.train, *loss, degenerate,
                                   dro::AmbiguitySet::wasserstein(0.1),
                                   /*transfer_weight=*/2.0);
    core::EmDroResult result;
    ASSERT_NO_THROW(result = solver.solve_from(linalg::zeros(f.train.dim())));
    EXPECT_TRUE(result.hit_non_finite);
    // The reported iterate is the last finite one — the start itself here.
    for (const double v : result.theta) EXPECT_TRUE(std::isfinite(v));

    // A non-finite start is caught the same way.
    linalg::Vector nan_start = linalg::zeros(f.train.dim());
    nan_start[0] = std::numeric_limits<double>::quiet_NaN();
    const core::EmDroSolver healthy(f.train, *loss, f.prior,
                                    dro::AmbiguitySet::wasserstein(0.1), 2.0);
    ASSERT_NO_THROW(result = healthy.solve_from(nan_start));
    EXPECT_TRUE(result.hit_non_finite);

    // Multi-start solve() prefers any finite candidate over non-finite ones.
    const core::EmDroResult best = healthy.solve();
    EXPECT_FALSE(best.hit_non_finite);
}

// ------------------------------------------------------------ fleet chaos

edgesim::SimulationConfig chaos_fleet_config() {
    edgesim::SimulationConfig config = test_support::small_fleet_config();
    config.run_ensemble = false;   // keep the chaos loop fast
    config.num_edge_devices = 10;
    return config;
}

TEST(FleetChaos, FullFaultRateNeverThrowsAndEveryDeviceDegrades) {
    edgesim::SimulationConfig config = chaos_fleet_config();
    config.faults = FaultConfig::uniform(1.0);
    stats::Rng rng(101);
    FleetReport report;
    ASSERT_NO_THROW(report = run_fleet_simulation(config, rng));
    ASSERT_EQ(report.devices.size(), config.num_edge_devices);
    EXPECT_EQ(report.degraded_devices(), config.num_edge_devices);
    for (const auto& device : report.devices) {
        // crash_prob = 1 crashes everyone; the score is the untrained floor.
        EXPECT_EQ(device.degraded, DegradedReason::kCrashed);
        EXPECT_TRUE(bits_equal(device.em_dro_accuracy, device.untrained_accuracy));
    }
}

TEST(FleetChaos, BitIdenticalAcrossThreadCounts) {
    edgesim::SimulationConfig config = chaos_fleet_config();
    config.faults = FaultConfig::uniform(0.5);

    std::vector<FleetReport> reports;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        config.num_threads = threads;
        stats::Rng rng(103);
        reports.push_back(run_fleet_simulation(config, rng));
    }
    const FleetReport& base = reports.front();
    for (std::size_t r = 1; r < reports.size(); ++r) {
        const FleetReport& other = reports[r];
        ASSERT_EQ(base.devices.size(), other.devices.size());
        for (std::size_t j = 0; j < base.devices.size(); ++j) {
            EXPECT_EQ(base.devices[j].degraded, other.devices[j].degraded) << j;
            EXPECT_TRUE(bits_equal(base.devices[j].em_dro_accuracy,
                                   other.devices[j].em_dro_accuracy)) << j;
            EXPECT_TRUE(bits_equal(base.devices[j].local_erm_accuracy,
                                   other.devices[j].local_erm_accuracy)) << j;
            EXPECT_TRUE(bits_equal(base.devices[j].untrained_accuracy,
                                   other.devices[j].untrained_accuracy)) << j;
        }
    }
}

TEST(FleetChaos, FallbackDevicesScoreAtLeastTheUntrainedBaseline) {
    edgesim::SimulationConfig config = chaos_fleet_config();
    config.faults.link_outage_prob = 1.0;   // nobody gets a prior
    stats::Rng rng(107);
    const FleetReport report = run_fleet_simulation(config, rng);
    for (const auto& device : report.devices) {
        EXPECT_EQ(device.degraded, DegradedReason::kFallbackLocalErm);
        // Graceful degradation must leave the device no worse than never
        // having trained at all.
        EXPECT_GE(device.em_dro_accuracy, device.untrained_accuracy);
    }

    // A corrupted broadcast payload lands on the same fallback path.
    edgesim::SimulationConfig corrupt = chaos_fleet_config();
    corrupt.faults.prior_corrupt_prob = 1.0;
    stats::Rng rng2(107);
    const FleetReport corrupted = run_fleet_simulation(corrupt, rng2);
    for (const auto& device : corrupted.devices) {
        EXPECT_EQ(device.degraded, DegradedReason::kFallbackLocalErm);
    }
}

TEST(FleetChaos, MeanAccuracyDegradesMonotonicallyInCrashRate) {
    // Crashes replace a trained score with the untrained floor, and the
    // crashed set grows monotonically in the rate (fixed seed), so the
    // fleet mean can only fall as the rate rises.
    const std::vector<double> rates = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
    std::vector<double> means;
    std::vector<std::size_t> degraded;
    for (const double rate : rates) {
        edgesim::SimulationConfig config = chaos_fleet_config();
        config.faults.crash_prob = rate;
        stats::Rng rng(109);
        const FleetReport report = run_fleet_simulation(config, rng);
        means.push_back(report.mean_em_dro_accuracy());
        degraded.push_back(report.degraded_devices());
    }
    for (std::size_t i = 0; i + 1 < rates.size(); ++i) {
        EXPECT_LE(means[i + 1], means[i] + 1e-12)
            << "rate " << rates[i] << " -> " << rates[i + 1];
        EXPECT_GE(degraded[i + 1], degraded[i]);
    }
    EXPECT_GT(means.front(), means.back());  // chaos actually bites
}

TEST(FleetChaos, EnablingFaultsNeverPerturbsHealthyDevices) {
    // The plan draws from its own forked stream, so devices the plan leaves
    // alone must score bit-identically to the fault-free world.
    edgesim::SimulationConfig clean = chaos_fleet_config();
    stats::Rng rng_clean(113);
    const FleetReport healthy = run_fleet_simulation(clean, rng_clean);

    edgesim::SimulationConfig faulty = chaos_fleet_config();
    faulty.faults.crash_prob = 0.3;
    stats::Rng rng_faulty(113);
    const FleetReport chaotic = run_fleet_simulation(faulty, rng_faulty);

    ASSERT_EQ(healthy.devices.size(), chaotic.devices.size());
    std::size_t untouched = 0;
    for (std::size_t j = 0; j < healthy.devices.size(); ++j) {
        if (chaotic.devices[j].degraded == DegradedReason::kNone) {
            ++untouched;
            EXPECT_TRUE(bits_equal(healthy.devices[j].em_dro_accuracy,
                                   chaotic.devices[j].em_dro_accuracy)) << j;
        }
    }
    EXPECT_GT(untouched, 0u);
}

// -------------------------------------------------------- lifecycle chaos

LifecycleConfig chaos_lifecycle_config() {
    LifecycleConfig config;
    config.feature_dim = 5;
    config.initial_modes = 2;
    config.initial_contributors = 10;
    config.contributor_samples = 150;
    config.rounds = 3;
    config.devices_per_round = 5;
    config.edge_samples = 12;
    config.test_samples = 300;
    config.gibbs_sweeps = 30;
    config.novel_mode_round = 1;
    config.learner.em.max_outer_iterations = 8;
    return config;
}

TEST(LifecycleChaos, FullFaultRateNeverThrows) {
    LifecycleConfig config = chaos_lifecycle_config();
    config.faults = FaultConfig::uniform(1.0);
    stats::Rng rng(211);
    LifecycleReport report;
    ASSERT_NO_THROW(report = run_lifecycle(config, rng));
    ASSERT_EQ(report.rounds.size(), config.rounds);
    for (const auto& round : report.rounds) {
        // crash_prob = 1: every device dies; nothing is scored or uploaded.
        EXPECT_EQ(round.crashed, config.devices_per_round);
        EXPECT_EQ(round.devices_scored, 0u);
        ASSERT_EQ(round.device_degraded.size(), config.devices_per_round);
        for (const DegradedReason reason : round.device_degraded) {
            EXPECT_EQ(reason, DegradedReason::kCrashed);
        }
    }
    EXPECT_EQ(report.total_upload_bytes, 0u);
}

TEST(LifecycleChaos, DroppedUploadsAreSkippedNotFatal) {
    LifecycleConfig config = chaos_lifecycle_config();
    config.faults.upload_fail_prob = 1.0;   // retries always exhaust
    stats::Rng rng(223);
    LifecycleReport report;
    ASSERT_NO_THROW(report = run_lifecycle(config, rng));
    std::size_t dropped = 0;
    for (const auto& round : report.rounds) {
        dropped += round.uploads_dropped;
        EXPECT_EQ(round.devices_scored, config.devices_per_round);
        for (const DegradedReason reason : round.device_degraded) {
            EXPECT_EQ(reason, DegradedReason::kUploadDropped);
        }
        // No upload ever lands, so the prior never drifts: no re-push after
        // the initial round-0 broadcast.
        if (round.round > 0) {
            EXPECT_FALSE(round.rebroadcast);
        }
    }
    EXPECT_EQ(dropped, config.rounds * config.devices_per_round);
    EXPECT_GT(report.total_upload_retries, 0u);
    // On-air bytes count every attempt, not just deliveries.
    EXPECT_GT(report.total_upload_bytes, 0u);
}

TEST(LifecycleChaos, GarbledUploadsAreRejectedByTheCloudGuard) {
    LifecycleConfig config = chaos_lifecycle_config();
    config.faults.upload_garble_prob = 1.0;   // delivered, but non-finite
    stats::Rng rng(227);
    LifecycleReport report;
    ASSERT_NO_THROW(report = run_lifecycle(config, rng));
    std::size_t garbled = 0;
    for (const auto& round : report.rounds) garbled += round.uploads_garbled;
    EXPECT_EQ(garbled, config.rounds * config.devices_per_round);
    for (const auto& round : report.rounds) {
        if (round.round > 0) {
            EXPECT_FALSE(round.rebroadcast);
        }
    }
}

TEST(LifecycleChaos, ModerateChaosIsDeterministicPerSeed) {
    LifecycleConfig config = chaos_lifecycle_config();
    config.faults = FaultConfig::uniform(0.4);
    stats::Rng rng_a(229);
    stats::Rng rng_b(229);
    const LifecycleReport a = run_lifecycle(config, rng_a);
    const LifecycleReport b = run_lifecycle(config, rng_b);
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    EXPECT_EQ(a.total_upload_bytes, b.total_upload_bytes);
    EXPECT_EQ(a.total_upload_retries, b.total_upload_retries);
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        EXPECT_TRUE(bits_equal(a.rounds[r].mean_accuracy, b.rounds[r].mean_accuracy));
        EXPECT_EQ(a.rounds[r].device_degraded, b.rounds[r].device_degraded);
        EXPECT_EQ(a.rounds[r].crashed, b.rounds[r].crashed);
        EXPECT_EQ(a.rounds[r].uploads_dropped, b.rounds[r].uploads_dropped);
    }
}

TEST(LifecycleChaos, StalePriorDevicesStillScore) {
    LifecycleConfig config = chaos_lifecycle_config();
    config.faults.prior_stale_prob = 1.0;
    stats::Rng rng(233);
    const LifecycleReport report = run_lifecycle(config, rng);
    for (const auto& round : report.rounds) {
        EXPECT_EQ(round.stale_priors, config.devices_per_round);
        EXPECT_EQ(round.devices_scored, config.devices_per_round);
        EXPECT_GT(round.mean_accuracy, 0.0);
    }
}

}  // namespace
}  // namespace drel::edgesim
