#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/csv_io.hpp"
#include "data/scenarios.hpp"
#include "data/shifts.hpp"
#include "data/task_generator.hpp"
#include "models/linear_model.hpp"
#include "models/metrics.hpp"
#include "stats/descriptive.hpp"

namespace drel::data {
namespace {

// ---------------------------------------------------------- task generator

TEST(TaskPopulation, SyntheticConstructionShape) {
    stats::Rng rng(1);
    const TaskPopulation pop = TaskPopulation::make_synthetic(6, 3, 2.0, 0.1, rng);
    EXPECT_EQ(pop.feature_dim(), 6u);
    EXPECT_EQ(pop.theta_dim(), 7u);
    EXPECT_EQ(pop.num_modes(), 3u);
}

TEST(TaskPopulation, RejectsInvalidConfig) {
    stats::Rng rng(2);
    EXPECT_THROW(TaskPopulation::make_synthetic(0, 3, 2.0, 0.1, rng), std::invalid_argument);
    EXPECT_THROW(TaskPopulation::make_synthetic(5, 0, 2.0, 0.1, rng), std::invalid_argument);
    EXPECT_THROW(TaskPopulation({}), std::invalid_argument);
}

TEST(TaskPopulation, TaskComesFromDeclaredMode) {
    stats::Rng rng(3);
    const TaskPopulation pop = TaskPopulation::make_synthetic(4, 4, 5.0, 0.01, rng);
    for (int i = 0; i < 20; ++i) {
        const TaskSpec task = pop.sample_task(rng);
        ASSERT_LT(task.mode_index, 4u);
        // With tiny within-mode variance the sampled theta must be closest
        // to its own mode's mean.
        double best = 1e18;
        std::size_t best_mode = 99;
        for (std::size_t k = 0; k < 4; ++k) {
            const double dist =
                linalg::distance2(task.theta_star, pop.modes()[k].mean);
            if (dist < best) {
                best = dist;
                best_mode = k;
            }
        }
        EXPECT_EQ(best_mode, task.mode_index);
    }
}

TEST(TaskPopulation, GeneratedDataHasBiasColumnLast) {
    stats::Rng rng(4);
    const TaskPopulation pop = TaskPopulation::make_synthetic(5, 2, 2.0, 0.05, rng);
    const TaskSpec task = pop.sample_task(rng);
    const models::Dataset d = pop.generate(task, 50, rng);
    EXPECT_EQ(d.dim(), 6u);
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_DOUBLE_EQ(d.feature_row(i)[5], 1.0);
    }
}

TEST(TaskPopulation, TrueModelAchievesHighAccuracyOnCrispData) {
    stats::Rng rng(5);
    const TaskPopulation pop = TaskPopulation::make_synthetic(6, 3, 3.0, 0.02, rng);
    const TaskSpec task = pop.sample_task(rng);
    DataOptions options;
    options.margin_scale = 6.0;  // crisp labels
    options.label_noise = 0.0;
    const models::Dataset d = pop.generate(task, 3000, rng, options);
    const models::LinearModel oracle(task.theta_star);
    EXPECT_GT(models::accuracy(oracle, d), 0.9);
}

TEST(TaskPopulation, LabelNoiseDegradesOracleAccuracy) {
    stats::Rng rng(6);
    const TaskPopulation pop = TaskPopulation::make_synthetic(6, 3, 3.0, 0.02, rng);
    const TaskSpec task = pop.sample_task(rng);
    DataOptions clean;
    clean.margin_scale = 6.0;
    clean.label_noise = 0.0;
    DataOptions noisy = clean;
    noisy.label_noise = 0.3;
    const models::LinearModel oracle(task.theta_star);
    const double acc_clean = models::accuracy(oracle, pop.generate(task, 4000, rng, clean));
    const double acc_noisy = models::accuracy(oracle, pop.generate(task, 4000, rng, noisy));
    EXPECT_GT(acc_clean - acc_noisy, 0.1);
}

TEST(TaskPopulation, FeatureShiftMovesMean) {
    stats::Rng rng(7);
    const TaskPopulation pop = TaskPopulation::make_synthetic(3, 2, 2.0, 0.05, rng);
    const TaskSpec task = pop.sample_task(rng);
    DataOptions options;
    options.feature_shift = {5.0, 0.0, 0.0};
    const models::Dataset d = pop.generate(task, 2000, rng, options);
    stats::RunningStats first_coord;
    for (std::size_t i = 0; i < d.size(); ++i) first_coord.push(d.feature_row(i)[0]);
    EXPECT_NEAR(first_coord.mean(), 5.0, 0.2);
}

TEST(TaskPopulation, OutlierInjectionPlacesFarPoints) {
    stats::Rng rng(8);
    const TaskPopulation pop = TaskPopulation::make_synthetic(4, 2, 2.0, 0.05, rng);
    const TaskSpec task = pop.sample_task(rng);
    DataOptions options;
    options.outlier_fraction = 0.2;
    options.outlier_radius = 50.0;
    const models::Dataset d = pop.generate(task, 100, rng, options);
    std::size_t far = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        linalg::Vector x = d.feature_row(i);
        x.pop_back();  // drop bias
        if (linalg::norm2(x) > 25.0) ++far;
    }
    EXPECT_EQ(far, 20u);
}

TEST(TaskPopulation, GenerateValidatesArguments) {
    stats::Rng rng(9);
    const TaskPopulation pop = TaskPopulation::make_synthetic(3, 2, 2.0, 0.05, rng);
    TaskSpec bad;
    bad.theta_star = {1.0};
    EXPECT_THROW(pop.generate(bad, 10, rng), std::invalid_argument);
    const TaskSpec task = pop.sample_task(rng);
    DataOptions options;
    options.feature_shift = {1.0};  // wrong dim
    EXPECT_THROW(pop.generate(task, 10, rng, options), std::invalid_argument);
}

// ------------------------------------------------------------------ shifts

models::Dataset shift_fixture(stats::Rng& rng, std::size_t n = 500) {
    const TaskPopulation pop = TaskPopulation::make_synthetic(4, 2, 2.0, 0.05, rng);
    const TaskSpec task = pop.sample_task(rng);
    return pop.generate(task, n, rng);
}

TEST(Shifts, MeanShiftLeavesBiasUntouched) {
    stats::Rng rng(10);
    const models::Dataset d = shift_fixture(rng);
    const models::Dataset shifted = apply_mean_shift(d, {1.0, -2.0, 0.0, 3.0});
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(shifted.feature_row(i)[4], 1.0);
        EXPECT_NEAR(shifted.feature_row(i)[0] - d.feature_row(i)[0], 1.0, 1e-12);
        EXPECT_NEAR(shifted.feature_row(i)[1] - d.feature_row(i)[1], -2.0, 1e-12);
    }
}

TEST(Shifts, RotationPreservesNorms) {
    stats::Rng rng(11);
    const models::Dataset d = shift_fixture(rng);
    const models::Dataset rotated = apply_rotation(d, 0.7);
    for (std::size_t i = 0; i < 10; ++i) {
        const auto a = d.feature_row(i);
        const auto b = rotated.feature_row(i);
        EXPECT_NEAR(a[0] * a[0] + a[1] * a[1], b[0] * b[0] + b[1] * b[1], 1e-9);
        EXPECT_DOUBLE_EQ(a[2], b[2]);  // untouched coordinate
    }
}

TEST(Shifts, FullCircleRotationIsIdentity) {
    stats::Rng rng(12);
    const models::Dataset d = shift_fixture(rng, 50);
    const models::Dataset rotated = apply_rotation(d, 2.0 * M_PI);
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_NEAR(linalg::distance2(d.feature_row(i), rotated.feature_row(i)), 0.0, 1e-9);
    }
}

TEST(Shifts, LabelNoiseFlipsExpectedFraction) {
    stats::Rng rng(13);
    const models::Dataset d = shift_fixture(rng, 4000);
    const models::Dataset noisy = apply_label_noise(d, 0.25, rng);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        if (d.label(i) != noisy.label(i)) ++flips;
    }
    EXPECT_NEAR(static_cast<double>(flips) / 4000.0, 0.25, 0.03);
}

TEST(Shifts, LabelShiftHitsTargetFraction) {
    stats::Rng rng(14);
    const models::Dataset d = shift_fixture(rng, 1000);
    const models::Dataset shifted = apply_label_shift(d, 0.8, rng);
    EXPECT_NEAR(shifted.positive_fraction(), 0.8, 0.01);
    EXPECT_EQ(shifted.size(), d.size());
}

TEST(Shifts, LabelShiftRejectsImpossibleTargets) {
    // All-positive dataset cannot be resampled to contain negatives.
    const models::Dataset d(linalg::Matrix(3, 2, {1.0, 1.0, 2.0, 1.0, 3.0, 1.0}),
                            {1.0, 1.0, 1.0});
    stats::Rng rng(15);
    EXPECT_THROW(apply_label_shift(d, 0.5, rng), std::invalid_argument);
}

TEST(Shifts, FeatureScaleAndNoise) {
    stats::Rng rng(16);
    const models::Dataset d = shift_fixture(rng, 100);
    const models::Dataset scaled = apply_feature_scale(d, 2.0);
    EXPECT_NEAR(scaled.feature_row(0)[0], 2.0 * d.feature_row(0)[0], 1e-12);
    EXPECT_DOUBLE_EQ(scaled.feature_row(0)[4], 1.0);
    const models::Dataset noisy = apply_feature_noise(d, 0.0, rng);
    EXPECT_NEAR(linalg::distance2(noisy.feature_row(0), d.feature_row(0)), 0.0, 1e-12);
}

// --------------------------------------------------------------- scenarios

TEST(Scenarios, AllKindsConstruct) {
    ScenarioConfig config;
    config.n_test = 500;
    for (const ScenarioKind kind :
         {ScenarioKind::kIid, ScenarioKind::kCovariateShift, ScenarioKind::kLabelShift,
          ScenarioKind::kOutliers, ScenarioKind::kLabelNoise, ScenarioKind::kRotation}) {
        stats::Rng rng(17);
        const Scenario s = make_scenario(kind, config, rng);
        EXPECT_EQ(s.name, scenario_name(kind));
        EXPECT_EQ(s.edge_train.size(), config.n_train);
        EXPECT_EQ(s.edge_test.size(), config.n_test);
        EXPECT_GT(s.bayes_accuracy, 0.5) << s.name;
    }
}

TEST(Scenarios, LabelShiftScenarioSkewsTestBalance) {
    ScenarioConfig config;
    config.n_test = 2000;
    stats::Rng rng(18);
    const Scenario s = make_scenario(ScenarioKind::kLabelShift, config, rng);
    EXPECT_NEAR(s.edge_test.positive_fraction(), 0.8, 0.02);
}

TEST(Scenarios, SameTaskSharesGroundTruth) {
    ScenarioConfig config;
    config.n_test = 300;
    stats::Rng rng(19);
    const TaskPopulation pop = TaskPopulation::make_synthetic(
        config.feature_dim, config.num_modes, config.mode_radius, config.within_mode_var, rng);
    const TaskSpec task = pop.sample_task(rng);
    const Scenario a = make_scenario_for_task(ScenarioKind::kIid, config, pop, task, rng);
    const Scenario b =
        make_scenario_for_task(ScenarioKind::kCovariateShift, config, pop, task, rng);
    EXPECT_NEAR(linalg::distance2(a.task.theta_star, b.task.theta_star), 0.0, 0.0);
}

// ------------------------------------------------------------------ CSV IO

TEST(CsvIo, RoundTripPreservesData) {
    stats::Rng rng(20);
    const models::Dataset d = shift_fixture(rng, 37);
    std::stringstream buffer;
    save_csv(d, buffer);
    const models::Dataset loaded = load_csv(buffer);
    ASSERT_EQ(loaded.size(), d.size());
    ASSERT_EQ(loaded.dim(), d.dim());
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_NEAR(linalg::distance2(loaded.feature_row(i), d.feature_row(i)), 0.0, 1e-12);
        EXPECT_DOUBLE_EQ(loaded.label(i), d.label(i));
    }
}

TEST(CsvIo, RejectsRaggedRows) {
    std::stringstream buffer("f0,f1,label\n1,2,1\n1,2,3,4\n");
    EXPECT_THROW(load_csv(buffer), std::invalid_argument);
}

TEST(CsvIo, RejectsNonNumeric) {
    std::stringstream buffer("f0,label\nabc,1\n");
    EXPECT_THROW(load_csv(buffer), std::invalid_argument);
}

TEST(CsvIo, RejectsEmpty) {
    std::stringstream empty("header\n");
    EXPECT_THROW(load_csv(empty), std::invalid_argument);
}

TEST(CsvIo, SkipsBlankLines) {
    std::stringstream buffer("f0,label\n1,1\n\n2,-1\n");
    const models::Dataset d = load_csv(buffer);
    EXPECT_EQ(d.size(), 2u);
}

}  // namespace
}  // namespace drel::data
