// Schema validation for the bench metrics sidecar (obs::bench_sidecar_json,
// schema v2: v1 plus an optional "health" fleet-telemetry block). The bench
// binaries themselves take minutes, so this test runs a small representative
// workload through the same library code and validates the exact document
// the benches write — for the sidecar names the experiment flow consumes
// (bench_fig7_fleet, bench_table2_methods, bench_fleet_scale).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "edgesim/server.hpp"
#include "edgesim/simulation.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel {
namespace {

/// Asserts the schema-v2 sidecar contract: required keys, value kinds, and
/// internal consistency (bucket array length, min <= max).
void validate_sidecar(const obs::JsonValue& doc, const std::string& bench_name) {
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.at("schema_version").as_uint(), obs::kBenchSidecarSchemaVersion);
    EXPECT_EQ(doc.at("bench").as_string(), bench_name);

    const obs::JsonValue& deterministic = doc.at("deterministic");
    for (const char* section : {"counters", "gauges", "histograms"}) {
        ASSERT_TRUE(deterministic.contains(section)) << section;
        ASSERT_TRUE(deterministic.at(section).is_object()) << section;
    }
    for (const auto& [name, value] : deterministic.at("counters").as_object()) {
        EXPECT_TRUE(value.is_uint()) << "counter " << name;
    }
    for (const auto& [name, value] : deterministic.at("gauges").as_object()) {
        EXPECT_TRUE(value.is_number()) << "gauge " << name;
    }
    for (const auto& [name, histogram] : deterministic.at("histograms").as_object()) {
        const auto& bounds = histogram.at("bounds").as_array();
        const auto& buckets = histogram.at("buckets").as_array();
        EXPECT_EQ(buckets.size(), bounds.size() + 1) << "histogram " << name;
        for (const auto& b : bounds) EXPECT_TRUE(b.is_uint()) << "histogram " << name;
        for (const auto& c : buckets) EXPECT_TRUE(c.is_uint()) << "histogram " << name;
        EXPECT_TRUE(histogram.at("count").is_uint()) << "histogram " << name;
        EXPECT_TRUE(histogram.at("sum").is_uint()) << "histogram " << name;
    }

    ASSERT_TRUE(doc.at("timing").is_object());
    for (const auto& [name, timing] : doc.at("timing").as_object()) {
        EXPECT_TRUE(timing.at("count").is_uint()) << "timing " << name;
        for (const char* key : {"total_seconds", "min_seconds", "max_seconds"}) {
            EXPECT_TRUE(timing.at(key).is_number()) << "timing " << name << "." << key;
        }
        EXPECT_LE(timing.at("min_seconds").as_number(), timing.at("max_seconds").as_number())
            << "timing " << name;
    }
}

void validate_histogram_snapshot(const obs::JsonValue& histogram, const char* what) {
    const auto& bounds = histogram.at("bounds").as_array();
    const auto& buckets = histogram.at("buckets").as_array();
    EXPECT_EQ(buckets.size(), bounds.size() + 1) << what;
    for (const auto& b : bounds) EXPECT_TRUE(b.is_uint()) << what;
    std::uint64_t bucket_total = 0;
    for (const auto& c : buckets) {
        ASSERT_TRUE(c.is_uint()) << what;
        bucket_total += c.as_uint();
    }
    EXPECT_EQ(bucket_total, histogram.at("count").as_uint()) << what;
}

/// Asserts the v2 "health" block contract: a rectangular integer series with
/// the fleet column names, well-formed histograms, an SLO report with a
/// known verdict per rule, and the partition sub-block.
void validate_health_block(const obs::JsonValue& health) {
    const obs::JsonValue& series = health.at("series");
    const auto& columns = series.at("columns").as_array();
    ASSERT_EQ(columns.size(), health::kFleetNumColumns);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        EXPECT_EQ(columns[c].as_string(), health::fleet_column_names()[c]);
    }
    for (const auto& row : series.at("rows").as_array()) {
        ASSERT_EQ(row.as_array().size(), columns.size());
        for (const auto& value : row.as_array()) EXPECT_TRUE(value.is_uint());
    }

    validate_histogram_snapshot(health.at("upload_latency_ms"), "upload_latency_ms");

    const obs::JsonValue& slo = health.at("slo");
    const std::string verdict = slo.at("verdict").as_string();
    EXPECT_TRUE(verdict == "pass" || verdict == "warn" || verdict == "fail") << verdict;
    for (const auto& rule : slo.at("rules").as_array()) {
        EXPECT_TRUE(rule.at("name").is_string());
        EXPECT_TRUE(rule.at("observed").is_number());
        EXPECT_TRUE(rule.at("warn").is_number());
        EXPECT_TRUE(rule.at("fail").is_number());
        ASSERT_TRUE(rule.contains("first_violating_round"));
    }

    const obs::JsonValue& partition = health.at("partition");
    for (const auto& n : partition.at("shard_devices").as_array()) {
        EXPECT_TRUE(n.is_uint());
    }
    validate_histogram_snapshot(partition.at("service_wait_ms"), "service_wait_ms");
}

class BenchSchema : public ::testing::Test {
 protected:
    static void SetUpTestSuite() {
        // One small end-to-end fleet run populates every metric family the
        // real benches touch (counters, gauges, histograms, timings).
        obs::Registry::global().reset();
        edgesim::SimulationConfig config = test_support::small_fleet_config();
        config.num_threads = 2;
        stats::Rng rng(99);
        (void)edgesim::run_fleet_simulation(config, rng);
    }

    void SetUp() override {
        if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    }
};

TEST_F(BenchSchema, Fig7FleetSidecarMatchesSchema) {
    const obs::JsonValue doc = obs::bench_sidecar_json("bench_fig7_fleet");
    validate_sidecar(doc, "bench_fig7_fleet");
    // A fleet workload must surface the headline counters and gauges the
    // downstream tooling keys on.
    const obs::JsonValue& deterministic = doc.at("deterministic");
    EXPECT_TRUE(deterministic.at("counters").contains("fleet.devices_trained"));
    EXPECT_TRUE(deterministic.at("counters").contains("em.solve_calls"));
    EXPECT_TRUE(deterministic.at("gauges").contains("fleet.prior_components"));
}

TEST_F(BenchSchema, Table2MethodsSidecarMatchesSchema) {
    const obs::JsonValue doc = obs::bench_sidecar_json("bench_table2_methods");
    validate_sidecar(doc, "bench_table2_methods");
}

TEST_F(BenchSchema, Fig15ChaosSidecarSurfacesFaultCounters) {
    // A chaos workload must emit the fault.* families the chaos bench's
    // sidecar is keyed on, in the same schema as every other bench.
    edgesim::SimulationConfig config = test_support::small_fleet_config();
    config.run_ensemble = false;
    config.faults = edgesim::FaultConfig::uniform(1.0);
    stats::Rng rng(100);
    (void)edgesim::run_fleet_simulation(config, rng);
    const obs::JsonValue doc = obs::bench_sidecar_json("bench_fig15_chaos");
    validate_sidecar(doc, "bench_fig15_chaos");
    const obs::JsonValue& counters = doc.at("deterministic").at("counters");
    EXPECT_TRUE(counters.contains("fault.injected.crash"));
    EXPECT_TRUE(counters.contains("fault.degraded.crashed"));
}

TEST_F(BenchSchema, FleetScaleSidecarCarriesValidHealthBlock) {
    // The same path bench_fleet_scale uses: run the sharded engine, attach
    // the telemetry + SLO report as the sidecar's v2 health block.
    edgesim::ScaleFleetConfig config;
    config.devices_per_round = 200;
    config.rounds = 3;
    config.num_shards = 4;
    config.num_threads = 2;
    config.faults = edgesim::FaultConfig::uniform(0.1);
    stats::Rng rng(2100);
    const edgesim::ScaleFleetReport report = edgesim::run_scale_fleet(config, rng);

    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), report.engine.telemetry);
    const obs::JsonValue health_json = report.engine.telemetry.to_json(&slo);
    const obs::JsonValue doc = obs::bench_sidecar_json("bench_fleet_scale", &health_json);
    validate_sidecar(doc, "bench_fleet_scale");
    ASSERT_TRUE(doc.contains("health"));
    validate_health_block(doc.at("health"));
    EXPECT_EQ(doc.at("health").at("series").at("rows").as_array().size(), config.rounds);
    // Survives a serialize/parse round trip like the rest of the document.
    const obs::JsonValue reparsed = obs::JsonValue::parse(doc.dump(2));
    EXPECT_EQ(reparsed.dump(0), doc.dump(0));
}

TEST_F(BenchSchema, SidecarSurvivesSerializeParseRoundTrip) {
    const obs::JsonValue doc = obs::bench_sidecar_json("bench_fig7_fleet");
    const obs::JsonValue reparsed = obs::JsonValue::parse(doc.dump(2));
    EXPECT_EQ(reparsed.dump(0), doc.dump(0));
    validate_sidecar(reparsed, "bench_fig7_fleet");
}

TEST_F(BenchSchema, WriteBenchSidecarProducesValidFile) {
    const std::string path = ::testing::TempDir() + "bench_schema_sidecar.json";
    ASSERT_TRUE(obs::write_bench_sidecar("bench_fig7_fleet", path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    validate_sidecar(obs::JsonValue::parse(buffer.str()), "bench_fig7_fleet");
    std::remove(path.c_str());
    // Unwritable destinations fail soft (warn + false), never throw: a
    // metrics problem must not kill a finished bench run.
    EXPECT_FALSE(obs::write_bench_sidecar("bench_fig7_fleet",
                                          "/nonexistent-dir/sidecar.json"));
}

}  // namespace
}  // namespace drel
