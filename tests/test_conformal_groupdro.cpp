// Tests for conformal prediction sets and group DRO.
#include <gtest/gtest.h>

#include <cmath>

#include "core/conformal.hpp"
#include "data/task_generator.hpp"
#include "dro/group_dro.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

struct Fixture {
    models::Dataset train;
    models::Dataset calibration;
    models::Dataset test;
    models::LinearModel model;
};

Fixture make_fixture(std::uint64_t seed, double margin_scale = 2.0) {
    stats::Rng rng(seed);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(5, 2, 2.5, 0.05, rng);
    const data::TaskSpec task = pop.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = margin_scale;
    Fixture f{pop.generate(task, 120, rng, options), pop.generate(task, 200, rng, options),
              pop.generate(task, 3000, rng, options), models::LinearModel{}};
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective erm(f.train, *loss, 0.01);
    f.model = models::LinearModel(optim::minimize_lbfgs(erm, linalg::zeros(f.train.dim())).x);
    return f;
}

// ---------------------------------------------------------------- conformal

TEST(Conformal, CoverageMeetsGuarantee) {
    // Coverage >= 1 - alpha up to binomial fluctuation, across seeds.
    for (const double alpha : {0.1, 0.2}) {
        double total_coverage = 0.0;
        const int trials = 5;
        for (int t = 0; t < trials; ++t) {
            const Fixture f = make_fixture(100 + t);
            const core::ConformalClassifier conformal(f.model, f.calibration, alpha);
            total_coverage += conformal.empirical_coverage(f.test);
        }
        EXPECT_GE(total_coverage / trials, 1.0 - alpha - 0.03) << "alpha=" << alpha;
    }
}

TEST(Conformal, SmallerAlphaMeansBiggerSets) {
    const Fixture f = make_fixture(1);
    const core::ConformalClassifier strict(f.model, f.calibration, 0.01);
    const core::ConformalClassifier loose(f.model, f.calibration, 0.4);
    EXPECT_GE(strict.mean_set_size(f.test), loose.mean_set_size(f.test));
    EXPECT_GE(strict.threshold(), loose.threshold());
}

TEST(Conformal, ConfidentModelYieldsMostlyDecisiveSets) {
    // Crisp labels -> an accurate, confident model -> average set size near 1.
    const Fixture f = make_fixture(2, /*margin_scale=*/6.0);
    const core::ConformalClassifier conformal(f.model, f.calibration, 0.1);
    const double size = conformal.mean_set_size(f.test);
    EXPECT_GT(size, 0.8);
    EXPECT_LT(size, 1.4);
}

TEST(Conformal, NoisyDataHedgesWithLargerSets) {
    const Fixture crisp = make_fixture(3, 6.0);
    const Fixture noisy = make_fixture(3, 0.5);
    const core::ConformalClassifier crisp_sets(crisp.model, crisp.calibration, 0.1);
    const core::ConformalClassifier noisy_sets(noisy.model, noisy.calibration, 0.1);
    EXPECT_GT(noisy_sets.mean_set_size(noisy.test), crisp_sets.mean_set_size(crisp.test));
}

TEST(Conformal, TinyCalibrationFallsBackToFullSet) {
    const Fixture f = make_fixture(4);
    const models::Dataset tiny = f.calibration.subset({0, 1, 2});
    // n=3, alpha=0.1: ceil(4*0.9)=4 > 3 -> trivial threshold, everything in.
    const core::ConformalClassifier conformal(f.model, tiny, 0.1);
    EXPECT_DOUBLE_EQ(conformal.empirical_coverage(f.test), 1.0);
    EXPECT_DOUBLE_EQ(conformal.mean_set_size(f.test), 2.0);
}

TEST(Conformal, Validation) {
    const Fixture f = make_fixture(5);
    EXPECT_THROW(core::ConformalClassifier(f.model, f.calibration, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(core::ConformalClassifier(f.model, f.calibration, 1.0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------- group DRO

/// Two groups: group 1 is a shifted minority the average risk can ignore.
struct GroupFixture {
    models::Dataset data;
    std::vector<std::size_t> groups;
};

GroupFixture make_group_fixture(std::uint64_t seed) {
    stats::Rng rng(seed);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(4, 1, 2.5, 0.02, rng);
    const data::TaskSpec task = pop.sample_task(rng);
    data::DataOptions majority;
    majority.margin_scale = 3.0;
    data::DataOptions minority = majority;
    minority.feature_shift = {2.0, -2.0, 0.0, 0.0};
    models::Dataset big = pop.generate(task, 90, rng, majority);
    const models::Dataset small = pop.generate(task, 10, rng, minority);
    GroupFixture f{models::Dataset::concatenate(big, small), {}};
    f.groups.assign(90, 0);
    f.groups.insert(f.groups.end(), 10, 1);
    return f;
}

TEST(GroupDro, GradientMatchesNumericalSmoothedAndHard) {
    const GroupFixture f = make_group_fixture(10);
    const auto loss = models::make_logistic_loss();
    stats::Rng rng(11);
    for (const double smoothing : {0.0, 0.1}) {
        const dro::GroupDroObjective objective(f.data, *loss, f.groups, smoothing, 0.01);
        // Hard max is only subdifferentiable at ties; random thetas avoid
        // ties almost surely.
        const linalg::Vector theta = rng.standard_normal_vector(f.data.dim());
        EXPECT_LT(linalg::distance2(objective.gradient(theta),
                                    objective.numerical_gradient(theta)),
                  2e-4)
            << "smoothing=" << smoothing;
    }
}

TEST(GroupDro, ValueIsWorstGroupLoss) {
    const GroupFixture f = make_group_fixture(12);
    const auto loss = models::make_logistic_loss();
    const dro::GroupDroObjective objective(f.data, *loss, f.groups);
    stats::Rng rng(13);
    const linalg::Vector theta = rng.standard_normal_vector(f.data.dim());
    const linalg::Vector losses = objective.group_losses(theta);
    EXPECT_DOUBLE_EQ(objective.value(theta), losses[objective.worst_group(theta)]);
}

TEST(GroupDro, SmoothedUpperBoundsHardMax) {
    const GroupFixture f = make_group_fixture(14);
    const auto loss = models::make_logistic_loss();
    const dro::GroupDroObjective hard(f.data, *loss, f.groups, 0.0);
    const dro::GroupDroObjective smooth(f.data, *loss, f.groups, 0.05);
    stats::Rng rng(15);
    for (int t = 0; t < 5; ++t) {
        const linalg::Vector theta = rng.standard_normal_vector(f.data.dim());
        EXPECT_GE(smooth.value(theta), hard.value(theta) - 1e-12);
        EXPECT_LE(smooth.value(theta), hard.value(theta) + 0.05 * std::log(2.0) + 1e-12);
    }
}

TEST(GroupDro, TrainingShrinksTheGroupGap) {
    // Average over seeds: group-DRO training reduces the worst-group loss
    // relative to average-risk ERM.
    double erm_worst = 0.0;
    double dro_worst = 0.0;
    const auto loss = models::make_logistic_loss();
    const int trials = 4;
    for (int t = 0; t < trials; ++t) {
        const GroupFixture f = make_group_fixture(20 + t);
        const models::ErmObjective erm(f.data, *loss, 0.01);
        const dro::GroupDroObjective group(f.data, *loss, f.groups, 0.02, 0.01);
        const auto erm_fit = optim::minimize_lbfgs(erm, linalg::zeros(f.data.dim()));
        const auto dro_fit = optim::minimize_lbfgs(group, linalg::zeros(f.data.dim()));
        const dro::GroupDroObjective gauge(f.data, *loss, f.groups);
        erm_worst += gauge.value(erm_fit.x);
        dro_worst += gauge.value(dro_fit.x);
    }
    EXPECT_LT(dro_worst / trials, erm_worst / trials + 1e-9);
}

TEST(GroupDro, Validation) {
    const GroupFixture f = make_group_fixture(30);
    const auto loss = models::make_logistic_loss();
    EXPECT_THROW(dro::GroupDroObjective(f.data, *loss, {0, 1}), std::invalid_argument);
    std::vector<std::size_t> with_gap = f.groups;
    with_gap[0] = 5;  // groups 2..4 empty
    EXPECT_THROW(dro::GroupDroObjective(f.data, *loss, with_gap), std::invalid_argument);
}

}  // namespace
}  // namespace drel
