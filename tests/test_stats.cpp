#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"

namespace drel::stats {
namespace {

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkedStreamsDiffer) {
    Rng base(42);
    Rng a = base.fork(1);
    Rng b = base.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform()) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
    Rng base(7);
    EXPECT_DOUBLE_EQ(base.fork(3).uniform(), Rng(7).fork(3).uniform());
}

TEST(Rng, UniformRange) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
    EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximate) {
    Rng rng(2);
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.push(rng.normal(3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, GammaMomentsApproximate) {
    Rng rng(3);
    const double shape = 2.5;
    const double scale = 1.5;
    RunningStats s;
    for (int i = 0; i < 30000; ++i) s.push(rng.gamma(shape, scale));
    EXPECT_NEAR(s.mean(), shape * scale, 0.1);
    EXPECT_NEAR(s.variance(), shape * scale * scale, 0.3);
}

TEST(Rng, GammaSmallShapeStaysPositive) {
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) EXPECT_GT(rng.gamma(0.3, 1.0), 0.0);
}

TEST(Rng, BetaMomentsApproximate) {
    Rng rng(5);
    RunningStats s;
    for (int i = 0; i < 30000; ++i) s.push(rng.beta(2.0, 5.0));
    EXPECT_NEAR(s.mean(), 2.0 / 7.0, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
    Rng rng(6);
    std::vector<int> hits(3, 0);
    for (int i = 0; i < 30000; ++i) ++hits[rng.categorical({1.0, 2.0, 7.0})];
    EXPECT_NEAR(hits[2] / 30000.0, 0.7, 0.02);
    EXPECT_NEAR(hits[0] / 30000.0, 0.1, 0.02);
}

TEST(Rng, CategoricalRejectsInvalid) {
    Rng rng(7);
    EXPECT_THROW(rng.categorical({}), std::invalid_argument);
    EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, DirichletOnSimplex) {
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        const auto p = rng.dirichlet({0.5, 1.0, 2.0});
        EXPECT_NEAR(linalg::sum(p), 1.0, 1e-12);
        for (const double v : p) EXPECT_GE(v, 0.0);
    }
}

TEST(Rng, DirichletMeanMatchesAlphaRatio) {
    Rng rng(9);
    linalg::Vector acc(3, 0.0);
    const int n = 20000;
    for (int i = 0; i < n; ++i) linalg::axpy(1.0, rng.dirichlet({1.0, 2.0, 3.0}), acc);
    EXPECT_NEAR(acc[0] / n, 1.0 / 6.0, 0.01);
    EXPECT_NEAR(acc[2] / n, 3.0 / 6.0, 0.01);
}

TEST(Rng, PermutationIsValid) {
    Rng rng(10);
    const auto p = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (const std::size_t i : p) {
        ASSERT_LT(i, 50u);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    Rng rng(11);
    const auto s = rng.sample_without_replacement(20, 10);
    EXPECT_EQ(s.size(), 10u);
    std::vector<bool> seen(20, false);
    for (const std::size_t i : s) {
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
    EXPECT_THROW(rng.sample_without_replacement(3, 5), std::invalid_argument);
}

// ----------------------------------------------------------- distributions

TEST(Distributions, NormalPdfIntegratesToKnownValue) {
    // At the mean, log pdf = -0.5 log(2 pi var).
    EXPECT_NEAR(log_normal_pdf(0.0, 0.0, 1.0), -0.5 * std::log(2.0 * M_PI), 1e-12);
    EXPECT_NEAR(log_normal_pdf(2.0, 0.0, 1.0), -0.5 * std::log(2.0 * M_PI) - 2.0, 1e-12);
}

TEST(Distributions, GammaPdfKnownPoint) {
    // Gamma(1, 1) is Exponential(1): pdf(x) = e^{-x}.
    EXPECT_NEAR(log_gamma_pdf(2.0, 1.0, 1.0), -2.0, 1e-12);
    EXPECT_TRUE(std::isinf(log_gamma_pdf(-1.0, 2.0, 1.0)));
}

TEST(Distributions, BetaPdfSymmetry) {
    EXPECT_NEAR(log_beta_pdf(0.3, 2.0, 5.0), log_beta_pdf(0.7, 5.0, 2.0), 1e-12);
    EXPECT_TRUE(std::isinf(log_beta_pdf(0.0, 2.0, 2.0)));
}

TEST(Distributions, DirichletUniformCase) {
    // Dirichlet(1,1,1) is uniform on the simplex: pdf = 2! = 2 everywhere.
    EXPECT_NEAR(log_dirichlet_pdf({0.2, 0.3, 0.5}, {1.0, 1.0, 1.0}), std::log(2.0), 1e-12);
}

TEST(Distributions, StudentTApproachesNormalForLargeDof) {
    const double t = log_student_t_pdf(1.3, 1e7, 0.0, 1.0);
    const double n = log_normal_pdf(1.3, 0.0, 1.0);
    EXPECT_NEAR(t, n, 1e-5);
}

TEST(Distributions, DigammaRecurrence) {
    // psi(x+1) = psi(x) + 1/x
    for (const double x : {0.3, 1.0, 2.5, 7.0}) {
        EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
    }
    // psi(1) = -Euler-Mascheroni.
    EXPECT_NEAR(digamma(1.0), -0.5772156649015329, 1e-10);
}

// ------------------------------------------------------ multivariate normal

TEST(MultivariateNormal, LogPdfMatchesUnivariate) {
    const MultivariateNormal mvn = MultivariateNormal::isotropic({0.5}, 2.0);
    EXPECT_NEAR(mvn.log_pdf({1.5}), log_normal_pdf(1.5, 0.5, 2.0), 1e-12);
}

TEST(MultivariateNormal, LogPdfDiagonalFactorizes) {
    const MultivariateNormal mvn =
        MultivariateNormal::diagonal({1.0, -1.0}, {2.0, 3.0});
    const double expected =
        log_normal_pdf(0.0, 1.0, 2.0) + log_normal_pdf(0.5, -1.0, 3.0);
    EXPECT_NEAR(mvn.log_pdf({0.0, 0.5}), expected, 1e-12);
}

TEST(MultivariateNormal, MahalanobisAtMeanIsZero) {
    Rng rng(12);
    linalg::Matrix cov = linalg::Matrix::identity(3);
    cov(0, 1) = cov(1, 0) = 0.4;
    const MultivariateNormal mvn({1.0, 2.0, 3.0}, cov);
    EXPECT_NEAR(mvn.mahalanobis_sq({1.0, 2.0, 3.0}), 0.0, 1e-12);
}

TEST(MultivariateNormal, SampleMomentsMatch) {
    Rng rng(13);
    linalg::Matrix cov(2, 2, {2.0, 0.7, 0.7, 1.0});
    const MultivariateNormal mvn({1.0, -1.0}, cov);
    std::vector<linalg::Vector> samples;
    for (int i = 0; i < 20000; ++i) samples.push_back(mvn.sample(rng));
    const linalg::Vector m = mean_rows(samples);
    EXPECT_NEAR(m[0], 1.0, 0.05);
    EXPECT_NEAR(m[1], -1.0, 0.05);
    const linalg::Matrix c = covariance_rows(samples);
    EXPECT_NEAR(c(0, 0), 2.0, 0.1);
    EXPECT_NEAR(c(0, 1), 0.7, 0.05);
}

TEST(MultivariateNormal, PrecisionTimesResidualIsGradient) {
    linalg::Matrix cov(2, 2, {1.5, 0.3, 0.3, 0.8});
    const MultivariateNormal mvn({0.0, 0.0}, cov);
    const linalg::Vector x{1.0, 2.0};
    // d/dx [-log pdf] = Sigma^{-1} (x - mu); check by finite differences.
    const double h = 1e-6;
    const linalg::Vector g = mvn.precision_times_residual(x);
    for (std::size_t i = 0; i < 2; ++i) {
        linalg::Vector xp = x;
        linalg::Vector xm = x;
        xp[i] += h;
        xm[i] -= h;
        const double numeric = -(mvn.log_pdf(xp) - mvn.log_pdf(xm)) / (2.0 * h);
        EXPECT_NEAR(g[i], numeric, 1e-5);
    }
}

TEST(MultivariateNormal, RejectsMismatchedShapes) {
    EXPECT_THROW(MultivariateNormal({1.0, 2.0}, linalg::Matrix::identity(3)),
                 std::invalid_argument);
    EXPECT_THROW(MultivariateNormal::diagonal({1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(MultivariateNormal::diagonal({1.0}, {-1.0}), std::invalid_argument);
}

// -------------------------------------------------------------- descriptive

TEST(Descriptive, MeanVarianceKnown) {
    const linalg::Vector x{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(x), 2.5);
    EXPECT_NEAR(variance(x), 5.0 / 3.0, 1e-12);
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Descriptive, QuantilesAndMedian) {
    const linalg::Vector x{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(x), 2.5);
    EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(x, 1.0), 4.0);
    EXPECT_THROW(quantile(x, 1.5), std::invalid_argument);
}

TEST(Descriptive, NearestRankPicksTheCeilRankElement) {
    // The engine's latency-tail estimator: rank = ceil(q * n), 1-based,
    // clamped into the sample. Input must already be sorted.
    const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(nearest_rank(sorted, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(nearest_rank(sorted, 0.25), 10.0);
    EXPECT_DOUBLE_EQ(nearest_rank(sorted, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(nearest_rank(sorted, 0.51), 30.0);
    EXPECT_DOUBLE_EQ(nearest_rank(sorted, 0.99), 40.0);
    EXPECT_DOUBLE_EQ(nearest_rank(sorted, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(nearest_rank({7.0}, 0.5), 7.0);
    // Empty sample reports 0 (the engine's "no latencies this round").
    EXPECT_DOUBLE_EQ(nearest_rank({}, 0.5), 0.0);
    EXPECT_THROW(nearest_rank(sorted, -0.1), std::invalid_argument);
    EXPECT_THROW(nearest_rank(sorted, 1.1), std::invalid_argument);
}

TEST(Descriptive, RunningStatsMatchesBatch) {
    Rng rng(14);
    RunningStats s;
    linalg::Vector values;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.normal(2.0, 3.0);
        s.push(v);
        values.push_back(v);
    }
    EXPECT_NEAR(s.mean(), mean(values), 1e-10);
    EXPECT_NEAR(s.variance(), variance(values), 1e-8);
    EXPECT_EQ(s.count(), 500u);
    EXPECT_LE(s.min(), s.mean());
    EXPECT_GE(s.max(), s.mean());
}

TEST(Descriptive, CovarianceRowsKnownCase) {
    // Two perfectly correlated coordinates.
    std::vector<linalg::Vector> rows = {{0.0, 0.0}, {1.0, 2.0}, {2.0, 4.0}};
    const linalg::Matrix c = covariance_rows(rows);
    EXPECT_NEAR(c(0, 1) / std::sqrt(c(0, 0) * c(1, 1)), 1.0, 1e-12);
    EXPECT_THROW(covariance_rows({{1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace drel::stats
