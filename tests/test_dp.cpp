#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dp/crp.hpp"
#include "dp/dpmm_gibbs.hpp"
#include "dp/dpmm_variational.hpp"
#include "dp/mixture_prior.hpp"
#include "dp/stick_breaking.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace drel::dp {
namespace {

// ---------------------------------------------------------- stick breaking

TEST(StickBreaking, WeightsSumToOne) {
    stats::Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const linalg::Vector w = sample_stick_breaking_weights(1.5, 10, rng);
        EXPECT_EQ(w.size(), 10u);
        EXPECT_NEAR(linalg::sum(w), 1.0, 1e-12);
        for (const double v : w) EXPECT_GE(v, 0.0);
    }
}

TEST(StickBreaking, ExpectedWeightsGeometricDecay) {
    const double alpha = 2.0;
    const linalg::Vector w = expected_stick_weights(alpha, 8);
    EXPECT_NEAR(linalg::sum(w), 1.0, 1e-12);
    // E[pi_1] = 1/(1+alpha); ratio of consecutive weights = alpha/(1+alpha).
    EXPECT_NEAR(w[0], 1.0 / 3.0, 1e-12);
    for (std::size_t k = 1; k + 1 < 8; ++k) {
        EXPECT_NEAR(w[k] / w[k - 1], 2.0 / 3.0, 1e-12);
    }
}

TEST(StickBreaking, MonteCarloMatchesExpectedWeights) {
    stats::Rng rng(2);
    const double alpha = 1.0;
    linalg::Vector acc(6, 0.0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        linalg::axpy(1.0, sample_stick_breaking_weights(alpha, 6, rng), acc);
    }
    linalg::scale(acc, 1.0 / trials);
    const linalg::Vector expected = expected_stick_weights(alpha, 6);
    for (std::size_t k = 0; k < 6; ++k) EXPECT_NEAR(acc[k], expected[k], 0.01);
}

TEST(StickBreaking, SmallAlphaConcentratesOnFirstStick) {
    stats::Rng rng(3);
    const linalg::Vector w = expected_stick_weights(0.05, 5);
    EXPECT_GT(w[0], 0.9);
}

TEST(StickBreaking, TruncationForMassShrinksLeftover) {
    const double alpha = 3.0;
    const std::size_t k = truncation_for_mass(alpha, 1e-3);
    const linalg::Vector w = expected_stick_weights(alpha, k);
    EXPECT_LT(w.back(), 1e-3 + 1e-12);
    EXPECT_THROW(truncation_for_mass(alpha, 2.0), std::invalid_argument);
}

TEST(StickBreaking, FractionValidation) {
    EXPECT_THROW(stick_fractions_to_weights({0.5, 1.5}), std::invalid_argument);
    stats::Rng rng(0);
    EXPECT_THROW(sample_stick_breaking_weights(-1.0, 5, rng), std::invalid_argument);
    EXPECT_THROW(sample_stick_breaking_weights(1.0, 0, rng), std::invalid_argument);
}

// --------------------------------------------------------------------- CRP

TEST(Crp, PartitionCoversAllCustomers) {
    stats::Rng rng(4);
    const auto z = sample_crp_partition(1.0, 100, rng);
    EXPECT_EQ(z.size(), 100u);
    const std::size_t k = count_clusters(z);
    EXPECT_GE(k, 1u);
    // Cluster labels must be contiguous 0..k-1.
    std::set<std::size_t> labels(z.begin(), z.end());
    EXPECT_EQ(labels.size(), k);
    EXPECT_EQ(*labels.rbegin(), k - 1);
}

TEST(Crp, ExpectedTableCountFormula) {
    // alpha=1, n=3: 1 + 1/2 + 1/3
    EXPECT_NEAR(expected_table_count(1.0, 3), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
}

TEST(Crp, MonteCarloTableCountMatchesExpectation) {
    stats::Rng rng(5);
    const double alpha = 2.0;
    const std::size_t n = 60;
    stats::RunningStats tables;
    for (int t = 0; t < 3000; ++t) {
        tables.push(static_cast<double>(count_clusters(sample_crp_partition(alpha, n, rng))));
    }
    EXPECT_NEAR(tables.mean(), expected_table_count(alpha, n), 0.15);
}

TEST(Crp, LargerAlphaMakesMoreTables) {
    stats::Rng rng(6);
    stats::RunningStats small_alpha;
    stats::RunningStats large_alpha;
    for (int t = 0; t < 500; ++t) {
        small_alpha.push(
            static_cast<double>(count_clusters(sample_crp_partition(0.2, 80, rng))));
        large_alpha.push(
            static_cast<double>(count_clusters(sample_crp_partition(5.0, 80, rng))));
    }
    EXPECT_GT(large_alpha.mean(), small_alpha.mean() + 2.0);
}

TEST(Crp, PredictiveProbabilitiesNormalized) {
    const auto p = crp_predictive(1.5, {3, 5, 2});
    EXPECT_EQ(p.size(), 4u);
    double total = 0.0;
    for (const double v : p) total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(p[1], 5.0 / 11.5, 1e-12);
    EXPECT_NEAR(p[3], 1.5 / 11.5, 1e-12);
}

// ------------------------------------------------------------ mixture prior

MixturePrior two_atom_prior() {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({2.0, 0.0}, 0.5));
    atoms.push_back(stats::MultivariateNormal::isotropic({-2.0, 0.0}, 0.5));
    return MixturePrior({0.7, 0.3}, std::move(atoms));
}

TEST(MixturePrior, WeightsNormalized) {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({0.0}, 1.0));
    atoms.push_back(stats::MultivariateNormal::isotropic({1.0}, 1.0));
    const MixturePrior prior({2.0, 6.0}, std::move(atoms));
    EXPECT_NEAR(prior.weights()[0], 0.25, 1e-12);
    EXPECT_NEAR(prior.weights()[1], 0.75, 1e-12);
}

TEST(MixturePrior, LogPdfMatchesManualMixture) {
    const MixturePrior prior = two_atom_prior();
    const linalg::Vector x{0.5, 0.1};
    const double manual = std::log(0.7 * std::exp(prior.atom(0).log_pdf(x)) +
                                   0.3 * std::exp(prior.atom(1).log_pdf(x)));
    EXPECT_NEAR(prior.log_pdf(x), manual, 1e-10);
}

TEST(MixturePrior, ResponsibilitiesSumToOneAndTrackProximity) {
    const MixturePrior prior = two_atom_prior();
    const linalg::Vector near_first = prior.responsibilities({2.0, 0.0});
    EXPECT_NEAR(linalg::sum(near_first), 1.0, 1e-12);
    EXPECT_GT(near_first[0], 0.95);
    const linalg::Vector near_second = prior.responsibilities({-2.0, 0.0});
    EXPECT_GT(near_second[1], 0.9);
    EXPECT_EQ(prior.map_component({-2.0, 0.0}), 1u);
}

TEST(MixturePrior, GradientMatchesFiniteDifference) {
    const MixturePrior prior = two_atom_prior();
    const linalg::Vector x{0.3, -0.4};
    const linalg::Vector g = prior.log_pdf_gradient(x);
    const double h = 1e-6;
    for (std::size_t i = 0; i < 2; ++i) {
        linalg::Vector xp = x;
        linalg::Vector xm = x;
        xp[i] += h;
        xm[i] -= h;
        EXPECT_NEAR(g[i], (prior.log_pdf(xp) - prior.log_pdf(xm)) / (2.0 * h), 1e-5);
    }
}

TEST(MixturePrior, EmSurrogateIsTightMajorizer) {
    // Jensen: log p(theta) >= Q(theta; r) + H(r) for any r, equality at
    // r = responsibilities(theta).
    const MixturePrior prior = two_atom_prior();
    const linalg::Vector theta{0.7, 0.2};
    const linalg::Vector r_star = prior.responsibilities(theta);
    auto entropy = [](const linalg::Vector& p) {
        double h = 0.0;
        for (const double v : p) {
            if (v > 0.0) h -= v * std::log(v);
        }
        return h;
    };
    EXPECT_NEAR(prior.em_surrogate(theta, r_star) + entropy(r_star), prior.log_pdf(theta),
                1e-10);
    // Any other responsibility vector gives a strict lower bound.
    const linalg::Vector r_other{0.5, 0.5};
    EXPECT_LE(prior.em_surrogate(theta, r_other) + entropy(r_other),
              prior.log_pdf(theta) + 1e-12);
}

TEST(MixturePrior, SurrogateGradientMatchesFiniteDifference) {
    const MixturePrior prior = two_atom_prior();
    const linalg::Vector theta{0.7, 0.2};
    const linalg::Vector r{0.6, 0.4};
    const linalg::Vector g = prior.em_surrogate_gradient(theta, r);
    const double h = 1e-6;
    for (std::size_t i = 0; i < 2; ++i) {
        linalg::Vector tp = theta;
        linalg::Vector tm = theta;
        tp[i] += h;
        tm[i] -= h;
        EXPECT_NEAR(g[i],
                    (prior.em_surrogate(tp, r) - prior.em_surrogate(tm, r)) / (2.0 * h), 1e-5);
    }
}

TEST(MixturePrior, MeanAndMomentMatch) {
    const MixturePrior prior = two_atom_prior();
    const linalg::Vector m = prior.mean();
    EXPECT_NEAR(m[0], 0.7 * 2.0 + 0.3 * (-2.0), 1e-12);
    const stats::MultivariateNormal g = prior.moment_matched_gaussian();
    EXPECT_NEAR(g.mean()[0], m[0], 1e-12);
    // Between-component spread must inflate the matched variance above the
    // within-component 0.5.
    EXPECT_GT(g.covariance()(0, 0), 2.0);
}

TEST(MixturePrior, SampleMomentsMatchMixture) {
    stats::Rng rng(7);
    const MixturePrior prior = two_atom_prior();
    stats::RunningStats first;
    for (int i = 0; i < 20000; ++i) first.push(prior.sample(rng)[0]);
    EXPECT_NEAR(first.mean(), prior.mean()[0], 0.05);
}

TEST(MixturePrior, Validation) {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({0.0}, 1.0));
    EXPECT_THROW(MixturePrior({1.0, 1.0}, std::move(atoms)), std::invalid_argument);
    std::vector<stats::MultivariateNormal> atoms2;
    atoms2.push_back(stats::MultivariateNormal::isotropic({0.0}, 1.0));
    EXPECT_THROW(MixturePrior({-1.0}, std::move(atoms2)), std::invalid_argument);
}

// ------------------------------------------------------------- DPMM fixture

/// Three well-separated 2-D clusters of "device parameters".
std::vector<linalg::Vector> clustered_observations(stats::Rng& rng, std::size_t per_cluster) {
    const std::vector<linalg::Vector> centers = {{6.0, 0.0}, {-6.0, 0.0}, {0.0, 6.0}};
    std::vector<linalg::Vector> obs;
    for (const auto& c : centers) {
        for (std::size_t i = 0; i < per_cluster; ++i) {
            linalg::Vector x = c;
            x[0] += 0.3 * rng.normal();
            x[1] += 0.3 * rng.normal();
            obs.push_back(std::move(x));
        }
    }
    return obs;
}

DpmmConfig dpmm_config() {
    DpmmConfig config;
    config.alpha = 1.0;
    config.base_mean = {0.0, 0.0};
    config.base_covariance = linalg::Matrix::identity(2) * 25.0;
    config.within_covariance = linalg::Matrix::identity(2) * 0.25;
    config.num_sweeps = 60;
    return config;
}

// -------------------------------------------------------------- DPMM Gibbs

TEST(DpmmGibbs, RecoversThreeClusters) {
    stats::Rng rng(8);
    DpmmGibbs sampler(clustered_observations(rng, 15), dpmm_config());
    sampler.run(rng);
    EXPECT_EQ(sampler.num_clusters(), 3u);
    // Members of the same planted cluster must share an assignment.
    const auto& z = sampler.assignments();
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t i = 1; i < 15; ++i) {
            EXPECT_EQ(z[c * 15 + i], z[c * 15]) << "cluster " << c;
        }
    }
}

TEST(DpmmGibbs, ClusterPosteriorsNearPlantedCenters) {
    stats::Rng rng(9);
    DpmmGibbs sampler(clustered_observations(rng, 20), dpmm_config());
    sampler.run(rng);
    ASSERT_EQ(sampler.num_clusters(), 3u);
    for (const auto& cp : sampler.cluster_posteriors()) {
        const double r = linalg::norm2(cp.mean);
        EXPECT_NEAR(r, 6.0, 0.5);  // all centers are at radius 6
        EXPECT_EQ(cp.count, 20u);
    }
}

TEST(DpmmGibbs, LogJointImprovesFromColdStart) {
    stats::Rng rng(10);
    DpmmGibbs sampler(clustered_observations(rng, 12), dpmm_config());
    const double before = sampler.log_joint();
    sampler.run(rng);
    EXPECT_GT(sampler.log_joint(), before + 10.0);
}

TEST(DpmmGibbs, ExtractPriorWeightsAndEscapeAtom) {
    stats::Rng rng(11);
    DpmmGibbs sampler(clustered_observations(rng, 10), dpmm_config());
    sampler.run(rng);
    const MixturePrior with_base = sampler.extract_prior(true);
    const MixturePrior without_base = sampler.extract_prior(false);
    EXPECT_EQ(with_base.num_components(), without_base.num_components() + 1);
    EXPECT_NEAR(linalg::sum(with_base.weights()), 1.0, 1e-12);
    // The escape atom carries the alpha/(N+alpha) share before renorm, so it
    // must be the lightest component.
    double min_weight = 1e9;
    for (const double w : with_base.weights()) min_weight = std::min(min_weight, w);
    EXPECT_NEAR(min_weight, 1.0 / 31.0, 0.02);
}

TEST(DpmmGibbs, AlphaResamplingStaysPositive) {
    stats::Rng rng(12);
    DpmmConfig config = dpmm_config();
    config.resample_alpha = true;
    config.num_sweeps = 40;
    DpmmGibbs sampler(clustered_observations(rng, 10), config);
    sampler.run(rng);
    EXPECT_GT(sampler.alpha(), 0.0);
    EXPECT_LT(sampler.alpha(), 50.0);
}

TEST(DpmmGibbs, SingleClusterDataCollapses) {
    stats::Rng rng(13);
    std::vector<linalg::Vector> obs;
    for (int i = 0; i < 30; ++i) {
        obs.push_back({0.1 * rng.normal(), 0.1 * rng.normal()});
    }
    DpmmGibbs sampler(std::move(obs), dpmm_config());
    sampler.run(rng);
    EXPECT_EQ(sampler.num_clusters(), 1u);
}

TEST(DpmmGibbs, Validation) {
    stats::Rng rng(14);
    EXPECT_THROW(DpmmGibbs({}, dpmm_config()), std::invalid_argument);
    DpmmConfig bad = dpmm_config();
    bad.alpha = 0.0;
    EXPECT_THROW(DpmmGibbs({{1.0, 2.0}}, bad), std::invalid_argument);
    DpmmConfig mismatched = dpmm_config();
    EXPECT_THROW(DpmmGibbs({{1.0, 2.0, 3.0}}, mismatched), std::invalid_argument);
}

// -------------------------------------------------------- DPMM variational

VariationalConfig cavi_config() {
    VariationalConfig config;
    config.alpha = 1.0;
    config.base_mean = {0.0, 0.0};
    config.base_covariance = linalg::Matrix::identity(2) * 25.0;
    config.within_covariance = linalg::Matrix::identity(2) * 0.25;
    config.truncation = 8;
    return config;
}

TEST(DpmmVariational, ElboMonotone) {
    stats::Rng rng(15);
    DpmmVariational cavi(clustered_observations(rng, 12), cavi_config());
    // Manual run with explicit monotonicity check at every step.
    (void)cavi.run(rng);
    double previous = cavi.elbo();
    for (int i = 0; i < 10; ++i) {
        const double current = cavi.iterate();
        EXPECT_GE(current, previous - 1e-7);
        previous = current;
    }
}

TEST(DpmmVariational, ExpectedWeightsOnSimplex) {
    stats::Rng rng(16);
    DpmmVariational cavi(clustered_observations(rng, 10), cavi_config());
    cavi.run(rng);
    const linalg::Vector w = cavi.expected_weights();
    EXPECT_NEAR(linalg::sum(w), 1.0, 1e-9);
    for (const double v : w) EXPECT_GE(v, 0.0);
}

TEST(DpmmVariational, FindsThreeHeavyComponents) {
    stats::Rng rng(17);
    DpmmVariational cavi(clustered_observations(rng, 20), cavi_config());
    cavi.run(rng);
    const linalg::Vector w = cavi.expected_weights();
    std::size_t heavy = 0;
    for (const double v : w) {
        if (v > 0.1) ++heavy;
    }
    EXPECT_EQ(heavy, 3u);
}

TEST(DpmmVariational, ExtractedPriorDropsEmptyComponents) {
    stats::Rng rng(18);
    DpmmVariational cavi(clustered_observations(rng, 20), cavi_config());
    cavi.run(rng);
    const MixturePrior prior = cavi.extract_prior(0.05);
    EXPECT_LE(prior.num_components(), 4u);
    EXPECT_GE(prior.num_components(), 3u);
    EXPECT_NEAR(linalg::sum(prior.weights()), 1.0, 1e-12);
}

TEST(DpmmVariational, PriorMeansNearPlantedCenters) {
    stats::Rng rng(19);
    DpmmVariational cavi(clustered_observations(rng, 25), cavi_config());
    cavi.run(rng);
    const MixturePrior prior = cavi.extract_prior(0.05);
    std::size_t matched = 0;
    for (const linalg::Vector& center :
         std::vector<linalg::Vector>{{6.0, 0.0}, {-6.0, 0.0}, {0.0, 6.0}}) {
        for (std::size_t k = 0; k < prior.num_components(); ++k) {
            if (linalg::distance2(prior.atom(k).mean(), center) < 0.5) {
                ++matched;
                break;
            }
        }
    }
    EXPECT_EQ(matched, 3u);
}

TEST(DpmmVariational, Validation) {
    VariationalConfig bad = cavi_config();
    bad.truncation = 1;
    EXPECT_THROW(DpmmVariational({{1.0, 2.0}}, bad), std::invalid_argument);
    EXPECT_THROW(DpmmVariational({}, cavi_config()), std::invalid_argument);
}

// ----------------------------------------- Gibbs vs variational agreement

TEST(DpmmAgreement, BothInferencesShipSimilarPriors) {
    stats::Rng rng(20);
    const auto obs = clustered_observations(rng, 20);
    stats::Rng gibbs_rng(21);
    DpmmGibbs gibbs(obs, dpmm_config());
    gibbs.run(gibbs_rng);
    stats::Rng cavi_rng(22);
    DpmmVariational cavi(obs, cavi_config());
    cavi.run(cavi_rng);
    const MixturePrior pg = gibbs.extract_prior(false);
    const MixturePrior pv = cavi.extract_prior(0.05);
    // Same density (up to Monte Carlo noise) at a probe set of points.
    for (const linalg::Vector& probe :
         std::vector<linalg::Vector>{{6.0, 0.0}, {-6.0, 0.0}, {0.0, 6.0}}) {
        EXPECT_NEAR(pg.log_pdf(probe), pv.log_pdf(probe), 1.0) << probe[0] << "," << probe[1];
    }
}

}  // namespace
}  // namespace drel::dp
