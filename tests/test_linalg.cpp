#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::linalg {
namespace {

// -------------------------------------------------------------- vector ops

TEST(VectorOps, DotAndNorms) {
    const Vector x{3.0, 4.0};
    EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(norm2(x), 5.0);
    EXPECT_DOUBLE_EQ(norm1(x), 7.0);
    EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOps, DotRejectsMismatch) {
    EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, Norm2AvoidsOverflow) {
    const Vector huge{1e200, 1e200};
    EXPECT_NEAR(norm2(huge) / 1e200, std::sqrt(2.0), 1e-12);
}

TEST(VectorOps, AxpyAndArithmetic) {
    Vector y{1.0, 1.0};
    axpy(2.0, {1.0, -1.0}, y);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    const Vector s = add({1.0, 2.0}, {3.0, 4.0});
    EXPECT_DOUBLE_EQ(s[0], 4.0);
    const Vector d = sub({1.0, 2.0}, {3.0, 4.0});
    EXPECT_DOUBLE_EQ(d[1], -2.0);
    const Vector h = hadamard({2.0, 3.0}, {4.0, 5.0});
    EXPECT_DOUBLE_EQ(h[0], 8.0);
    EXPECT_DOUBLE_EQ(h[1], 15.0);
}

TEST(VectorOps, LogSumExpStable) {
    // Huge values must not overflow.
    EXPECT_NEAR(log_sum_exp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
    // Tiny values must not underflow to -inf.
    EXPECT_NEAR(log_sum_exp({-1000.0, -1000.0}), -1000.0 + std::log(2.0), 1e-9);
    EXPECT_TRUE(std::isinf(log_sum_exp({})));
}

TEST(VectorOps, SoftmaxSumsToOne) {
    Vector lw{1.0, 2.0, 3.0};
    softmax_inplace(lw);
    EXPECT_NEAR(sum(lw), 1.0, 1e-12);
    EXPECT_GT(lw[2], lw[1]);
    EXPECT_GT(lw[1], lw[0]);
}

TEST(VectorOps, ArgmaxAndUnit) {
    EXPECT_EQ(argmax({0.1, 5.0, 2.0}), 1u);
    EXPECT_THROW(argmax({}), std::invalid_argument);
    const Vector e = unit(3, 1);
    EXPECT_DOUBLE_EQ(e[1], 1.0);
    EXPECT_DOUBLE_EQ(e[0] + e[2], 0.0);
    EXPECT_THROW(unit(3, 3), std::out_of_range);
}

TEST(VectorOps, SimplexProjectionIdempotentOnSimplex) {
    const Vector p{0.2, 0.3, 0.5};
    const Vector q = project_to_simplex(p);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(q[i], p[i], 1e-12);
}

TEST(VectorOps, SimplexProjectionProducesValidPoint) {
    const Vector q = project_to_simplex({5.0, -3.0, 0.4});
    EXPECT_NEAR(sum(q), 1.0, 1e-12);
    for (const double v : q) EXPECT_GE(v, 0.0);
    // The large coordinate should dominate.
    EXPECT_GT(q[0], 0.9);
}

// ------------------------------------------------------------------ matrix

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 0) = 7.0;
    EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
    EXPECT_THROW(Matrix(2, 2, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, MatvecAgainstHandComputed) {
    const Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
    const Vector v = a.matvec({1.0, 1.0});
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 7.0);
    const Vector vt = a.matvec_transposed({1.0, 1.0});
    EXPECT_DOUBLE_EQ(vt[0], 4.0);
    EXPECT_DOUBLE_EQ(vt[1], 6.0);
}

TEST(Matrix, MatmulMatchesIdentity) {
    const Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
    const Matrix prod = a.matmul(Matrix::identity(2));
    EXPECT_NEAR(Matrix::max_abs_diff(a, prod), 0.0, 1e-15);
}

TEST(Matrix, MatmulHandChecked) {
    const Matrix a(2, 3, {1.0, 0.0, 2.0, 0.0, 1.0, -1.0});
    const Matrix b(3, 1, {1.0, 2.0, 3.0});
    const Matrix c = a.matmul(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
    EXPECT_DOUBLE_EQ(c(1, 0), -1.0);
    EXPECT_THROW(b.matmul(a).matmul(b), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
    const Matrix a(2, 3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
    EXPECT_NEAR(Matrix::max_abs_diff(a, a.transposed().transposed()), 0.0, 0.0);
    EXPECT_DOUBLE_EQ(a.transposed()(2, 1), 6.0);
}

TEST(Matrix, OuterAndAddOuter) {
    const Matrix o = Matrix::outer({1.0, 2.0}, {3.0, 4.0});
    EXPECT_DOUBLE_EQ(o(1, 0), 6.0);
    Matrix s = Matrix::identity(2);
    s.add_outer(2.0, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s(0, 1), 2.0);
}

TEST(Matrix, TraceAndDiagonal) {
    Matrix m = Matrix::diagonal({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(m.trace(), 6.0);
    m.add_diagonal(0.5);
    EXPECT_DOUBLE_EQ(m.trace(), 7.5);
}

TEST(Matrix, RowColumnOps) {
    Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
    const Vector r = m.row(1);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    const Vector c = m.col(1);
    EXPECT_DOUBLE_EQ(c[0], 2.0);
    m.set_row(0, {9.0, 8.0});
    EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
    EXPECT_THROW(m.set_row(0, {1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- cholesky

Matrix random_spd(std::size_t n, stats::Rng& rng) {
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    }
    Matrix spd = a.matmul(a.transposed());
    spd.add_diagonal(0.5);
    return spd;
}

TEST(Cholesky, ReconstructsMatrix) {
    stats::Rng rng(1);
    const Matrix a = random_spd(5, rng);
    const Cholesky chol(a);
    const Matrix rebuilt = chol.lower().matmul(chol.lower().transposed());
    EXPECT_LT(Matrix::max_abs_diff(a, rebuilt), 1e-10);
}

TEST(Cholesky, SolveMatchesDirectCheck) {
    stats::Rng rng(2);
    const Matrix a = random_spd(6, rng);
    const Cholesky chol(a);
    const Vector b = rng.standard_normal_vector(6);
    const Vector x = chol.solve(b);
    EXPECT_LT(distance2(a.matvec(x), b), 1e-9);
}

TEST(Cholesky, LogDetMatchesDiagonalCase) {
    const Matrix d = Matrix::diagonal({2.0, 3.0, 4.0});
    const Cholesky chol(d);
    EXPECT_NEAR(chol.log_det(), std::log(24.0), 1e-12);
}

TEST(Cholesky, QuadFormMatchesExplicit) {
    stats::Rng rng(3);
    const Matrix a = random_spd(4, rng);
    const Cholesky chol(a);
    const Vector x = rng.standard_normal_vector(4);
    EXPECT_NEAR(chol.quad_form_inv(x), dot(x, chol.solve(x)), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
    Matrix bad = Matrix::identity(2);
    bad(0, 0) = -1.0;
    EXPECT_THROW(Cholesky{bad}, std::invalid_argument);
    EXPECT_FALSE(Cholesky::try_factor(bad).has_value());
}

TEST(Cholesky, JitterRescuesSemidefinite) {
    // Rank-1 matrix: singular but PSD; jitter must make it factorable.
    Matrix semidefinite = Matrix::outer({1.0, 1.0}, {1.0, 1.0});
    const Cholesky chol = Cholesky::factor_with_jitter(semidefinite);
    EXPECT_EQ(chol.dim(), 2u);
}

TEST(Cholesky, InverseTimesOriginalIsIdentity) {
    stats::Rng rng(4);
    const Matrix a = random_spd(5, rng);
    const Matrix inv = Cholesky(a).inverse();
    EXPECT_LT(Matrix::max_abs_diff(a.matmul(inv), Matrix::identity(5)), 1e-8);
}

// ---------------------------------------------------------------------- QR

TEST(QR, OrthonormalColumnsAndReconstruction) {
    stats::Rng rng(5);
    Matrix a(8, 4);
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
    }
    const QR qr(a);
    const Matrix qtq = qr.q().transposed().matmul(qr.q());
    EXPECT_LT(Matrix::max_abs_diff(qtq, Matrix::identity(4)), 1e-10);
    EXPECT_LT(Matrix::max_abs_diff(qr.q().matmul(qr.r()), a), 1e-10);
}

TEST(QR, LeastSquaresRecoversPlantedSolution) {
    stats::Rng rng(6);
    Matrix a(20, 3);
    for (std::size_t r = 0; r < 20; ++r) {
        for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
    }
    const Vector truth{1.0, -2.0, 0.5};
    const Vector b = a.matvec(truth);
    const Vector x = QR(a).solve_least_squares(b);
    EXPECT_LT(distance2(x, truth), 1e-9);
}

TEST(QR, RejectsRankDeficient) {
    Matrix a(3, 2);
    a(0, 0) = 1.0;
    a(1, 0) = 2.0;
    a(2, 0) = 3.0;
    // Second column identical to first.
    a(0, 1) = 1.0;
    a(1, 1) = 2.0;
    a(2, 1) = 3.0;
    EXPECT_THROW(QR{a}, std::invalid_argument);
}

TEST(QR, RejectsWideMatrix) {
    EXPECT_THROW(QR{Matrix(2, 3, 1.0)}, std::invalid_argument);
}

// ------------------------------------------------------------ eigen (sym)

TEST(EigenSym, DiagonalMatrixEigenvaluesSorted) {
    const EigenSym es = eigen_sym(Matrix::diagonal({3.0, 1.0, 2.0}));
    EXPECT_NEAR(es.values[0], 1.0, 1e-10);
    EXPECT_NEAR(es.values[1], 2.0, 1e-10);
    EXPECT_NEAR(es.values[2], 3.0, 1e-10);
}

TEST(EigenSym, ReconstructsMatrix) {
    stats::Rng rng(7);
    const Matrix a = random_spd(5, rng);
    const EigenSym es = eigen_sym(a);
    // A = V diag(lambda) V^T
    Matrix scaled = es.vectors;
    for (std::size_t c = 0; c < 5; ++c) {
        for (std::size_t r = 0; r < 5; ++r) scaled(r, c) *= es.values[c];
    }
    const Matrix rebuilt = scaled.matmul(es.vectors.transposed());
    EXPECT_LT(Matrix::max_abs_diff(a, rebuilt), 1e-8);
}

TEST(EigenSym, SqrtPsdSquaresBack) {
    stats::Rng rng(8);
    const Matrix a = random_spd(4, rng);
    const Matrix root = sqrt_psd(a);
    EXPECT_LT(Matrix::max_abs_diff(root.matmul(root), a), 1e-8);
}

TEST(EigenSym, SqrtPsdRejectsIndefinite) {
    Matrix bad = Matrix::identity(2);
    bad(1, 1) = -2.0;
    EXPECT_THROW(sqrt_psd(bad), std::invalid_argument);
}

TEST(EigenSym, MinEigenvalueOfSpdIsPositive) {
    stats::Rng rng(9);
    EXPECT_GT(min_eigenvalue(random_spd(6, rng)), 0.0);
}

}  // namespace
}  // namespace drel::linalg
