#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "optim/admm.hpp"
#include "optim/fista.hpp"
#include "optim/gradient_descent.hpp"
#include "optim/lbfgs.hpp"
#include "optim/line_search.hpp"
#include "optim/objective.hpp"
#include "optim/scalar.hpp"
#include "stats/rng.hpp"

namespace drel::optim {
namespace {

/// f(x) = 0.5 x^T A x - b^T x with SPD A; optimum at A x = b.
class QuadraticObjective final : public Objective {
 public:
    QuadraticObjective(linalg::Matrix a, linalg::Vector b) : a_(std::move(a)), b_(std::move(b)) {}

    std::size_t dim() const override { return b_.size(); }

    double eval(const linalg::Vector& x, linalg::Vector* grad) const override {
        const linalg::Vector ax = a_.matvec(x);
        if (grad) {
            *grad = ax;
            linalg::axpy(-1.0, b_, *grad);
        }
        return 0.5 * linalg::dot(x, ax) - linalg::dot(b_, x);
    }

 private:
    linalg::Matrix a_;
    linalg::Vector b_;
};

QuadraticObjective random_quadratic(std::size_t n, stats::Rng& rng) {
    linalg::Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.normal();
    }
    linalg::Matrix a = m.matmul(m.transposed());
    a.add_diagonal(1.0);
    return QuadraticObjective(std::move(a), rng.standard_normal_vector(n));
}

/// Rosenbrock in 2-D — the classic nonconvex line-search stress test.
class RosenbrockObjective final : public Objective {
 public:
    std::size_t dim() const override { return 2; }

    double eval(const linalg::Vector& x, linalg::Vector* grad) const override {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        if (grad) {
            *grad = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
        }
        return a * a + 100.0 * b * b;
    }
};

// ----------------------------------------------------------- finite checks

TEST(Objective, NumericalGradientMatchesAnalytic) {
    stats::Rng rng(21);
    const QuadraticObjective q = random_quadratic(5, rng);
    const linalg::Vector x = rng.standard_normal_vector(5);
    const linalg::Vector analytic = q.gradient(x);
    const linalg::Vector numeric = q.numerical_gradient(x);
    EXPECT_LT(linalg::distance2(analytic, numeric), 1e-5);
}

// ------------------------------------------------------------- line search

TEST(LineSearch, ArmijoAcceptsDescentDirection) {
    stats::Rng rng(22);
    const QuadraticObjective q = random_quadratic(4, rng);
    const linalg::Vector x = rng.standard_normal_vector(4);
    linalg::Vector grad;
    const double fx = q.eval(x, &grad);
    const LineSearchResult r =
        backtracking_armijo(q, x, fx, grad, linalg::scaled(grad, -1.0));
    ASSERT_TRUE(r.success);
    EXPECT_LT(r.value, fx);
}

TEST(LineSearch, ArmijoRejectsAscentDirection) {
    stats::Rng rng(23);
    const QuadraticObjective q = random_quadratic(4, rng);
    const linalg::Vector x = rng.standard_normal_vector(4);
    linalg::Vector grad;
    const double fx = q.eval(x, &grad);
    const LineSearchResult r = backtracking_armijo(q, x, fx, grad, grad);
    EXPECT_FALSE(r.success);
}

TEST(LineSearch, StrongWolfeSatisfiesBothConditions) {
    stats::Rng rng(24);
    const QuadraticObjective q = random_quadratic(6, rng);
    const linalg::Vector x = rng.standard_normal_vector(6);
    linalg::Vector grad;
    const double fx = q.eval(x, &grad);
    const linalg::Vector d = linalg::scaled(grad, -1.0);
    const double c1 = 1e-4;
    const double c2 = 0.9;
    const LineSearchResult r = strong_wolfe(q, x, fx, grad, d, 1.0, c1, c2);
    ASSERT_TRUE(r.success);
    // Armijo:
    EXPECT_LE(r.value, fx + c1 * r.step * linalg::dot(grad, d) + 1e-12);
    // Curvature:
    linalg::Vector x_new = x;
    linalg::axpy(r.step, d, x_new);
    linalg::Vector grad_new;
    q.eval(x_new, &grad_new);
    EXPECT_LE(std::fabs(linalg::dot(grad_new, d)), -c2 * linalg::dot(grad, d) + 1e-9);
}

// --------------------------------------------------------- gradient descent

TEST(GradientDescent, SolvesQuadraticToTolerance) {
    stats::Rng rng(25);
    const QuadraticObjective q = random_quadratic(6, rng);
    GradientDescentOptions options;
    options.stopping.max_iterations = 5000;
    options.stopping.grad_tolerance = 1e-8;
    options.stopping.value_tolerance = 0.0;  // force the gradient criterion
    const OptimResult r = minimize_gradient_descent(q, linalg::zeros(6), options);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.grad_norm, 1e-6);
}

TEST(GradientDescent, RejectsDimensionMismatch) {
    stats::Rng rng(26);
    const QuadraticObjective q = random_quadratic(3, rng);
    EXPECT_THROW(minimize_gradient_descent(q, linalg::zeros(4)), std::invalid_argument);
}

TEST(ProjectedGradient, StaysInSimplexAndImproves) {
    stats::Rng rng(27);
    const QuadraticObjective q = random_quadratic(5, rng);
    const Projection project = [](const linalg::Vector& v) {
        return linalg::project_to_simplex(v);
    };
    ProjectedGradientOptions options;
    options.stopping.max_iterations = 2000;
    options.stopping.grad_tolerance = 1e-10;
    const OptimResult r = minimize_projected_gradient(q, linalg::zeros(5), project, options);
    EXPECT_NEAR(linalg::sum(r.x), 1.0, 1e-9);
    for (const double v : r.x) EXPECT_GE(v, -1e-12);
    // Must be at least as good as every vertex (optimality over the simplex).
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_LE(r.value, q.value(linalg::unit(5, i)) + 1e-6);
    }
}

// ------------------------------------------------------------------- L-BFGS

TEST(Lbfgs, MatchesClosedFormQuadraticSolution) {
    stats::Rng rng(28);
    linalg::Matrix m(8, 8);
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 8; ++c) m(r, c) = rng.normal();
    }
    linalg::Matrix a = m.matmul(m.transposed());
    a.add_diagonal(1.0);
    const linalg::Vector b = rng.standard_normal_vector(8);
    const QuadraticObjective q(a, b);
    const OptimResult r = minimize_lbfgs(q, linalg::zeros(8));
    ASSERT_TRUE(r.converged);
    // Optimum solves A x = b.
    EXPECT_LT(linalg::distance2(a.matvec(r.x), b), 1e-5);
}

TEST(Lbfgs, SolvesRosenbrock) {
    const RosenbrockObjective f;
    LbfgsOptions options;
    options.stopping.max_iterations = 2000;
    const OptimResult r = minimize_lbfgs(f, {-1.2, 1.0}, options);
    EXPECT_NEAR(r.x[0], 1.0, 1e-4);
    EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, FasterThanGradientDescentOnIllConditioned) {
    // Diagonal quadratic with condition number 1e4.
    linalg::Vector diag(10);
    for (std::size_t i = 0; i < 10; ++i) diag[i] = std::pow(10.0, static_cast<double>(i) / 2.25);
    const QuadraticObjective q(linalg::Matrix::diagonal(diag), linalg::constant(10, 1.0));
    const OptimResult lbfgs = minimize_lbfgs(q, linalg::zeros(10));
    GradientDescentOptions gd_options;
    gd_options.stopping.max_iterations = lbfgs.iterations + 5;
    const OptimResult gd = minimize_gradient_descent(q, linalg::zeros(10), gd_options);
    EXPECT_LT(lbfgs.value, gd.value - 1e-8);  // same budget, L-BFGS strictly better
}

TEST(Lbfgs, RespectsHistoryValidation) {
    stats::Rng rng(29);
    const QuadraticObjective q = random_quadratic(3, rng);
    LbfgsOptions options;
    options.history = 0;
    EXPECT_THROW(minimize_lbfgs(q, linalg::zeros(3), options), std::invalid_argument);
}

// -------------------------------------------------------------------- FISTA

TEST(Fista, LassoShrinksExactlyLikeSoftThreshold) {
    // min 0.5 ||x - v||^2 + lambda ||x||_1 has the closed-form solution
    // soft_threshold(v, lambda).
    const linalg::Vector v{3.0, -0.5, 0.1, -2.0};
    const double lambda = 1.0;
    const FunctionObjective smooth(4, [&](const linalg::Vector& x, linalg::Vector* grad) {
        const linalg::Vector d = linalg::sub(x, v);
        if (grad) *grad = d;
        return 0.5 * linalg::dot(d, d);
    });
    const ProxOperator prox = [&](const linalg::Vector& p, double t) {
        return prox_l1(p, t, lambda);
    };
    const NonSmoothValue g = [&](const linalg::Vector& x) { return lambda * linalg::norm1(x); };
    const OptimResult r = minimize_fista(smooth, prox, g, linalg::zeros(4));
    const linalg::Vector expected = prox_l1(v, 1.0, lambda);
    EXPECT_LT(linalg::distance2(r.x, expected), 1e-6);
}

TEST(Fista, ProxL1KnownValues) {
    const linalg::Vector r = prox_l1({2.0, -0.3, 0.0}, 1.0, 0.5);
    EXPECT_DOUBLE_EQ(r[0], 1.5);
    EXPECT_DOUBLE_EQ(r[1], 0.0);
    EXPECT_DOUBLE_EQ(r[2], 0.0);
}

TEST(Fista, ProxL2NormShrinksRadially) {
    const linalg::Vector v{3.0, 4.0};  // norm 5
    const linalg::Vector r = prox_l2_norm(v, 1.0, 2.0);
    EXPECT_NEAR(linalg::norm2(r), 3.0, 1e-12);
    // Direction preserved.
    EXPECT_NEAR(r[0] / r[1], 3.0 / 4.0, 1e-12);
    // Inside the threshold everything collapses to zero.
    const linalg::Vector z = prox_l2_norm({0.1, 0.1}, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(linalg::norm2(z), 0.0);
}

TEST(Fista, AcceleratedNotWorseThanIsta) {
    stats::Rng rng(30);
    const QuadraticObjective q = random_quadratic(10, rng);
    const ProxOperator prox = [](const linalg::Vector& p, double t) {
        return prox_l1(p, t, 0.1);
    };
    const NonSmoothValue g = [](const linalg::Vector& x) { return 0.1 * linalg::norm1(x); };
    FistaOptions fista_options;
    fista_options.stopping.max_iterations = 60;
    fista_options.stopping.grad_tolerance = 0.0;
    fista_options.stopping.value_tolerance = 0.0;
    FistaOptions ista_options = fista_options;
    ista_options.accelerate = false;
    const OptimResult fast = minimize_fista(q, prox, g, linalg::zeros(10), fista_options);
    const OptimResult slow = minimize_fista(q, prox, g, linalg::zeros(10), ista_options);
    EXPECT_LE(fast.value, slow.value + 1e-9);
}

// ------------------------------------------------------------------ scalar

TEST(Scalar, GoldenSectionFindsParabolaMinimum) {
    const auto r = golden_section_minimize([](double x) { return (x - 2.5) * (x - 2.5); },
                                           -10.0, 10.0);
    EXPECT_NEAR(r.x, 2.5, 1e-7);
    EXPECT_TRUE(r.converged);
}

TEST(Scalar, BisectRootFindsSqrt2) {
    const auto r = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-9);
}

TEST(Scalar, BisectRootRejectsNonBracketing) {
    EXPECT_THROW(bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
                 std::invalid_argument);
}

TEST(Scalar, ConvexRayExpandsBracket) {
    // Minimum far beyond the initial width.
    const auto r = minimize_convex_on_ray(
        [](double x) { return (x - 300.0) * (x - 300.0); }, 0.0, 1.0);
    EXPECT_NEAR(r.x, 300.0, 1e-4);
}

TEST(Scalar, ConvexRayHandlesBoundaryMinimum) {
    // Increasing function: minimum at the ray origin.
    const auto r = minimize_convex_on_ray([](double x) { return x; }, 2.0, 1.0);
    EXPECT_NEAR(r.x, 2.0, 1e-6);
}

// -------------------------------------------------------------------- ADMM

TEST(Admm, ConsensusOfQuadraticsMatchesPooledSolution) {
    // Two quadratics 0.5(x-a)^2 and 0.5(x-b)^2: consensus optimum (a+b)/2.
    const FunctionObjective f1(1, [](const linalg::Vector& x, linalg::Vector* g) {
        if (g) *g = {x[0] - 1.0};
        return 0.5 * (x[0] - 1.0) * (x[0] - 1.0);
    });
    const FunctionObjective f2(1, [](const linalg::Vector& x, linalg::Vector* g) {
        if (g) *g = {x[0] - 5.0};
        return 0.5 * (x[0] - 5.0) * (x[0] - 5.0);
    });
    const AdmmResult r = minimize_consensus_admm({&f1, &f2}, {0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.z[0], 3.0, 1e-4);
}

TEST(Admm, MultiDimensionalConsensus) {
    stats::Rng rng(31);
    const QuadraticObjective q1 = random_quadratic(4, rng);
    const QuadraticObjective q2 = random_quadratic(4, rng);
    const QuadraticObjective q3 = random_quadratic(4, rng);
    const AdmmResult r = minimize_consensus_admm({&q1, &q2, &q3}, linalg::zeros(4));
    EXPECT_TRUE(r.converged);
    // The consensus optimum zeroes the summed gradient.
    linalg::Vector total = linalg::zeros(4);
    const std::vector<const Objective*> terms = {&q1, &q2, &q3};
    for (const Objective* f : terms) {
        linalg::axpy(1.0, f->gradient(r.z), total);
    }
    EXPECT_LT(linalg::norm_inf(total), 1e-3);
}

TEST(Admm, RejectsEmptyAndMismatched) {
    EXPECT_THROW(minimize_consensus_admm({}, {0.0}), std::invalid_argument);
    stats::Rng rng(32);
    const QuadraticObjective a = random_quadratic(2, rng);
    const QuadraticObjective b = random_quadratic(3, rng);
    EXPECT_THROW(minimize_consensus_admm({&a, &b}, linalg::zeros(2)), std::invalid_argument);
}

}  // namespace
}  // namespace drel::optim
