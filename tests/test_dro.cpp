#include <gtest/gtest.h>

#include <cmath>

#include "data/task_generator.hpp"
#include "dro/ambiguity.hpp"
#include "dro/chi_square.hpp"
#include "dro/kl.hpp"
#include "dro/robust_objective.hpp"
#include "dro/wasserstein.hpp"
#include "dro/worst_case.hpp"
#include "models/erm_objective.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::dro {
namespace {

models::Dataset fixture_dataset(stats::Rng& rng, std::size_t n = 60) {
    return test_support::binary_task_dataset(rng, n);
}

// --------------------------------------------------------------- ambiguity

TEST(Ambiguity, FactoryAndNames) {
    EXPECT_EQ(AmbiguitySet::none().kind, AmbiguityKind::kNone);
    EXPECT_EQ(AmbiguitySet::wasserstein(0.5).radius, 0.5);
    EXPECT_STREQ(ambiguity_name(AmbiguityKind::kKl), "kl");
    EXPECT_THROW(AmbiguitySet::kl(-0.1), std::invalid_argument);
}

TEST(Ambiguity, RadiusSchedule) {
    EXPECT_NEAR(radius_for_sample_size(1.0, 4), 0.5, 1e-12);
    EXPECT_NEAR(radius_for_sample_size(1.0, 100), 0.1, 1e-12);
    EXPECT_GT(radius_for_sample_size(1.0, 8), radius_for_sample_size(1.0, 32));
    EXPECT_THROW(radius_for_sample_size(1.0, 0), std::invalid_argument);
}

// ------------------------------------------------------------- wasserstein

TEST(Wasserstein, ClosedFormEqualsErmPlusNormPenalty) {
    stats::Rng rng(1);
    const models::Dataset d = fixture_dataset(rng);
    const auto loss = models::make_logistic_loss();
    const double rho = 0.3;
    const WassersteinDroObjective robust(d, *loss, rho);
    const models::ErmObjective erm(d, *loss);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const double expected = erm.value(theta) +
                            rho * feature_norm(theta, perturbable_dims(d));
    EXPECT_NEAR(robust.value(theta), expected, 1e-12);
}

TEST(Wasserstein, GradientMatchesNumerical) {
    stats::Rng rng(2);
    const models::Dataset d = fixture_dataset(rng, 30);
    const auto loss = models::make_logistic_loss();
    const WassersteinDroObjective robust(d, *loss, 0.2);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    EXPECT_LT(linalg::distance2(robust.gradient(theta), robust.numerical_gradient(theta)),
              1e-4);
}

TEST(Wasserstein, NumericDualCertifiesClosedForm) {
    // The generic dual (no closed form used anywhere) must match the
    // regularization equivalence to solver precision. This is the E9 check.
    stats::Rng rng(3);
    const models::Dataset d = fixture_dataset(rng, 20);
    for (const models::LossKind kind :
         {models::LossKind::kLogistic, models::LossKind::kSmoothedHinge}) {
        const auto loss = models::make_loss(kind);
        const linalg::Vector theta = rng.standard_normal_vector(d.dim());
        for (const double rho : {0.05, 0.2, 0.8}) {
            const WassersteinDroObjective closed(d, *loss, rho);
            const double numeric = wasserstein_robust_value_numeric(theta, d, *loss, rho);
            EXPECT_NEAR(closed.value(theta), numeric, 5e-3)
                << loss->name() << " rho=" << rho;
        }
    }
}

TEST(Wasserstein, ZeroRadiusReducesToErm) {
    stats::Rng rng(4);
    const models::Dataset d = fixture_dataset(rng, 25);
    const auto loss = models::make_logistic_loss();
    const WassersteinDroObjective robust(d, *loss, 0.0);
    const models::ErmObjective erm(d, *loss);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    EXPECT_DOUBLE_EQ(robust.value(theta), erm.value(theta));
}

TEST(Wasserstein, BiasWeightIsNotPenalized) {
    stats::Rng rng(5);
    const models::Dataset d = fixture_dataset(rng, 25);
    const auto loss = models::make_logistic_loss();
    const WassersteinDroObjective robust(d, *loss, 1.0);
    // Perturbing only the bias weight must change the value exactly as ERM
    // does (no norm-penalty contribution).
    linalg::Vector theta = rng.standard_normal_vector(d.dim());
    linalg::Vector theta_shifted = theta;
    theta_shifted.back() += 0.5;
    const models::ErmObjective erm(d, *loss);
    EXPECT_NEAR(robust.value(theta_shifted) - robust.value(theta),
                erm.value(theta_shifted) - erm.value(theta), 1e-12);
}

TEST(Wasserstein, RejectsNonMarginAndNonLipschitzLosses) {
    stats::Rng rng(6);
    const models::Dataset d = fixture_dataset(rng, 10);
    const auto squared = models::make_squared_loss();
    EXPECT_THROW(WassersteinDroObjective(d, *squared, 0.1), std::invalid_argument);
}

// ---------------------------------------------------------------------- KL

TEST(KlDual, ZeroRadiusIsEmpiricalMean) {
    const linalg::Vector losses{1.0, 2.0, 3.0};
    const KlDualSolution s = solve_kl_dual(losses, 0.0);
    EXPECT_NEAR(s.value, 2.0, 1e-12);
    EXPECT_NEAR(s.weights[0], 1.0 / 3.0, 1e-12);
}

TEST(KlDual, ValueBetweenMeanAndMax) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    for (const double rho : {0.01, 0.1, 0.5, 2.0}) {
        const KlDualSolution s = solve_kl_dual(losses, rho);
        EXPECT_GE(s.value, 1.875 - 1e-9) << rho;   // mean
        EXPECT_LE(s.value, 4.0 + 1e-9) << rho;     // max
    }
}

TEST(KlDual, MonotoneInRadius) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    double previous = solve_kl_dual(losses, 0.0).value;
    for (const double rho : {0.05, 0.1, 0.3, 1.0, 3.0}) {
        const double current = solve_kl_dual(losses, rho).value;
        EXPECT_GE(current, previous - 1e-9);
        previous = current;
    }
}

TEST(KlDual, LargeRadiusApproachesMax) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    EXPECT_NEAR(solve_kl_dual(losses, 50.0).value, 4.0, 0.05);
}

TEST(KlDual, WorstCaseWeightsAttainValueAndSatisfyBudget) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    const double rho = 0.3;
    const KlDualSolution s = solve_kl_dual(losses, rho);
    // Attainment: E_q[l] == dual value.
    double attained = 0.0;
    for (std::size_t i = 0; i < 4; ++i) attained += s.weights[i] * losses[i];
    EXPECT_NEAR(attained, s.value, 1e-4);
    // Feasibility: KL(q || uniform-empirical) <= rho (+ tolerance).
    double kl = 0.0;
    for (const double q : s.weights) {
        if (q > 0.0) kl += q * std::log(q * 4.0);
    }
    EXPECT_LE(kl, rho + 1e-3);
}

TEST(KlDual, ConstantLossesDegenerate) {
    const KlDualSolution s = solve_kl_dual({2.0, 2.0, 2.0}, 1.0);
    EXPECT_NEAR(s.value, 2.0, 1e-9);
}

TEST(KlObjective, GradientMatchesNumerical) {
    stats::Rng rng(7);
    const models::Dataset d = fixture_dataset(rng, 25);
    const auto loss = models::make_logistic_loss();
    const KlDroObjective robust(d, *loss, 0.2, 0.05);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    EXPECT_LT(linalg::distance2(robust.gradient(theta), robust.numerical_gradient(theta)),
              2e-4);
}

// -------------------------------------------------------------- chi-square

TEST(ChiSquareDual, ZeroRadiusIsEmpiricalMean) {
    const ChiSquareDualSolution s = solve_chi_square_dual({1.0, 3.0}, 0.0);
    EXPECT_NEAR(s.value, 2.0, 1e-12);
}

TEST(ChiSquareDual, ValueBetweenMeanAndMax) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    for (const double rho : {0.05, 0.3, 1.5}) {
        const ChiSquareDualSolution s = solve_chi_square_dual(losses, rho);
        EXPECT_GE(s.value, 1.875 - 1e-6);
        EXPECT_LE(s.value, 4.0 + 1e-6);
    }
}

TEST(ChiSquareDual, MonotoneInRadius) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    double previous = 0.0;
    for (const double rho : {0.0, 0.05, 0.2, 0.8, 3.0}) {
        const double current = solve_chi_square_dual(losses, rho).value;
        EXPECT_GE(current, previous - 1e-6);
        previous = current;
    }
}

TEST(ChiSquareDual, WorstCaseWeightsAttainValueAndAreFeasible) {
    const linalg::Vector losses{0.5, 1.0, 4.0, 2.0};
    const double rho = 0.4;
    const ChiSquareDualSolution s = solve_chi_square_dual(losses, rho);
    double attained = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        attained += s.weights[i] * losses[i];
        total += s.weights[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(attained, s.value, 5e-3);
    // chi2 feasibility: (1/2n) sum (n q_i - 1)^2 <= rho.
    double chi2 = 0.0;
    for (const double q : s.weights) {
        chi2 += (4.0 * q - 1.0) * (4.0 * q - 1.0);
    }
    chi2 /= 8.0;
    EXPECT_LE(chi2, rho + 5e-3);
}

TEST(ChiSquareDual, SmallRadiusMatchesVarianceExpansion) {
    // sup ~= mean + sqrt(2 rho Var_hat) for small rho (population variance).
    stats::Rng rng(8);
    linalg::Vector losses(200);
    for (double& l : losses) l = rng.normal(2.0, 0.5);
    const double rho = 0.01;
    double m = 0.0;
    for (const double l : losses) m += l;
    m /= 200.0;
    double var = 0.0;
    for (const double l : losses) var += (l - m) * (l - m);
    var /= 200.0;
    const double expansion = m + std::sqrt(2.0 * rho * var);
    EXPECT_NEAR(solve_chi_square_dual(losses, rho).value, expansion, 0.02);
}

TEST(ChiSquareObjective, GradientMatchesNumerical) {
    stats::Rng rng(9);
    const models::Dataset d = fixture_dataset(rng, 25);
    const auto loss = models::make_logistic_loss();
    const ChiSquareDroObjective robust(d, *loss, 0.3);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    EXPECT_LT(linalg::distance2(robust.gradient(theta), robust.numerical_gradient(theta)),
              5e-3);
}

// --------------------------------------------------------- unified factory

TEST(RobustObjective, FactoryDispatchesAllKinds) {
    stats::Rng rng(10);
    const models::Dataset d = fixture_dataset(rng, 20);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const double erm = make_robust_objective(d, *loss, AmbiguitySet::none())->value(theta);
    for (const AmbiguitySet set : {AmbiguitySet::wasserstein(0.2), AmbiguitySet::kl(0.2),
                                   AmbiguitySet::chi_square(0.2)}) {
        const double robust = make_robust_objective(d, *loss, set)->value(theta);
        EXPECT_GE(robust, erm - 1e-9) << set.to_string();
    }
}

TEST(RobustObjective, RobustTrainingFlattensTheModel) {
    // More robustness => smaller feature norm of the trained model.
    stats::Rng rng(11);
    const models::Dataset d = fixture_dataset(rng, 80);
    const auto loss = models::make_logistic_loss();
    double previous_norm = 1e18;
    for (const double rho : {0.0, 0.1, 0.4, 1.0}) {
        const auto objective = make_robust_objective(d, *loss, AmbiguitySet::wasserstein(rho));
        const auto r = optim::minimize_lbfgs(*objective, linalg::zeros(d.dim()));
        const double n = feature_norm(r.x, perturbable_dims(d));
        EXPECT_LE(n, previous_norm + 1e-6) << rho;
        previous_norm = n;
    }
}

// --------------------------------------------------------------- worst case

TEST(WorstCase, KlAndChiSquareAttainTheirDuals) {
    stats::Rng rng(12);
    const models::Dataset d = fixture_dataset(rng, 30);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    for (const AmbiguitySet set : {AmbiguitySet::kl(0.3), AmbiguitySet::chi_square(0.3)}) {
        const WorstCase wc = worst_case_distribution(theta, d, *loss, set);
        const double dual = robust_loss(theta, d, *loss, set);
        EXPECT_NEAR(wc.expected_loss, dual, 5e-3) << set.to_string();
    }
}

TEST(WorstCase, WassersteinWitnessIsSandwiched) {
    // The Wasserstein sup may not be attained, but the constructed feasible
    // plan must lie between the clean loss and the dual value.
    stats::Rng rng(13);
    const models::Dataset d = fixture_dataset(rng, 30);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const AmbiguitySet set = AmbiguitySet::wasserstein(0.4);
    const WorstCase wc = worst_case_distribution(theta, d, *loss, set);
    const double clean = robust_loss(theta, d, *loss, AmbiguitySet::none());
    const double dual = robust_loss(theta, d, *loss, set);
    EXPECT_GE(wc.expected_loss, clean - 1e-9);
    EXPECT_LE(wc.expected_loss, dual + 1e-9);
    // And it should capture most of the gap.
    EXPECT_GT(wc.expected_loss - clean, 0.5 * (dual - clean) - 1e-6);
}

TEST(WorstCase, NoneReturnsEmpirical) {
    stats::Rng rng(14);
    const models::Dataset d = fixture_dataset(rng, 15);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const WorstCase wc = worst_case_distribution(theta, d, *loss, AmbiguitySet::none());
    EXPECT_NEAR(wc.expected_loss, robust_loss(theta, d, *loss, AmbiguitySet::none()), 1e-12);
}

}  // namespace
}  // namespace drel::dro
