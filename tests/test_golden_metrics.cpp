// Golden-file harness for the deterministic metrics snapshots.
//
// Each scenario runs a fixed-seed workload, takes the registry's
// deterministic snapshot (counters/gauges/histograms — never wall clock),
// and byte-compares its JSON against a checked-in golden under
// tests/golden/. A mismatch fails with a line-level diff naming the first
// divergent line, so a renamed or dropped metric is immediately readable.
//
// Regenerating goldens (after an intentional instrumentation change):
//
//     DREL_UPDATE_GOLDEN=1 ctest -R Golden
//
// rewrites every golden from the current run and passes; commit the diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/em_dro.hpp"
#include "dro/ambiguity.hpp"
#include "edgesim/lifecycle.hpp"
#include "edgesim/server.hpp"
#include "edgesim/simulation.hpp"
#include "models/loss.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel {
namespace {

std::string golden_path(const std::string& name) {
    return std::string(DREL_GOLDEN_DIR) + "/" + name + ".json";
}

bool update_goldens() {
    const char* env = std::getenv("DREL_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::stringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) lines.push_back(line);
    return lines;
}

/// Human-readable unified-ish diff: the first divergent line with a little
/// context on both sides. Enough to see "counter renamed" at a glance.
std::string first_diff(const std::string& expected, const std::string& actual) {
    const std::vector<std::string> want = split_lines(expected);
    const std::vector<std::string> got = split_lines(actual);
    std::ostringstream out;
    const std::size_t n = std::max(want.size(), got.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::string* w = i < want.size() ? &want[i] : nullptr;
        const std::string* g = i < got.size() ? &got[i] : nullptr;
        if (w != nullptr && g != nullptr && *w == *g) continue;
        out << "first difference at line " << (i + 1) << ":\n";
        for (std::size_t j = i >= 2 ? i - 2 : 0; j < i; ++j) {
            out << "    " << want[j] << "\n";
        }
        out << "  - " << (w != nullptr ? *w : "<end of golden>") << "\n";
        out << "  + " << (g != nullptr ? *g : "<end of snapshot>") << "\n";
        return out.str();
    }
    return "documents are line-identical (trailing whitespace?)";
}

void check_text_against_golden(const std::string& name, const std::string& actual) {
    const std::string path = golden_path(name);
    if (update_goldens()) {
        std::ofstream out(path, std::ios::trunc);
        out << actual << "\n";
        ASSERT_TRUE(out.good()) << "failed to write golden " << path;
        SUCCEED() << "golden regenerated: " << path;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " — regenerate with DREL_UPDATE_GOLDEN=1";
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string expected = buffer.str();
    if (!expected.empty() && expected.back() == '\n') expected.pop_back();
    EXPECT_EQ(expected, actual)
        << "metrics snapshot diverged from " << path << "\n"
        << first_diff(expected, actual)
        << "if the change is intentional, regenerate with DREL_UPDATE_GOLDEN=1";
}

void check_against_golden(const std::string& name) {
    check_text_against_golden(name, obs::Registry::global().deterministic_json());
}

class GoldenMetrics : public ::testing::Test {
 protected:
    void SetUp() override {
        if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
        obs::Registry::global().reset();
    }
};

// Full pipeline: contributors -> DPMM prior -> broadcast -> per-device
// EM-DRO training. Exercises every instrumented subsystem in one run.
TEST_F(GoldenMetrics, FleetSmall) {
    edgesim::SimulationConfig config = test_support::small_fleet_config();
    config.num_threads = 2;
    stats::Rng rng(4242);
    (void)edgesim::run_fleet_simulation(config, rng);
    check_against_golden("fleet_small");
}

// The same fleet under deterministic chaos (every fault rate at 0.5): pins
// the fault.injected.* / fault.degraded.* counter families and proves the
// degradation paths are as reproducible as the healthy ones. Runs on 2
// threads — the snapshot must be bit-identical to a serial run.
TEST_F(GoldenMetrics, FleetChaosSmall) {
    edgesim::SimulationConfig config = test_support::small_fleet_config();
    config.num_threads = 2;
    config.faults = edgesim::FaultConfig::uniform(0.5);
    stats::Rng rng(4242);
    (void)edgesim::run_fleet_simulation(config, rng);
    check_against_golden("fleet_chaos_small");
}

// The fleet-health telemetry block (per-round series + upload-latency
// histogram + default-SLO report) from a small chaos run of the sharded
// engine. The golden pins the partition-independent surface — to_json with
// include_partition = false — so the SAME bytes must come back at any
// thread or shard count; the test proves that before comparing.
TEST_F(GoldenMetrics, FleetHealthSmall) {
    const auto health_json = [](std::size_t num_threads, std::size_t num_shards) {
        edgesim::ScaleFleetConfig config;
        config.devices_per_round = 200;
        config.rounds = 3;
        config.num_threads = num_threads;
        config.num_shards = num_shards;
        config.faults = edgesim::FaultConfig::uniform(0.2);
        stats::Rng rng(4242);
        const edgesim::ScaleFleetReport report = edgesim::run_scale_fleet(config, rng);
        const health::SloReport slo =
            health::evaluate(health::Slo::fleet_default(), report.engine.telemetry);
        return report.engine.telemetry.to_json(&slo, /*include_partition=*/false).dump(2);
    };
    const std::string actual = health_json(2, 4);
    EXPECT_EQ(health_json(4, 8), actual) << "health block depends on the partition";
    EXPECT_EQ(health_json(1, 1), actual) << "health block depends on the schedule";
    check_text_against_golden("fleet_health_small", actual);
}

// The fleet under CHURN: a quarter-rate uniform churn plan over a 200-device
// fleet with a 40-slot reserved tail. Pins the membership series (liveness
// census + churn event counters per round) and the two membership SLO rules
// alongside the main health block — and, like FleetHealthSmall, proves the
// whole surface is partition-independent before comparing: the SAME bytes
// must come back at any thread or shard count.
TEST_F(GoldenMetrics, FleetChurnSmall) {
    const auto churn_json = [](std::size_t num_threads, std::size_t num_shards) {
        edgesim::ScaleFleetConfig config;
        config.devices_per_round = 200;
        config.rounds = 4;
        config.num_threads = num_threads;
        config.num_shards = num_shards;
        config.membership.churn = edgesim::ChurnConfig::uniform(0.25);
        config.membership.initial_members = 160;
        stats::Rng rng(4243);
        const edgesim::ScaleFleetReport report = edgesim::run_scale_fleet(config, rng);
        const health::SloReport slo =
            health::evaluate(health::Slo::fleet_default(), report.engine.telemetry);
        return report.engine.telemetry.to_json(&slo, /*include_partition=*/false).dump(2);
    };
    const std::string actual = churn_json(2, 4);
    for (const std::size_t threads : {1u, 4u, 8u}) {
        EXPECT_EQ(churn_json(threads, 4), actual) << "threads=" << threads;
    }
    for (const std::size_t shards : {1u, 3u, 8u, 40u}) {
        EXPECT_EQ(churn_json(2, shards), actual) << "shards=" << shards;
    }
    // The scenario must actually exercise the graceful-rejoin path: a
    // device that died, missed a rebroadcast, and came back stale.
    EXPECT_NE(actual.find("\"rejoins_stale\""), std::string::npos);
    EXPECT_NE(actual.find("\"suspect_fraction\""), std::string::npos);
    check_text_against_golden("fleet_churn_small", actual);
}

// The streaming-refit lifecycle under wire v2 (8-bit quantized + delta
// broadcasts): pins the full closed loop — streaming VB posterior updates,
// compressed rebroadcasts, the bandwidth SLO — as a byte-exact document.
// Accuracies are recorded as raw f64 bit patterns, so "bit-identical
// across 1/2/4/8 threads and 1/3/8/40 shards" means exactly that: the
// fixed-point merge contract of dp/streaming_vb.hpp surfacing end to end.
TEST_F(GoldenMetrics, FleetStreamingSmall) {
    const auto streaming_json = [](std::size_t num_threads, std::size_t num_shards) {
        edgesim::LifecycleConfig config;
        config.feature_dim = 5;
        config.initial_modes = 2;
        config.initial_contributors = 12;
        config.contributor_samples = 200;
        config.rounds = 4;
        config.devices_per_round = 48;
        config.edge_samples = 16;
        config.test_samples = 400;
        config.gibbs_sweeps = 40;
        config.novel_mode_round = 1;
        config.learner.em.max_outer_iterations = 6;
        config.learner.transfer_weight = 2.0;
        config.cloud.refit_mode = edgesim::CloudRefitMode::kStreaming;
        config.wire.version = edgesim::kWireV2;
        config.wire.quantized = true;
        config.wire.quantization_bits = 8;
        config.wire.delta = true;
        config.num_threads = num_threads;
        config.num_shards = num_shards;
        stats::Rng rng(4242);
        const edgesim::LifecycleReport report = edgesim::run_lifecycle(config, rng);

        const auto bits = [](double value) {
            char buffer[32];
            std::uint64_t pattern = 0;
            std::memcpy(&pattern, &value, sizeof(pattern));
            std::snprintf(buffer, sizeof(buffer), "%016llx",
                          static_cast<unsigned long long>(pattern));
            return std::string(buffer);
        };
        obs::JsonValue::Array rounds_json;
        for (const auto& round : report.rounds) {
            obs::JsonValue::Object row;
            row.emplace("round", static_cast<std::uint64_t>(round.round));
            row.emplace("mean_accuracy_bits", bits(round.mean_accuracy));
            row.emplace("novel_accuracy_bits", bits(round.novel_mode_accuracy));
            row.emplace("prior_components",
                        static_cast<std::uint64_t>(round.prior_components));
            row.emplace("rebroadcast", round.rebroadcast);
            row.emplace("broadcast_bytes",
                        static_cast<std::uint64_t>(round.broadcast_bytes));
            rounds_json.emplace_back(std::move(row));
        }
        const health::SloReport slo = health::evaluate(
            health::Slo::fleet_with_bandwidth(/*warn=*/64.0, /*fail=*/4096.0),
            report.telemetry);
        obs::JsonValue::Object doc;
        doc.emplace("rounds", std::move(rounds_json));
        doc.emplace("total_broadcast_bytes",
                    static_cast<std::uint64_t>(report.total_broadcast_bytes));
        doc.emplace("total_upload_bytes",
                    static_cast<std::uint64_t>(report.total_upload_bytes));
        doc.emplace("telemetry",
                    report.telemetry.to_json(&slo, /*include_partition=*/false));
        return obs::JsonValue(std::move(doc)).dump(2);
    };
    const std::string actual = streaming_json(2, 8);
    for (const std::size_t threads : {1u, 4u, 8u}) {
        EXPECT_EQ(streaming_json(threads, 8), actual) << "threads=" << threads;
    }
    for (const std::size_t shards : {1u, 3u, 40u}) {
        EXPECT_EQ(streaming_json(2, shards), actual) << "shards=" << shards;
    }
    // The scenario must exercise the compressed-rebroadcast path and the
    // bandwidth SLO it feeds.
    EXPECT_NE(actual.find("\"broadcast_bytes_per_device\""), std::string::npos);
    check_text_against_golden("fleet_streaming_small", actual);
}

// One EM-DRO solve against the oracle prior: pins the EM/DP/DRO/optimizer
// counters without the fleet machinery on top.
TEST_F(GoldenMetrics, EmSolveSmall) {
    const test_support::PopulationFixture f =
        test_support::make_population_fixture(/*seed=*/7, /*n_train=*/16, /*n_test=*/50);
    const auto loss = models::make_logistic_loss();
    const core::EmDroSolver solver(f.train, *loss, f.prior,
                                   dro::AmbiguitySet::wasserstein(0.1),
                                   /*transfer_weight=*/2.0);
    (void)solver.solve();
    check_against_golden("em_solve_small");
}

// The harness itself must fail loudly: a renamed counter shows up as a
// readable one-line diff, not a wall of JSON.
TEST_F(GoldenMetrics, DiffMessageNamesTheFirstDivergentLine) {
    const std::string expected = "{\n  \"a\": 1,\n  \"b\": 2\n}";
    const std::string actual = "{\n  \"a\": 1,\n  \"renamed\": 2\n}";
    const std::string message = first_diff(expected, actual);
    EXPECT_NE(message.find("line 3"), std::string::npos) << message;
    EXPECT_NE(message.find("- "), std::string::npos);
    EXPECT_NE(message.find("+ "), std::string::npos);
    EXPECT_NE(message.find("\"renamed\""), std::string::npos);
}

}  // namespace
}  // namespace drel
