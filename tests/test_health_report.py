#!/usr/bin/env python3
"""Unit tests for scripts/health_report.py: the documented exit-code
contract (0 pass/warn, 1 SLO fail, 2 unusable document) and the rendering
of the series/histogram/SLO sections."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                      "scripts", "health_report.py")


def make_sidecar(verdict="pass", membership=False):
    """A minimal schema-v2 sidecar shaped like obs::write_bench_sidecar's
    output with a FleetTelemetry health block attached. `membership=True`
    adds the optional membership series a churn-tracking run emits."""
    doc = {
        "schema_version": 2,
        "bench": "unit",
        "health": {
            "series": {
                "columns": ["round", "devices", "healthy", "degraded",
                            "uploads_attempted", "uploads_rejected"],
                "rows": [[0, 40, 38, 2, 40, 0], [1, 40, 40, 0, 40, 0]],
            },
            "upload_latency_ms": {
                "bounds": [1, 2, 4, 8],
                "buckets": [0, 1, 5, 4, 0],
                "count": 10,
                "sum": 41,
            },
            "slo": {
                "verdict": verdict,
                "rules": [
                    {"name": "backpressure_rejection_rate", "verdict": verdict,
                     "observed": 0.5 if verdict == "fail" else 0.0,
                     "warn": 0.01, "fail": 0.05,
                     "first_violating_round": 0 if verdict == "fail" else None},
                    {"name": "upload_latency_p99", "verdict": "pass",
                     "observed": 8.0, "warn": 61000.0, "fail": 120000.0,
                     "first_violating_round": None},
                ],
            },
            "partition": {
                "shard_devices": [20, 20],
                "service_wait_ms": {"bounds": [1, 2], "buckets": [2, 0, 0],
                                    "count": 2, "sum": 2},
            },
        },
    }
    if membership:
        doc["health"]["membership"] = {
            "columns": ["round", "capacity", "members", "alive", "suspect",
                        "dead", "joining", "unknown", "participating",
                        "joins", "rejoins", "leaves", "heartbeats_missed",
                        "deaths", "recoveries", "rejoins_stale",
                        "churn_events", "prior_version"],
            "rows": [[0, 40, 34, 30, 4, 2, 1, 3, 36, 1, 0, 2, 4, 2, 0, 0, 7, 1],
                     [1, 40, 33, 31, 2, 4, 0, 3, 35, 0, 1, 1, 2, 2, 1, 1, 4, 2]],
        }
    return doc


class HealthReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_report(self, *argv):
        return subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True, check=False)

    def test_passing_sidecar_exits_zero_and_renders_sections(self):
        result = self.run_report(self.write("ok.json", make_sidecar()))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("per-round series (2 rounds):", result.stdout)
        self.assertIn("uploads_rejected", result.stdout)
        self.assertIn("upload_latency_ms: count=10", result.stdout)
        self.assertIn("p99<=8", result.stdout)
        self.assertIn("service_wait_ms (partition-scoped)", result.stdout)
        self.assertIn("backpressure_rejection_rate", result.stdout)
        self.assertIn("SLO verdict: pass", result.stdout)

    def test_warn_verdict_exits_zero(self):
        result = self.run_report(self.write("warn.json", make_sidecar("warn")))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("SLO verdict: warn", result.stdout)

    def test_slo_failure_exits_one_and_names_the_round(self):
        result = self.run_report(self.write("bad.json", make_sidecar("fail")))
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertIn("SLO verdict: fail", result.stdout)
        # The failing rule's first violating round shows in its row.
        failing_row = [line for line in result.stdout.splitlines()
                       if "backpressure_rejection_rate" in line][0]
        self.assertTrue(failing_row.rstrip().endswith("0"), failing_row)

    def test_missing_health_block_exits_two(self):
        doc = make_sidecar()
        del doc["health"]
        result = self.run_report(self.write("nohealth.json", doc))
        self.assertEqual(result.returncode, 2)
        self.assertIn("no health block", result.stderr)

    def test_unreadable_or_invalid_json_exits_two(self):
        result = self.run_report(os.path.join(self.dir.name, "absent.json"))
        self.assertEqual(result.returncode, 2)
        result = self.run_report(self.write("garbage.json", "{not json"))
        self.assertEqual(result.returncode, 2)

    def test_truncated_health_block_exits_two(self):
        doc = make_sidecar()
        del doc["health"]["slo"]
        result = self.run_report(self.write("noslo.json", doc))
        self.assertEqual(result.returncode, 2)
        self.assertIn("missing 'slo'", result.stderr)

    def test_max_rows_truncates_the_series(self):
        result = self.run_report(self.write("ok.json", make_sidecar()),
                                 "--max-rows", "1")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("... 1 more rounds", result.stdout)

    def test_membership_series_renders_when_present(self):
        result = self.run_report(
            self.write("churn.json", make_sidecar(membership=True)))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("membership series (2 rounds):", result.stdout)
        for column in ("alive", "suspect", "rejoins_stale", "churn_events",
                       "prior_version"):
            self.assertIn(column, result.stdout)
        # The headline subset hides the raw event-counter tail...
        self.assertNotIn("heartbeats_missed", result.stdout)
        # ...which --all-columns reveals.
        full = self.run_report(
            self.write("churn.json", make_sidecar(membership=True)),
            "--all-columns")
        self.assertIn("heartbeats_missed", full.stdout)

    def test_membership_series_is_absent_for_zero_churn_runs(self):
        result = self.run_report(self.write("ok.json", make_sidecar()))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertNotIn("membership series", result.stdout)

    def test_broadcast_bytes_is_a_headline_column_when_present(self):
        # Bandwidth-tracking runs (wire v2 benches) carry broadcast_bytes in
        # the fleet series; it must surface without --all-columns so the
        # downlink budget reads off the default report.
        doc = make_sidecar()
        series = doc["health"]["series"]
        series["columns"] = series["columns"] + ["broadcast_bytes"]
        series["rows"] = [row + [28074 if row[0] == 0 else 0]
                          for row in series["rows"]]
        result = self.run_report(self.write("bw.json", doc))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("broadcast_bytes", result.stdout)
        self.assertIn("28074", result.stdout)

    def test_all_columns_renders_the_full_schema(self):
        doc = make_sidecar()
        result = self.run_report(self.write("ok.json", doc), "--all-columns")
        self.assertEqual(result.returncode, 0, result.stderr)
        for column in doc["health"]["series"]["columns"]:
            self.assertIn(column, result.stdout)


if __name__ == "__main__":
    unittest.main()
