// Cross-module integration tests: the full cloud -> transfer -> edge
// pipeline assembled from its real parts (no fixture shortcuts), exercising
// the same paths the benches and examples use.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/trainers.hpp"
#include "core/edge_learner.hpp"
#include "data/scenarios.hpp"
#include "data/shifts.hpp"
#include "data/task_generator.hpp"
#include "edgesim/cloud.hpp"
#include "edgesim/device.hpp"
#include "edgesim/transfer.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

/// The full pipeline, one edge device, returning (em-dro acc, local acc).
struct PipelineOutcome {
    double em_dro = 0.0;
    double local = 0.0;
    double map_gaussian = 0.0;
    std::size_t prior_components = 0;
    std::size_t transfer_bytes = 0;
};

PipelineOutcome run_pipeline(std::uint64_t seed, std::size_t edge_samples,
                             edgesim::PriorInference inference) {
    stats::Rng rng(seed);
    const data::TaskPopulation pop =
        data::TaskPopulation::make_synthetic(6, 3, 2.5, 0.04, rng);
    data::DataOptions options;
    options.margin_scale = 2.0;

    // Cloud side.
    edgesim::CloudConfig cloud_config;
    cloud_config.gibbs_sweeps = 60;
    cloud_config.inference = inference;
    edgesim::CloudNode cloud(cloud_config);
    for (int j = 0; j < 18; ++j) {
        const data::TaskSpec task = pop.sample_task(rng);
        cloud.add_contributor_data(pop.generate(task, 300, rng, options));
    }
    const dp::MixturePrior prior = cloud.fit_prior(rng);
    const auto encoded = edgesim::encode_prior(prior);

    // Edge side.
    const data::TaskSpec edge_task = pop.sample_task(rng);
    const models::Dataset train = pop.generate(edge_task, edge_samples, rng, options);
    const models::Dataset test = pop.generate(edge_task, 2500, rng, options);

    core::EdgeLearnerConfig learner_config;
    learner_config.em.max_outer_iterations = 20;
    edgesim::EdgeDevice device("it-device", train, learner_config);
    device.receive_prior(encoded);
    device.train();

    PipelineOutcome outcome;
    outcome.em_dro = device.evaluate_accuracy(test);
    outcome.local = models::accuracy(
        baselines::make_local_erm(models::LossKind::kLogistic)->fit(train), test);
    outcome.map_gaussian = models::accuracy(
        baselines::make_map_gaussian(prior, models::LossKind::kLogistic)->fit(train), test);
    outcome.prior_components = prior.num_components();
    outcome.transfer_bytes = encoded.size();
    return outcome;
}

TEST(Integration, GibbsPipelineBeatsLocalAtSmallN) {
    double em = 0.0;
    double local = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const PipelineOutcome o = run_pipeline(seed, 12, edgesim::PriorInference::kGibbs);
        em += o.em_dro;
        local += o.local;
    }
    EXPECT_GT(em / 4.0, local / 4.0 + 0.02);
}

TEST(Integration, VariationalPipelineAlsoBeatsLocal) {
    double em = 0.0;
    double local = 0.0;
    for (std::uint64_t seed = 10; seed < 13; ++seed) {
        const PipelineOutcome o =
            run_pipeline(seed, 12, edgesim::PriorInference::kVariational);
        em += o.em_dro;
        local += o.local;
    }
    EXPECT_GT(em / 3.0, local / 3.0);
}

TEST(Integration, TransferPayloadIsCompact) {
    const PipelineOutcome o = run_pipeline(1, 16, edgesim::PriorInference::kGibbs);
    // A prior over a 7-dim theta with a handful of atoms must be well under
    // 10 KB — the whole point of prior transfer vs raw-data upload.
    EXPECT_LT(o.transfer_bytes, 10000u);
    EXPECT_GE(o.prior_components, 2u);
}

TEST(Integration, AdvantageShrinksWithMoreLocalData) {
    // The transfer gain must taper: gap(n=8) > gap(n=256) on average.
    double gap_small = 0.0;
    double gap_large = 0.0;
    for (std::uint64_t seed = 20; seed < 23; ++seed) {
        const PipelineOutcome small_n =
            run_pipeline(seed, 8, edgesim::PriorInference::kGibbs);
        const PipelineOutcome large_n =
            run_pipeline(seed, 256, edgesim::PriorInference::kGibbs);
        gap_small += small_n.em_dro - small_n.local;
        gap_large += large_n.em_dro - large_n.local;
    }
    EXPECT_GT(gap_small / 3.0, gap_large / 3.0 - 0.01);
}

TEST(Integration, RobustnessUnderCovariateShiftAtTestTime) {
    // Train on clean data, evaluate on mean-shifted data: EM-DRO must
    // degrade more gracefully than local ERM (averaged over seeds).
    double em_total = 0.0;
    double local_total = 0.0;
    for (std::uint64_t seed = 30; seed < 34; ++seed) {
        stats::Rng rng(seed);
        const data::TaskPopulation pop =
            data::TaskPopulation::make_synthetic(6, 3, 2.5, 0.04, rng);
        data::DataOptions options;
        options.margin_scale = 2.0;

        edgesim::CloudConfig cloud_config;
        cloud_config.gibbs_sweeps = 50;
        edgesim::CloudNode cloud(cloud_config);
        for (int j = 0; j < 15; ++j) {
            const data::TaskSpec task = pop.sample_task(rng);
            cloud.add_contributor_data(pop.generate(task, 250, rng, options));
        }
        const dp::MixturePrior prior = cloud.fit_prior(rng);

        const data::TaskSpec edge_task = pop.sample_task(rng);
        const models::Dataset train = pop.generate(edge_task, 16, rng, options);
        models::Dataset test = pop.generate(edge_task, 2000, rng, options);
        linalg::Vector delta = rng.standard_normal_vector(6);
        linalg::scale(delta, 0.6 / linalg::norm2(delta));
        test = data::apply_mean_shift(test, delta);

        core::EdgeLearnerConfig config;
        config.em.max_outer_iterations = 15;
        const core::EdgeLearner learner(prior, config);
        em_total += models::accuracy(learner.fit(train).model, test);
        local_total += models::accuracy(
            baselines::make_local_erm(models::LossKind::kLogistic)->fit(train), test);
    }
    EXPECT_GT(em_total / 4.0, local_total / 4.0);
}

TEST(Integration, ScenarioSuiteEndToEnd) {
    // Every scenario must run through the full standard suite without error
    // and keep em-dro within sane accuracy bounds.
    data::ScenarioConfig config;
    config.n_train = 16;
    config.n_test = 800;
    stats::Rng rng(40);
    for (const data::ScenarioKind kind :
         {data::ScenarioKind::kIid, data::ScenarioKind::kCovariateShift,
          data::ScenarioKind::kOutliers}) {
        const data::Scenario scenario = data::make_scenario(kind, config, rng);
        linalg::Vector weights;
        std::vector<stats::MultivariateNormal> atoms;
        for (const auto& mode : scenario.population.modes()) {
            weights.push_back(mode.weight);
            atoms.emplace_back(mode.mean, mode.covariance);
        }
        const dp::MixturePrior prior(std::move(weights), std::move(atoms));
        core::EdgeLearnerConfig learner_config;
        learner_config.em.max_outer_iterations = 12;
        const core::EdgeLearner learner(prior, learner_config);
        const double acc = models::accuracy(learner.fit(scenario.edge_train).model,
                                            scenario.edge_test);
        EXPECT_GT(acc, 0.5) << scenario.name;
        EXPECT_LE(acc, scenario.bayes_accuracy + 0.08) << scenario.name;
    }
}

}  // namespace
}  // namespace drel
