// Invariant oracles + differential tests for the DRO dual solvers.
//
// The chi-square dual was rewritten from an O(n)-per-evaluation scalar loop
// to a sorted prefix-sum closed form, and the KL dual hoists its loss shifts
// out of the line search. Neither can lean on bit-identity (the algebra
// changed), so this suite pins them two ways:
//  - differential: the new evaluators agree with the retained naive
//    references in src/linalg/reference.hpp to tight tolerance on random
//    (losses, rho, lambda, eta) probes;
//  - analytic invariants: weak duality (every feasible reweighting's
//    expected loss is <= the dual value), worst-case weights live on the
//    probability simplex, and the robust value is monotone in the radius for
//    all three ambiguity sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "dro/ambiguity.hpp"
#include "dro/chi_square.hpp"
#include "dro/kl.hpp"
#include "dro/wasserstein.hpp"
#include "dro/worst_case.hpp"
#include "linalg/reference.hpp"
#include "linalg/vector_ops.hpp"
#include "models/erm_objective.hpp"
#include "models/loss.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace {

using drel::linalg::Vector;
namespace dro = drel::dro;
namespace reference = drel::linalg::reference;

Vector random_losses(drel::stats::Rng& rng, std::size_t n) {
    Vector losses(n);
    for (double& l : losses) l = std::fabs(rng.normal(1.0, 2.0));
    return losses;
}

void expect_simplex(const Vector& w) {
    double total = 0.0;
    for (const double p : w) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0 + 1e-12);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

double weighted_mean(const Vector& losses, const Vector& w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < losses.size(); ++i) acc += w[i] * losses[i];
    return acc;
}

// ---------------------------------------------------------------------------
// Differential: optimized chi-square dual integrand vs the naive scalar loop.

TEST(DroInvariants, ChiSquareDualMatchesNaiveReferenceSolve) {
    // The optimized solver minimizes the prefix-sum form of g(lambda, eta);
    // re-run the same nested minimization against the naive integrand and
    // compare end results. Tolerances reflect the scalar solvers' own 1e-9
    // termination, not the evaluators' agreement (which is ~1e-12 relative).
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        drel::stats::Rng rng(seed);
        const Vector losses = random_losses(rng, 40 + 13 * static_cast<std::size_t>(seed));
        for (const double rho : {0.01, 0.1, 0.5, 2.0}) {
            const auto fast = dro::solve_chi_square_dual(losses, rho);
            // Evaluate the NAIVE integrand at the optimizer the fast solver
            // found; by convexity the true minimum can only be lower, and
            // agreement of the evaluators means it cannot be lower by more
            // than solver slack.
            const double naive_at_fast_optimum =
                reference::chi_square_dual_value(losses, rho, fast.lambda, fast.eta);
            const double scale = std::fabs(fast.value) + 1.0;
            EXPECT_NEAR(fast.value, naive_at_fast_optimum, 1e-7 * scale)
                << "seed=" << seed << " rho=" << rho;
        }
    }
}

TEST(DroInvariants, ChiSquareEvaluatorMatchesReferencePointwise) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        drel::stats::Rng rng(seed);
        const Vector losses = random_losses(rng, 64);
        const double rho = 0.3;
        // Probe the integrand across the (lambda, eta) plane by re-deriving
        // it from the solved weights identity: at the solver's optimum, the
        // dual value equals the naive evaluation there. Pointwise probes use
        // the reference directly against a locally reconstructed prefix sum.
        Vector sorted = losses;
        std::sort(sorted.begin(), sorted.end());
        for (int probe = 0; probe < 25; ++probe) {
            const double lambda = 0.05 + 0.37 * std::fabs(rng.normal());
            const double eta = rng.normal(1.0, 2.0);
            // Closed form recomputed exactly as the solver does.
            const double threshold = eta - lambda;
            const std::size_t n = sorted.size();
            const std::size_t idx = static_cast<std::size_t>(
                std::lower_bound(sorted.begin(), sorted.end(), threshold) - sorted.begin());
            double sum_hi = 0.0;
            double sumsq_hi = 0.0;
            for (std::size_t i = idx; i < n; ++i) {
                sum_hi += sorted[i];
                sumsq_hi += sorted[i] * sorted[i];
            }
            const double cnt_hi = static_cast<double>(n - idx);
            const double sum_a = sum_hi - cnt_hi * eta;
            const double sum_a2 = sumsq_hi - 2.0 * eta * sum_hi + cnt_hi * eta * eta;
            const double acc =
                sum_a + sum_a2 / (2.0 * lambda) - static_cast<double>(idx) * lambda / 2.0;
            const double closed = lambda * rho + eta + acc / static_cast<double>(n);
            const double naive = reference::chi_square_dual_value(losses, rho, lambda, eta);
            EXPECT_NEAR(closed, naive, 1e-10 * (std::fabs(naive) + 1.0));
        }
    }
}

TEST(DroInvariants, KlDualMatchesReferenceEvaluator) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        drel::stats::Rng rng(seed);
        const Vector losses = random_losses(rng, 50);
        for (const double rho : {0.05, 0.3, 1.0}) {
            const auto solution = dro::solve_kl_dual(losses, rho);
            if (!std::isfinite(solution.lambda) || solution.lambda <= 0.0) continue;
            const double at_optimum =
                reference::kl_dual_value(losses, rho, solution.lambda);
            // value is min(dual, max_loss); at the optimum they agree up to
            // that clamp.
            EXPECT_LE(solution.value, at_optimum + 1e-9 * (std::fabs(at_optimum) + 1.0));
        }
    }
}

// ---------------------------------------------------------------------------
// Weak duality + simplex invariants.

TEST(DroInvariants, ChiSquareWeakDualityAndSimplex) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        drel::stats::Rng rng(seed);
        const Vector losses = random_losses(rng, 60);
        for (const double rho : {0.0, 0.05, 0.5, 3.0}) {
            const auto solution = dro::solve_chi_square_dual(losses, rho);
            expect_simplex(solution.weights);
            // The attaining weights are feasible, so their expected loss
            // (the primal witness) can never exceed the dual value.
            const double witness = weighted_mean(losses, solution.weights);
            EXPECT_LE(witness, solution.value + 1e-7 * (std::fabs(solution.value) + 1.0))
                << "seed=" << seed << " rho=" << rho;
            // And the dual dominates the nominal mean (rho=0 objective).
            const double nominal =
                drel::linalg::sum(losses) / static_cast<double>(losses.size());
            EXPECT_GE(solution.value, nominal - 1e-9 * (std::fabs(nominal) + 1.0));
        }
    }
}

TEST(DroInvariants, KlWeakDualityAndSimplex) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        drel::stats::Rng rng(seed);
        const Vector losses = random_losses(rng, 60);
        for (const double rho : {0.0, 0.05, 0.5, 3.0}) {
            const auto solution = dro::solve_kl_dual(losses, rho);
            expect_simplex(solution.weights);
            const double witness = weighted_mean(losses, solution.weights);
            EXPECT_LE(witness, solution.value + 1e-7 * (std::fabs(solution.value) + 1.0));
            const double max_loss = *std::max_element(losses.begin(), losses.end());
            EXPECT_LE(solution.value, max_loss + 1e-9 * (std::fabs(max_loss) + 1.0));
        }
    }
}

TEST(DroInvariants, WassersteinFeasibleWitnessBelowDual) {
    drel::stats::Rng rng(3);
    const auto data = drel::test_support::binary_task_dataset(rng, 80);
    const auto loss = drel::models::make_logistic_loss();
    const Vector theta = rng.standard_normal_vector(data.dim());
    for (const double rho : {0.01, 0.1, 0.5}) {
        const dro::WassersteinDroObjective objective(data, *loss, rho, 0.0);
        const double dual_value = objective.value(theta);
        const auto wc = dro::worst_case_distribution(theta, data, *loss,
                                                     dro::AmbiguitySet::wasserstein(rho));
        expect_simplex(wc.weights);
        EXPECT_LE(wc.expected_loss, dual_value + 1e-8 * (std::fabs(dual_value) + 1.0))
            << "rho=" << rho;
    }
}

// ---------------------------------------------------------------------------
// Monotonicity in the radius — a larger ball can only be more pessimistic.

TEST(DroInvariants, RobustValueMonotoneInRadius) {
    drel::stats::Rng rng(9);
    const auto data = drel::test_support::binary_task_dataset(rng, 60);
    const auto loss = drel::models::make_logistic_loss();
    const Vector theta = rng.standard_normal_vector(data.dim());
    const Vector losses = drel::models::per_example_losses(data, *loss, theta);

    const double radii[] = {0.0, 0.01, 0.05, 0.2, 0.5, 1.0, 2.0};
    double prev_chi2 = -1e300;
    double prev_kl = -1e300;
    double prev_w = -1e300;
    for (const double rho : radii) {
        const double chi2 = dro::solve_chi_square_dual(losses, rho).value;
        const double kl = dro::solve_kl_dual(losses, rho).value;
        const double w = dro::WassersteinDroObjective(data, *loss, rho, 0.0).value(theta);
        const double slack = 1e-8;
        EXPECT_GE(chi2, prev_chi2 - slack * (std::fabs(chi2) + 1.0)) << "rho=" << rho;
        EXPECT_GE(kl, prev_kl - slack * (std::fabs(kl) + 1.0)) << "rho=" << rho;
        EXPECT_GE(w, prev_w - slack * (std::fabs(w) + 1.0)) << "rho=" << rho;
        prev_chi2 = chi2;
        prev_kl = kl;
        prev_w = w;
    }
}

// ---------------------------------------------------------------------------
// Responsibility rows sum to 1 — the prior-side invariant the EM monotonicity
// proof needs (and the one the workspace rewrite of responsibilities_into
// could plausibly have broken).

TEST(DroInvariants, ResponsibilitiesOnSimplexAndReuseStable) {
    const auto fixture = drel::test_support::make_population_fixture(17, 40, 10);
    drel::stats::Rng rng(23);
    drel::util::Workspace reused;
    for (int i = 0; i < 20; ++i) {
        const Vector theta = rng.standard_normal_vector(fixture.prior.dim());
        const Vector r = fixture.prior.responsibilities(theta);
        expect_simplex(r);
        Vector r_ws;
        fixture.prior.responsibilities_into(theta, r_ws, reused);
        ASSERT_EQ(r.size(), r_ws.size());
        for (std::size_t k = 0; k < r.size(); ++k) {
            EXPECT_TRUE(drel::test_support::bits_equal(r[k], r_ws[k]));
        }
    }
}

}  // namespace
