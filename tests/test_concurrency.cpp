// Cross-layer determinism tests for the shared executor: the fleet
// simulation, EM multi-start, and collaborative multi-start must produce
// bit-identical results at any thread count (per-index Rng::fork streams,
// indexed result slots, fixed-order winner scans). These are the tests the
// sanitizer flow (scripts/check_sanitizers.sh, DREL_SANITIZE=thread|address)
// runs to shake out data races in the hot paths.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/em_dro.hpp"
#include "data/task_generator.hpp"
#include "edgesim/collaborative.hpp"
#include "edgesim/simulation.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel {
namespace {

using test_support::bits_equal;

// ------------------------------------------------------------------- fleet

using test_support::small_fleet_config;

TEST(FleetDeterminism, BitIdenticalAcrossThreadCounts) {
    edgesim::SimulationConfig config = small_fleet_config();
    config.num_threads = 1;
    stats::Rng serial_rng(4242);
    const edgesim::FleetReport serial = edgesim::run_fleet_simulation(config, serial_rng);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        config.num_threads = threads;
        stats::Rng rng(4242);
        const edgesim::FleetReport parallel = edgesim::run_fleet_simulation(config, rng);
        ASSERT_EQ(serial.devices.size(), parallel.devices.size()) << "threads=" << threads;
        EXPECT_EQ(serial.prior_bytes, parallel.prior_bytes);
        EXPECT_EQ(serial.prior_components, parallel.prior_components);
        for (std::size_t i = 0; i < serial.devices.size(); ++i) {
            const auto& s = serial.devices[i];
            const auto& p = parallel.devices[i];
            EXPECT_EQ(s.device_id, p.device_id);
            EXPECT_EQ(s.mode_index, p.mode_index);
            EXPECT_TRUE(bits_equal(s.em_dro_accuracy, p.em_dro_accuracy))
                << "threads=" << threads << " device=" << i;
            EXPECT_TRUE(bits_equal(s.ensemble_accuracy, p.ensemble_accuracy))
                << "threads=" << threads << " device=" << i;
            EXPECT_TRUE(bits_equal(s.local_erm_accuracy, p.local_erm_accuracy))
                << "threads=" << threads << " device=" << i;
            EXPECT_TRUE(bits_equal(s.bayes_accuracy, p.bayes_accuracy))
                << "threads=" << threads << " device=" << i;
        }
    }
}

// ------------------------------------------------- EM multi-start & collab

struct Fixture {
    data::TaskPopulation population;
    data::TaskSpec task;
    std::vector<models::Dataset> local;
    dp::MixturePrior prior;
};

Fixture make_fixture(std::uint64_t seed, std::size_t devices, std::size_t samples_each) {
    stats::Rng rng(seed);
    data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(5, 3, 2.5, 0.05, rng);
    data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    std::vector<models::Dataset> local;
    for (std::size_t j = 0; j < devices; ++j) {
        local.push_back(population.generate(task, samples_each, rng, options));
    }
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return Fixture{std::move(population), std::move(task), std::move(local),
                   dp::MixturePrior(std::move(weights), std::move(atoms))};
}

TEST(EmDroDeterminism, ParallelMultiStartBitIdenticalToSerial) {
    const Fixture f = make_fixture(7, 1, 20);
    const auto loss = models::make_logistic_loss();

    core::EmDroOptions serial_options;
    serial_options.num_threads = 1;
    const core::EmDroSolver serial_solver(f.local[0], *loss, f.prior,
                                          dro::AmbiguitySet::wasserstein(0.1), 2.0,
                                          serial_options);
    const core::EmDroResult serial = serial_solver.solve();

    for (const std::size_t threads : {2u, 4u, 8u}) {
        core::EmDroOptions options;
        options.num_threads = threads;
        const core::EmDroSolver solver(f.local[0], *loss, f.prior,
                                       dro::AmbiguitySet::wasserstein(0.1), 2.0, options);
        const core::EmDroResult parallel = solver.solve();
        EXPECT_TRUE(bits_equal(serial.objective, parallel.objective))
            << "threads=" << threads;
        EXPECT_EQ(serial.total_outer_iterations, parallel.total_outer_iterations);
        ASSERT_EQ(serial.theta.size(), parallel.theta.size());
        for (std::size_t d = 0; d < serial.theta.size(); ++d) {
            EXPECT_TRUE(bits_equal(serial.theta[d], parallel.theta[d]))
                << "threads=" << threads << " dim=" << d;
        }
    }
}

TEST(CollaborativeDeterminism, ParallelMultiStartBitIdenticalToSerial) {
    const Fixture f = make_fixture(11, 3, 16);
    std::vector<const models::Dataset*> devices;
    for (const auto& d : f.local) devices.push_back(&d);

    edgesim::CollaborativeConfig config;
    config.max_outer_iterations = 6;
    config.num_threads = 1;
    const edgesim::CollaborativeResult serial =
        edgesim::collaborative_fit(devices, f.prior, config);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        config.num_threads = threads;
        const edgesim::CollaborativeResult parallel =
            edgesim::collaborative_fit(devices, f.prior, config);
        EXPECT_TRUE(bits_equal(serial.objective, parallel.objective))
            << "threads=" << threads;
        EXPECT_EQ(serial.outer_iterations, parallel.outer_iterations);
        const auto& sw = serial.model.weights();
        const auto& pw = parallel.model.weights();
        ASSERT_EQ(sw.size(), pw.size());
        for (std::size_t d = 0; d < sw.size(); ++d) {
            EXPECT_TRUE(bits_equal(sw[d], pw[d])) << "threads=" << threads << " dim=" << d;
        }
    }
}

// The fleet's per-device EM can itself request multi-start parallelism;
// nesting must serialize transparently and stay deterministic.
TEST(FleetDeterminism, NestedEmParallelismStaysBitIdentical) {
    edgesim::SimulationConfig config = small_fleet_config();
    config.run_ensemble = false;
    config.num_threads = 1;
    config.learner.em.num_threads = 1;
    stats::Rng serial_rng(99);
    const edgesim::FleetReport serial = edgesim::run_fleet_simulation(config, serial_rng);

    config.num_threads = 4;
    config.learner.em.num_threads = 4;  // nested: serialized by the executor
    stats::Rng rng(99);
    const edgesim::FleetReport nested = edgesim::run_fleet_simulation(config, rng);
    ASSERT_EQ(serial.devices.size(), nested.devices.size());
    for (std::size_t i = 0; i < serial.devices.size(); ++i) {
        EXPECT_TRUE(bits_equal(serial.devices[i].em_dro_accuracy,
                               nested.devices[i].em_dro_accuracy))
            << "device=" << i;
    }
}

// ----------------------------------------------------------------- metrics

// The observability contract (DESIGN.md "Observability"): the registry's
// deterministic snapshot — every counter, gauge, and histogram — must be
// BYTE-identical at any thread count, outer (fleet) and nested (EM
// multi-start) parallelism alike. Wall-clock timings are segregated out of
// this snapshot, which is exactly what makes the assertion possible.
TEST(MetricsDeterminism, FleetCountersBitIdenticalAcrossThreadCounts) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    edgesim::SimulationConfig config = small_fleet_config();
    std::string baseline;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        config.num_threads = threads;
        config.learner.em.num_threads = threads;  // nested parallelism too
        obs::Registry::global().reset();
        stats::Rng rng(4242);
        (void)edgesim::run_fleet_simulation(config, rng);
        const std::string snapshot = obs::Registry::global().deterministic_json();
        ASSERT_NE(snapshot.find("fleet.devices_trained"), std::string::npos);
        if (baseline.empty()) {
            baseline = snapshot;
        } else {
            EXPECT_EQ(baseline, snapshot) << "threads=" << threads;
        }
    }
}

}  // namespace
}  // namespace drel
