// Cross-layer determinism tests for the shared executor: the fleet
// simulation, EM multi-start, and collaborative multi-start must produce
// bit-identical results at any thread count (per-index Rng::fork streams,
// indexed result slots, fixed-order winner scans). These are the tests the
// sanitizer flow (scripts/check_sanitizers.sh, DREL_SANITIZE=thread|address)
// runs to shake out data races in the hot paths.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/em_dro.hpp"
#include "data/task_generator.hpp"
#include "dp/mixture_prior.hpp"
#include "edgesim/collaborative.hpp"
#include "edgesim/simulation.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"
#include "util/executor.hpp"
#include "util/workspace.hpp"

namespace drel {
namespace {

using test_support::bits_equal;

// ------------------------------------------------------------------- fleet

using test_support::small_fleet_config;

TEST(FleetDeterminism, BitIdenticalAcrossThreadCounts) {
    edgesim::SimulationConfig config = small_fleet_config();
    config.num_threads = 1;
    stats::Rng serial_rng(4242);
    const edgesim::FleetReport serial = edgesim::run_fleet_simulation(config, serial_rng);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        config.num_threads = threads;
        stats::Rng rng(4242);
        const edgesim::FleetReport parallel = edgesim::run_fleet_simulation(config, rng);
        ASSERT_EQ(serial.devices.size(), parallel.devices.size()) << "threads=" << threads;
        EXPECT_EQ(serial.prior_bytes, parallel.prior_bytes);
        EXPECT_EQ(serial.prior_components, parallel.prior_components);
        for (std::size_t i = 0; i < serial.devices.size(); ++i) {
            const auto& s = serial.devices[i];
            const auto& p = parallel.devices[i];
            EXPECT_EQ(s.device_id, p.device_id);
            EXPECT_EQ(s.mode_index, p.mode_index);
            EXPECT_TRUE(bits_equal(s.em_dro_accuracy, p.em_dro_accuracy))
                << "threads=" << threads << " device=" << i;
            EXPECT_TRUE(bits_equal(s.ensemble_accuracy, p.ensemble_accuracy))
                << "threads=" << threads << " device=" << i;
            EXPECT_TRUE(bits_equal(s.local_erm_accuracy, p.local_erm_accuracy))
                << "threads=" << threads << " device=" << i;
            EXPECT_TRUE(bits_equal(s.bayes_accuracy, p.bayes_accuracy))
                << "threads=" << threads << " device=" << i;
        }
    }
}

// ------------------------------------------------- EM multi-start & collab

struct Fixture {
    data::TaskPopulation population;
    data::TaskSpec task;
    std::vector<models::Dataset> local;
    dp::MixturePrior prior;
};

Fixture make_fixture(std::uint64_t seed, std::size_t devices, std::size_t samples_each) {
    stats::Rng rng(seed);
    data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(5, 3, 2.5, 0.05, rng);
    data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    std::vector<models::Dataset> local;
    for (std::size_t j = 0; j < devices; ++j) {
        local.push_back(population.generate(task, samples_each, rng, options));
    }
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return Fixture{std::move(population), std::move(task), std::move(local),
                   dp::MixturePrior(std::move(weights), std::move(atoms))};
}

TEST(EmDroDeterminism, ParallelMultiStartBitIdenticalToSerial) {
    const Fixture f = make_fixture(7, 1, 20);
    const auto loss = models::make_logistic_loss();

    core::EmDroOptions serial_options;
    serial_options.num_threads = 1;
    const core::EmDroSolver serial_solver(f.local[0], *loss, f.prior,
                                          dro::AmbiguitySet::wasserstein(0.1), 2.0,
                                          serial_options);
    const core::EmDroResult serial = serial_solver.solve();

    for (const std::size_t threads : {2u, 4u, 8u}) {
        core::EmDroOptions options;
        options.num_threads = threads;
        const core::EmDroSolver solver(f.local[0], *loss, f.prior,
                                       dro::AmbiguitySet::wasserstein(0.1), 2.0, options);
        const core::EmDroResult parallel = solver.solve();
        EXPECT_TRUE(bits_equal(serial.objective, parallel.objective))
            << "threads=" << threads;
        EXPECT_EQ(serial.total_outer_iterations, parallel.total_outer_iterations);
        ASSERT_EQ(serial.theta.size(), parallel.theta.size());
        for (std::size_t d = 0; d < serial.theta.size(); ++d) {
            EXPECT_TRUE(bits_equal(serial.theta[d], parallel.theta[d]))
                << "threads=" << threads << " dim=" << d;
        }
    }
}

TEST(CollaborativeDeterminism, ParallelMultiStartBitIdenticalToSerial) {
    const Fixture f = make_fixture(11, 3, 16);
    std::vector<const models::Dataset*> devices;
    for (const auto& d : f.local) devices.push_back(&d);

    edgesim::CollaborativeConfig config;
    config.max_outer_iterations = 6;
    config.num_threads = 1;
    const edgesim::CollaborativeResult serial =
        edgesim::collaborative_fit(devices, f.prior, config);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        config.num_threads = threads;
        const edgesim::CollaborativeResult parallel =
            edgesim::collaborative_fit(devices, f.prior, config);
        EXPECT_TRUE(bits_equal(serial.objective, parallel.objective))
            << "threads=" << threads;
        EXPECT_EQ(serial.outer_iterations, parallel.outer_iterations);
        const auto& sw = serial.model.weights();
        const auto& pw = parallel.model.weights();
        ASSERT_EQ(sw.size(), pw.size());
        for (std::size_t d = 0; d < sw.size(); ++d) {
            EXPECT_TRUE(bits_equal(sw[d], pw[d])) << "threads=" << threads << " dim=" << d;
        }
    }
}

// The fleet's per-device EM can itself request multi-start parallelism;
// nesting must serialize transparently and stay deterministic.
TEST(FleetDeterminism, NestedEmParallelismStaysBitIdentical) {
    edgesim::SimulationConfig config = small_fleet_config();
    config.run_ensemble = false;
    config.num_threads = 1;
    config.learner.em.num_threads = 1;
    stats::Rng serial_rng(99);
    const edgesim::FleetReport serial = edgesim::run_fleet_simulation(config, serial_rng);

    config.num_threads = 4;
    config.learner.em.num_threads = 4;  // nested: serialized by the executor
    stats::Rng rng(99);
    const edgesim::FleetReport nested = edgesim::run_fleet_simulation(config, rng);
    ASSERT_EQ(serial.devices.size(), nested.devices.size());
    for (std::size_t i = 0; i < serial.devices.size(); ++i) {
        EXPECT_TRUE(bits_equal(serial.devices[i].em_dro_accuracy,
                               nested.devices[i].em_dro_accuracy))
            << "device=" << i;
    }
}

// ----------------------------------------------- workspace-threaded kernels

// The allocation-free kernels lean on one thread_local Workspace arena per
// worker (util/workspace.hpp). Two things must hold for the bit-identity
// story to survive parallelism: (a) results must not depend on WHICH arena a
// worker happens to own — i.e. the kernels are pure in everything but their
// scratch space — and (b) a reused arena must behave exactly like a fresh
// one (stale contents never leak into results, `vec` leases are fully
// overwritten before being read).

TEST(WorkspaceKernels, ThreadLocalArenasBitIdenticalAcrossThreadCounts) {
    const auto fixture = test_support::make_population_fixture(31, 30, 10);
    stats::Rng rng(71);
    std::vector<linalg::Vector> thetas;
    for (int i = 0; i < 64; ++i) {
        thetas.push_back(rng.standard_normal_vector(fixture.prior.dim()));
    }

    // Serial baseline through the public (thread_local-workspace) entry
    // points — the exact code path the EM inner loop takes.
    std::vector<double> base_log_pdf(thetas.size());
    std::vector<linalg::Vector> base_resp(thetas.size());
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        base_log_pdf[i] = fixture.prior.log_pdf(thetas[i]);
        base_resp[i] = fixture.prior.responsibilities(thetas[i]);
    }

    for (const std::size_t threads : {2u, 4u, 8u}) {
        std::vector<double> log_pdf(thetas.size());
        std::vector<linalg::Vector> resp(thetas.size());
        util::parallel_for(thetas.size(), threads, [&](std::size_t i) {
            log_pdf[i] = fixture.prior.log_pdf(thetas[i]);
            fixture.prior.responsibilities_into(thetas[i], resp[i],
                                                util::Workspace::local());
        });
        for (std::size_t i = 0; i < thetas.size(); ++i) {
            EXPECT_TRUE(bits_equal(base_log_pdf[i], log_pdf[i]))
                << "threads=" << threads << " i=" << i;
            ASSERT_EQ(base_resp[i].size(), resp[i].size());
            for (std::size_t k = 0; k < resp[i].size(); ++k) {
                EXPECT_TRUE(bits_equal(base_resp[i][k], resp[i][k]))
                    << "threads=" << threads << " i=" << i << " k=" << k;
            }
        }
    }
}

TEST(WorkspaceKernels, ReusedArenaBitIdenticalToFreshAllocation) {
    const auto fixture = test_support::make_population_fixture(13, 30, 10);
    stats::Rng rng(5);
    util::Workspace reused;
    for (int iter = 0; iter < 50; ++iter) {
        const linalg::Vector theta = rng.standard_normal_vector(fixture.prior.dim());
        const linalg::Vector r = fixture.prior.responsibilities(theta);

        util::Workspace fresh;  // brand-new arena every call
        const double q_fresh = fixture.prior.em_surrogate_ws(theta, r, fresh);
        const double q_reused = fixture.prior.em_surrogate_ws(theta, r, reused);
        EXPECT_TRUE(bits_equal(q_fresh, q_reused)) << "iter=" << iter;

        linalg::Vector g_fresh;
        linalg::Vector g_reused;
        {
            util::Workspace fresh2;
            fixture.prior.em_surrogate_gradient_into(theta, r, g_fresh, fresh2);
        }
        fixture.prior.em_surrogate_gradient_into(theta, r, g_reused, reused);
        ASSERT_EQ(g_fresh.size(), g_reused.size());
        for (std::size_t d = 0; d < g_fresh.size(); ++d) {
            EXPECT_TRUE(bits_equal(g_fresh[d], g_reused[d]))
                << "iter=" << iter << " dim=" << d;
        }
        // Every lease must have been returned: a non-zero depth here means a
        // kernel is holding scratch across calls (ownership-rule violation).
        EXPECT_EQ(reused.depth(), 0u);
    }
}

// The full solve is the integration-level statement of the same property:
// EmDroSolver threads one workspace per runner through the E- and M-steps,
// so its result must not depend on the thread count (already covered above)
// NOR on how many solves the arenas have already served.
TEST(WorkspaceKernels, BackToBackSolvesBitIdentical) {
    const auto fixture = test_support::make_population_fixture(29, 24, 10);
    const auto loss = models::make_logistic_loss();
    core::EmDroOptions options;
    options.num_threads = 2;
    const core::EmDroSolver solver(fixture.train, *loss, fixture.prior,
                                   dro::AmbiguitySet::wasserstein(0.1), 2.0, options);
    const core::EmDroResult first = solver.solve();
    const core::EmDroResult second = solver.solve();  // arenas now warm
    EXPECT_TRUE(bits_equal(first.objective, second.objective));
    ASSERT_EQ(first.theta.size(), second.theta.size());
    for (std::size_t d = 0; d < first.theta.size(); ++d) {
        EXPECT_TRUE(bits_equal(first.theta[d], second.theta[d])) << "dim=" << d;
    }
}

// ----------------------------------------------------------------- metrics

// The observability contract (DESIGN.md "Observability"): the registry's
// deterministic snapshot — every counter, gauge, and histogram — must be
// BYTE-identical at any thread count, outer (fleet) and nested (EM
// multi-start) parallelism alike. Wall-clock timings are segregated out of
// this snapshot, which is exactly what makes the assertion possible.
TEST(MetricsDeterminism, FleetCountersBitIdenticalAcrossThreadCounts) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    edgesim::SimulationConfig config = small_fleet_config();
    std::string baseline;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        config.num_threads = threads;
        config.learner.em.num_threads = threads;  // nested parallelism too
        obs::Registry::global().reset();
        stats::Rng rng(4242);
        (void)edgesim::run_fleet_simulation(config, rng);
        const std::string snapshot = obs::Registry::global().deterministic_json();
        ASSERT_NE(snapshot.find("fleet.devices_trained"), std::string::npos);
        if (baseline.empty()) {
            baseline = snapshot;
        } else {
            EXPECT_EQ(baseline, snapshot) << "threads=" << threads;
        }
    }
}

}  // namespace
}  // namespace drel
