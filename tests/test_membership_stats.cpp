// Statistical goodness-of-fit suite for the membership state machine —
// the `statistical` ctest label, alongside test_sampling_stats.cpp.
//
// The churn plan draws one uniform per slot per (round, device) cell, so
// the state machine's holding times have closed forms:
//
//   * A Suspect spell under constant heartbeat-loss probability p with
//     threshold k (suspect_rounds_to_dead) lasts L rounds where
//         P(L = j)     = p^(j-1) (1 - p)   for j = 1..k-2   (recovery)
//         P(L = k - 1) = p^(k-2)           (recovery OR death at the brink)
//     and a spell that ends in death always lasts exactly k - 1 rounds of
//     SUSPECT state (the k-th consecutive miss kills within the deadline
//     handler). Conditional on reaching length k - 1, death happens with
//     probability p (one more miss) and recovery with 1 - p.
//
//   * Rejoin inter-arrival: a Dead device waits D rounds for its rejoin
//     admission, D ~ Geometric(q) on {1, 2, ...}.
//
// Every test replays the ENGINE's per-round query pattern (begin_round,
// admissions in device order, heartbeat deadline) against a MembershipTable
// with a fixed seed, so each chi-square statistic is a deterministic number
// — the assertions cannot flake. Critical values sit at df + 5*sqrt(2*df),
// the convention of the sampling suite: ~5 sigma past the chi-square mean,
// yet orders of magnitude below what a real distribution bug produces.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "edgesim/membership.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {
namespace {

/// Pearson chi-square with small-expected-bin merging (bins with expected
/// count < 5 pool into one synthetic bin), as in test_sampling_stats.cpp.
double chi_square_statistic(const std::vector<std::uint64_t>& observed,
                            const std::vector<double>& probabilities,
                            std::uint64_t total_draws, std::size_t* df_out) {
    EXPECT_EQ(observed.size(), probabilities.size());
    double statistic = 0.0;
    std::size_t bins = 0;
    double pooled_expected = 0.0;
    double pooled_observed = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double expected = probabilities[i] * static_cast<double>(total_draws);
        if (expected >= 5.0) {
            const double diff = static_cast<double>(observed[i]) - expected;
            statistic += diff * diff / expected;
            ++bins;
        } else {
            pooled_expected += expected;
            pooled_observed += static_cast<double>(observed[i]);
        }
    }
    if (pooled_expected > 0.0) {
        const double diff = pooled_observed - pooled_expected;
        statistic += diff * diff / pooled_expected;
        ++bins;
    }
    *df_out = bins > 1 ? bins - 1 : 1;
    return statistic;
}

double critical_value(std::size_t df) {
    return static_cast<double>(df) + 5.0 * std::sqrt(2.0 * static_cast<double>(df));
}

/// One engine-shaped round: promotion, admissions in device order, then the
/// heartbeat fold — the exact query pattern run_fleet_engine issues.
void drive_round(MembershipTable& table, std::size_t round, const ChurnPlan& plan) {
    table.begin_round();
    for (std::size_t j = 0; j < table.capacity(); ++j) {
        const LivenessState st = table.state(j);
        if (st == LivenessState::kUnknown) {
            if (plan.device_churn(round, j).join) table.apply_join(j);
        } else if (st == LivenessState::kDead) {
            if (plan.device_churn(round, j).rejoin) table.apply_rejoin(j);
        }
    }
    table.heartbeat_deadline(round, plan);
}

TEST(MembershipStats, SuspectSpellLengthsFollowTheTruncatedGeometric) {
    // Heartbeat losses only: every spell starts Alive -> Suspect and ends
    // in recovery or death; no leaves, no rejoins muddy the holding time.
    constexpr double kLossProb = 0.45;
    constexpr std::size_t kThreshold = 4;  // suspect_rounds_to_dead
    constexpr std::size_t kDevices = 4000;
    constexpr std::size_t kRounds = 400;

    ChurnConfig config;
    config.heartbeat_loss_prob = kLossProb;
    stats::Rng rng(20260808);
    const ChurnPlan plan(config, rng);
    MembershipTable table(kDevices, kDevices, kThreshold);

    // Track each device's current spell: rounds spent CONSECUTIVELY in
    // Suspect. A transition back to Alive closes it as a recovery; a
    // transition to Dead closes it as a death. Dead is absorbing here
    // (rejoin_prob = 0), so dead devices just stop producing spells.
    std::vector<std::size_t> spell(kDevices, 0);
    // Spell-length histogram, 1-indexed up to kThreshold - 1 (the state
    // machine kills inside the deadline handler on the k-th miss, so no
    // spell ever shows length k in the census).
    std::vector<std::uint64_t> lengths(kThreshold, 0);
    std::uint64_t recoveries = 0;
    std::uint64_t deaths = 0;
    std::uint64_t deaths_at_brink = 0;

    for (std::size_t round = 0; round < kRounds; ++round) {
        drive_round(table, round, plan);
        for (std::size_t j = 0; j < kDevices; ++j) {
            const LivenessState now = table.state(j);
            if (now == LivenessState::kSuspect) {
                ++spell[j];
            } else if (spell[j] > 0) {
                ASSERT_LT(spell[j], kThreshold);
                ++lengths[spell[j]];
                if (now == LivenessState::kAlive) {
                    ++recoveries;
                } else {
                    ASSERT_EQ(now, LivenessState::kDead);
                    ++deaths;
                    // Death requires k consecutive misses: k - 1 rounds
                    // OBSERVED as Suspect, then the killing miss.
                    EXPECT_EQ(spell[j], kThreshold - 1)
                        << "device " << j << " died off-schedule at round " << round;
                    ++deaths_at_brink;
                }
                spell[j] = 0;
            }
        }
    }
    ASSERT_GT(recoveries + deaths, 10'000u);
    EXPECT_EQ(deaths, deaths_at_brink);

    // GOF on the closed spells: P(L = j) = p^(j-1)(1-p) for j < k-1, and
    // the brink bin j = k-1 absorbs both outcomes with mass p^(k-2).
    std::vector<std::uint64_t> observed;
    std::vector<double> probabilities;
    for (std::size_t j = 1; j + 1 < kThreshold; ++j) {
        observed.push_back(lengths[j]);
        probabilities.push_back(std::pow(kLossProb, static_cast<double>(j - 1)) *
                                (1.0 - kLossProb));
    }
    observed.push_back(lengths[kThreshold - 1]);
    probabilities.push_back(std::pow(kLossProb, static_cast<double>(kThreshold - 2)));

    std::size_t df = 0;
    const std::uint64_t total = recoveries + deaths;
    const double statistic = chi_square_statistic(observed, probabilities, total, &df);
    EXPECT_LT(statistic, critical_value(df)) << "chi2=" << statistic << " df=" << df;

    // Conditional on reaching the brink, the k-th miss (death) happens with
    // probability p: a 2-bin check at the same 5-sigma convention.
    std::size_t df2 = 0;
    const double brink_stat = chi_square_statistic(
        {deaths, lengths[kThreshold - 1] - deaths}, {kLossProb, 1.0 - kLossProb},
        lengths[kThreshold - 1], &df2);
    EXPECT_LT(brink_stat, critical_value(df2))
        << "chi2=" << brink_stat << " df=" << df2;
}

TEST(MembershipStats, RejoinInterArrivalsAreGeometric) {
    // Every device leaves immediately (leave_prob = 1) and rejoins with
    // probability q per round: each Dead spell's length is one geometric
    // draw, and devices cycle Dead -> Joining -> Alive -> Dead forever,
    // yielding thousands of independent inter-arrival samples.
    constexpr double kRejoinProb = 0.3;
    constexpr std::size_t kDevices = 2000;
    constexpr std::size_t kRounds = 300;
    constexpr std::size_t kMaxLag = 24;  // tail bins pool in the chi-square

    ChurnConfig config;
    config.leave_prob = 1.0;
    config.rejoin_prob = kRejoinProb;
    stats::Rng rng(4242);
    const ChurnPlan plan(config, rng);
    MembershipTable table(kDevices, kDevices, 2);

    // Censuses spent Dead before the rejoin admission fires, counting the
    // death round itself: the first rejoin opportunity is the NEXT round's
    // admission pass, so a wait of 1 means the device came back at the
    // first chance — exactly the Geometric(q) support {1, 2, ...}.
    std::vector<std::size_t> waited(kDevices, 0);
    std::vector<std::uint64_t> lags(kMaxLag + 1, 0);
    std::uint64_t samples = 0;

    for (std::size_t round = 0; round < kRounds; ++round) {
        drive_round(table, round, plan);
        for (std::size_t j = 0; j < kDevices; ++j) {
            switch (table.state(j)) {
                case LivenessState::kDead:
                    ++waited[j];
                    break;
                case LivenessState::kJoining: {
                    const std::size_t lag = waited[j];
                    ++lags[std::min(lag, kMaxLag)];
                    ++samples;
                    waited[j] = 0;
                    break;
                }
                default:
                    waited[j] = 0;
                    break;
            }
        }
    }
    ASSERT_GT(samples, 50'000u);

    // P(D = d) = (1-q)^(d-1) q, with everything past kMaxLag folded into
    // the last bin (the chi-square pools small bins anyway; folding keeps
    // the probabilities summing to one exactly).
    std::vector<std::uint64_t> observed;
    std::vector<double> probabilities;
    double tail = 1.0;
    for (std::size_t d = 1; d < kMaxLag; ++d) {
        const double mass =
            std::pow(1.0 - kRejoinProb, static_cast<double>(d - 1)) * kRejoinProb;
        observed.push_back(lags[d]);
        probabilities.push_back(mass);
        tail -= mass;
    }
    observed.push_back(lags[kMaxLag]);
    probabilities.push_back(tail);

    std::size_t df = 0;
    const double statistic = chi_square_statistic(observed, probabilities, samples, &df);
    EXPECT_LT(statistic, critical_value(df)) << "chi2=" << statistic << " df=" << df;
}

TEST(MembershipStats, ChurnEventCountsScaleLinearlyWithTheRate) {
    // Sanity companion to the GOF tests: over a fixed cell grid the number
    // of raised flags per slot tracks rate * cells within 5 sigma of the
    // binomial — the thresholding really is uniform.
    constexpr std::size_t kRounds = 100;
    constexpr std::size_t kDevices = 500;
    stats::Rng rng(7);
    for (const double rate : {0.1, 0.35, 0.7}) {
        const ChurnPlan plan(ChurnConfig::uniform(rate), rng);
        std::uint64_t joins = 0;
        std::uint64_t leaves = 0;
        std::uint64_t losses = 0;
        std::uint64_t rejoins = 0;
        for (std::size_t round = 0; round < kRounds; ++round) {
            for (std::size_t device = 0; device < kDevices; ++device) {
                const DeviceChurnDecision d = plan.device_churn(round, device);
                joins += d.join;
                leaves += d.leave;
                losses += d.heartbeat_lost;
                rejoins += d.rejoin;
            }
        }
        const double cells = static_cast<double>(kRounds * kDevices);
        const double sigma = std::sqrt(cells * rate * (1.0 - rate));
        for (const std::uint64_t count : {joins, leaves, losses, rejoins}) {
            EXPECT_NEAR(static_cast<double>(count), cells * rate, 5.0 * sigma)
                << "rate=" << rate;
        }
    }
}

}  // namespace
}  // namespace drel::edgesim
