// Statistical goodness-of-fit suite for the sampling kernels
// (stats/alias_table, stats/weighted_reservoir) — the `statistical` ctest
// label.
//
// Every test draws from a FIXED seed, so each chi-square statistic is a
// deterministic number: the assertions cannot flake. The critical values
// are set at df + 5*sqrt(2*df) — roughly five standard deviations above the
// chi-square mean, far past any plausible healthy draw for these seeds yet
// tight enough that a real distribution bug (swapped alias branch, biased
// bucket pick, broken jump length) lands orders of magnitude outside.
// Expected-count-below-5 bins are merged before computing the statistic, per
// standard chi-square practice.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "linalg/reference.hpp"
#include "stats/alias_table.hpp"
#include "stats/rng.hpp"
#include "stats/weighted_reservoir.hpp"

namespace drel {
namespace {

/// Pearson chi-square with small-expected-bin merging: bins whose expected
/// count falls below 5 pool into one synthetic bin. Returns the statistic
/// and reports the post-merge degrees of freedom.
double chi_square_statistic(const std::vector<std::uint64_t>& observed,
                            const std::vector<double>& probabilities,
                            std::uint64_t total_draws, std::size_t* df_out) {
    EXPECT_EQ(observed.size(), probabilities.size());
    double statistic = 0.0;
    std::size_t bins = 0;
    double pooled_expected = 0.0;
    double pooled_observed = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double expected = probabilities[i] * static_cast<double>(total_draws);
        if (expected >= 5.0) {
            const double diff = static_cast<double>(observed[i]) - expected;
            statistic += diff * diff / expected;
            ++bins;
        } else {
            pooled_expected += expected;
            pooled_observed += static_cast<double>(observed[i]);
        }
    }
    if (pooled_expected > 0.0) {
        const double diff = pooled_observed - pooled_expected;
        statistic += diff * diff / pooled_expected;
        ++bins;
    }
    *df_out = bins > 1 ? bins - 1 : 1;
    return statistic;
}

double critical_value(std::size_t df) {
    return static_cast<double>(df) + 5.0 * std::sqrt(2.0 * static_cast<double>(df));
}

void expect_alias_draws_fit(const std::vector<double>& weights, std::uint64_t draws,
                            std::uint64_t seed, const char* label) {
    stats::AliasTable table;
    table.rebuild(weights.data(), weights.size());
    const double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);

    // Exactness first: the bucket pair encodes the pmf up to round-off,
    // independent of any sampling.
    const std::vector<double> pmf =
        linalg::reference::alias_pmf(table.probabilities(), table.aliases());
    std::vector<double> probabilities(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        probabilities[i] = weights[i] / total_weight;
        EXPECT_NEAR(pmf[i], probabilities[i], 1e-12) << label << " bucket " << i;
    }

    stats::Rng rng(seed);
    std::vector<std::uint64_t> counts(weights.size(), 0);
    for (std::uint64_t t = 0; t < draws; ++t) ++counts[table.draw(rng)];

    std::size_t df = 0;
    const double statistic = chi_square_statistic(counts, probabilities, draws, &df);
    EXPECT_LT(statistic, critical_value(df))
        << label << ": chi2=" << statistic << " df=" << df;
}

TEST(SamplingStatsAlias, UniformWeightsFit) {
    expect_alias_draws_fit(std::vector<double>(64, 1.0), 50000, 9001, "uniform-64");
}

TEST(SamplingStatsAlias, SkewedWeightsFit) {
    // Geometric decay: half the mass on the first outcome.
    std::vector<double> weights(20);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] = std::ldexp(1.0, -static_cast<int>(i));
    }
    expect_alias_draws_fit(weights, 50000, 9002, "geometric-20");
}

TEST(SamplingStatsAlias, PowerLawWeightsFit) {
    // w_i ~ 1/(i+1)^2: a long tail whose far bins merge below expected=5.
    std::vector<double> weights(100);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double rank = static_cast<double>(i + 1);
        weights[i] = 1.0 / (rank * rank);
    }
    expect_alias_draws_fit(weights, 60000, 9003, "power-law-100");
}

TEST(SamplingStatsAlias, SingleOutcomeAlwaysDrawn) {
    stats::AliasTable table;
    const double weight = 3.25;
    table.rebuild(&weight, 1);
    stats::Rng rng(9004);
    for (int t = 0; t < 1000; ++t) ASSERT_EQ(table.draw(rng), 0u);
}

TEST(SamplingStatsAlias, TenThousandOutcomesFit) {
    // K = 10k with mildly varying weights: stresses the worklist pairing at
    // scale; expected counts sit near 10 per bin so no merging kicks in.
    const std::size_t k = 10000;
    std::vector<double> weights(k);
    stats::Rng weight_rng(77);
    for (double& w : weights) w = 0.5 + weight_rng.uniform();
    expect_alias_draws_fit(weights, 100000, 9005, "uniform-ish-10k");
}

TEST(SamplingStatsAlias, MatchesCategoricalScanDistribution) {
    // Same uniforms through the alias map and the CDF scan it replaced:
    // different index maps, so compare marginal COUNTS, not draw-for-draw.
    const std::vector<double> weights = {0.05, 0.3, 0.15, 0.4, 0.1};
    stats::AliasTable table;
    table.rebuild(weights.data(), weights.size());
    const std::uint64_t draws = 40000;
    stats::Rng rng(9006);
    std::vector<std::uint64_t> alias_counts(weights.size(), 0);
    std::vector<std::uint64_t> scan_counts(weights.size(), 0);
    for (std::uint64_t t = 0; t < draws; ++t) {
        const double u = rng.uniform();
        ++alias_counts[table.draw_from_uniform(u)];
        ++scan_counts[linalg::reference::categorical_from_uniform(weights, u)];
    }
    // Both empirical distributions must fit the pmf; their mutual distance
    // is then bounded by the same chi-square scale.
    std::size_t df = 0;
    const double alias_stat = chi_square_statistic(alias_counts, weights, draws, &df);
    EXPECT_LT(alias_stat, critical_value(df));
    const double scan_stat = chi_square_statistic(scan_counts, weights, draws, &df);
    EXPECT_LT(scan_stat, critical_value(df));
}

// ---------------------------------------------------------------------------
// Weighted reservoir inclusion probabilities.

TEST(SamplingStatsReservoir, CapacityOneMatchesWeightedCategorical) {
    // With k = 1 the A-ES winner is EXACTLY a categorical draw with
    // p_i = w_i / sum(w) — chi-square-able against the closed form.
    const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0, 1.0, 0.5};
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<double> probabilities(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) probabilities[i] = weights[i] / total;

    const std::uint64_t trials = 20000;
    stats::Rng root(9101);
    std::vector<std::uint64_t> counts(weights.size(), 0);
    for (std::uint64_t t = 0; t < trials; ++t) {
        stats::Rng rng = root.fork(t);
        stats::WeightedReservoir reservoir(1);
        for (std::size_t i = 0; i < weights.size(); ++i) reservoir.offer(i, weights[i], rng);
        const std::vector<std::size_t> kept = reservoir.sorted_items();
        ASSERT_EQ(kept.size(), 1u);
        ++counts[kept[0]];
    }
    std::size_t df = 0;
    const double statistic = chi_square_statistic(counts, probabilities, trials, &df);
    EXPECT_LT(statistic, critical_value(df)) << "chi2=" << statistic << " df=" << df;
}

TEST(SamplingStatsReservoir, UniformWeightsIncludeUniformly) {
    // Uniform weights: every item's inclusion probability is exactly k/N.
    const std::size_t n = 500;
    const std::size_t k = 25;
    const std::uint64_t trials = 600;
    stats::Rng root(9102);
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t t = 0; t < trials; ++t) {
        stats::Rng rng = root.fork(t);
        stats::WeightedReservoir reservoir(k);
        for (std::size_t i = 0; i < n; ++i) reservoir.offer(i, 1.0, rng);
        for (const std::size_t item : reservoir.sorted_items()) ++counts[item];
    }
    // Inclusions within a trial are negatively correlated (fixed sample
    // size), which only SHRINKS the statistic's variance relative to the
    // multinomial null — the chi-square bound stays valid. Each trial
    // contributes k inclusion slots, each landing on item i with
    // probability 1/n, so expected counts are trials*k/n per item.
    const std::vector<double> probabilities(n, 1.0 / static_cast<double>(n));
    std::size_t df = 0;
    const double statistic =
        chi_square_statistic(counts, probabilities, trials * k, &df);
    EXPECT_LT(statistic, critical_value(df)) << "chi2=" << statistic << " df=" << df;

    // Exact invariant, every trial: exactly k survivors from n offers.
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    EXPECT_EQ(total, trials * k);
}

TEST(SamplingStatsReservoir, HeavierItemsIncludeMoreOften) {
    // 10x weight must visibly raise inclusion; also pins per-stream
    // position independence (heavy items scattered through the stream).
    const std::size_t n = 60;
    const std::size_t k = 6;
    const std::uint64_t trials = 3000;
    stats::Rng root(9103);
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t t = 0; t < trials; ++t) {
        stats::Rng rng = root.fork(t);
        stats::WeightedReservoir reservoir(k);
        for (std::size_t i = 0; i < n; ++i) {
            reservoir.offer(i, i % 10 == 3 ? 10.0 : 1.0, rng);
        }
        for (const std::size_t item : reservoir.sorted_items()) ++counts[item];
    }
    double heavy_mean = 0.0;
    double light_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        (i % 10 == 3 ? heavy_mean : light_mean) += static_cast<double>(counts[i]);
    }
    heavy_mean /= static_cast<double>(n / 10);
    light_mean /= static_cast<double>(n - n / 10);
    EXPECT_GT(heavy_mean, 3.0 * light_mean)
        << "heavy=" << heavy_mean << " light=" << light_mean;
}

TEST(SamplingStatsReservoir, MatchesNaiveTopkDistributionAtCapacityOne) {
    // The A-ExpJ stream and the naive per-item-key oracle draw different
    // uniforms, so compare their k=1 winner DISTRIBUTIONS over many trials.
    const std::vector<double> weights = {0.5, 1.5, 3.0, 1.0};
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    const std::uint64_t trials = 20000;
    stats::Rng root(9104);
    std::vector<std::uint64_t> naive_counts(weights.size(), 0);
    for (std::uint64_t t = 0; t < trials; ++t) {
        stats::Rng rng = root.fork(t);
        linalg::Vector uniforms(weights.size());
        for (double& u : uniforms) u = rng.uniform();
        const std::vector<std::size_t> kept =
            linalg::reference::weighted_topk(weights, uniforms, 1);
        ASSERT_EQ(kept.size(), 1u);
        ++naive_counts[kept[0]];
    }
    std::vector<double> probabilities(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) probabilities[i] = weights[i] / total;
    std::size_t df = 0;
    const double statistic = chi_square_statistic(naive_counts, probabilities, trials, &df);
    EXPECT_LT(statistic, critical_value(df))
        << "naive oracle off its own closed form: chi2=" << statistic;
}

TEST(SamplingStatsReservoir, KeepsEverythingWhenUnderfilled) {
    stats::Rng rng(9105);
    stats::WeightedReservoir reservoir(10);
    for (std::size_t i = 0; i < 7; ++i) reservoir.offer(i * 3, 1.0 + static_cast<double>(i), rng);
    EXPECT_EQ(reservoir.size(), 7u);
    EXPECT_EQ(reservoir.offered(), 7u);
    const std::vector<std::size_t> kept = reservoir.sorted_items();
    ASSERT_EQ(kept.size(), 7u);
    for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(kept[i], i * 3);
}

}  // namespace
}  // namespace drel
