// Wire format v2 (edgesim/transfer.hpp): round-trip properties, delta
// reconstruction, version negotiation, the flags registry, and a
// fixed-seed chi-square check that 8-bit quantization preserves mode
// recovery (the `statistical` suite).
//
// The quantization bound under test is the documented per-section one:
// with levels = 2^bits - 1 and [min, max] the section's value range,
//
//   |v - v_hat| <= (max - min) / (2 * levels).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dp/mixture_prior.hpp"
#include "edgesim/transfer.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {
namespace {

/// A non-trivial prior: K well-separated anisotropic atoms in `dim`
/// dimensions with uneven weights.
dp::MixturePrior make_prior(std::size_t num_components, std::size_t dim,
                            stats::Rng& rng) {
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t k = 0; k < num_components; ++k) {
        weights.push_back(1.0 / static_cast<double>(k + 1));
        linalg::Vector mean(dim);
        for (std::size_t i = 0; i < dim; ++i) {
            mean[i] = 6.0 * static_cast<double>(k) * (i % 2 == 0 ? 1.0 : -1.0) +
                      0.5 * rng.normal();
        }
        linalg::Matrix cov = linalg::Matrix::identity(dim) * (0.5 + 0.25 * k);
        for (std::size_t i = 0; i + 1 < dim; ++i) {
            const double off = 0.05 * rng.normal();
            cov(i, i + 1) += off;
            cov(i + 1, i) += off;
        }
        atoms.emplace_back(std::move(mean), std::move(cov));
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

double max_abs(const linalg::Vector& v) {
    double m = 0.0;
    for (const double x : v) m = std::max(m, std::abs(x));
    return m;
}

/// max - min over a span of doubles: the quantizer's per-section range.
double span_of(const std::vector<double>& values) {
    double lo = values.front(), hi = values.front();
    for (const double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return hi - lo;
}

std::vector<double> mean_section(const dp::MixturePrior& prior, std::size_t k) {
    return {prior.atom(k).mean().begin(), prior.atom(k).mean().end()};
}

std::vector<double> cov_section(const dp::MixturePrior& prior, std::size_t k) {
    std::vector<double> out;
    const linalg::Matrix& cov = prior.atom(k).covariance();
    for (std::size_t row = 0; row < prior.dim(); ++row) {
        for (std::size_t col = 0; col <= row; ++col) out.push_back(cov(row, col));
    }
    return out;
}

// ---------------------------------------------------------------- roundtrip

TEST(TransferV2, UnquantizedV2RoundTripsExactly) {
    stats::Rng rng(1);
    const dp::MixturePrior prior = make_prior(4, 5, rng);
    EncodingOptions options;
    options.version = kWireV2;
    options.prior_version = 17;
    WireInfo info;
    const dp::MixturePrior decoded =
        decode_prior(encode_prior(prior, options), nullptr, kMaxWireVersion, &info);
    EXPECT_EQ(info.version, kWireV2);
    EXPECT_EQ(info.prior_version, 17u);
    EXPECT_EQ(info.num_components, 4u);
    EXPECT_EQ(info.dim, 5u);
    ASSERT_EQ(decoded.num_components(), prior.num_components());
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        // Weights re-normalize on decode (a second divide-by-sum), so they
        // round-trip to the ULP, not the bit; the atom payload is exact.
        EXPECT_DOUBLE_EQ(decoded.weights()[k], prior.weights()[k]);
        EXPECT_EQ(decoded.atom(k).mean(), prior.atom(k).mean());
        EXPECT_EQ(cov_section(decoded, k), cov_section(prior, k));
    }
}

TEST(TransferV2, QuantizationErrorWithinDocumentedBoundPerBitWidth) {
    stats::Rng rng(2);
    const dp::MixturePrior prior = make_prior(5, 6, rng);
    for (const int bits : {2, 4, 8, 12, 16}) {
        EncodingOptions options;
        options.version = kWireV2;
        options.quantized = true;
        options.quantization_bits = bits;
        const dp::MixturePrior decoded = decode_prior(encode_prior(prior, options));
        const double levels = static_cast<double>((1u << bits) - 1u);
        ASSERT_EQ(decoded.num_components(), prior.num_components());
        for (std::size_t k = 0; k < prior.num_components(); ++k) {
            // Weights always travel as f64.
            EXPECT_NEAR(decoded.weights()[k], prior.weights()[k], 1e-12);
            const double mean_bound =
                span_of(mean_section(prior, k)) / (2.0 * levels) + 1e-12;
            for (std::size_t i = 0; i < prior.dim(); ++i) {
                EXPECT_LE(std::abs(decoded.atom(k).mean()[i] - prior.atom(k).mean()[i]),
                          mean_bound)
                    << "bits=" << bits << " atom=" << k << " coord=" << i;
            }
            const std::vector<double> want = cov_section(prior, k);
            const std::vector<double> got = cov_section(decoded, k);
            const double cov_bound = span_of(want) / (2.0 * levels) + 1e-12;
            for (std::size_t i = 0; i < want.size(); ++i) {
                EXPECT_LE(std::abs(got[i] - want[i]), cov_bound)
                    << "bits=" << bits << " atom=" << k << " entry=" << i;
            }
        }
    }
}

TEST(TransferV2, QuantizedSizesShrinkWithBitWidthAndMatchEncodedSize) {
    stats::Rng rng(3);
    const dp::MixturePrior prior = make_prior(6, 8, rng);
    std::size_t previous = encode_prior(prior).size();  // v1 full fidelity
    for (const int bits : {16, 12, 8, 4, 2}) {
        EncodingOptions options;
        options.version = kWireV2;
        options.quantized = true;
        options.quantization_bits = bits;
        const auto payload = encode_prior(prior, options);
        EXPECT_EQ(payload.size(), encoded_size(6, 8, options)) << "bits=" << bits;
        EXPECT_LT(payload.size(), previous) << "bits=" << bits;
        previous = payload.size();
    }
    // The headline claim the bench enforces at fleet scale: 8-bit v2 cuts
    // broadcast bytes by at least 2x against v1 at the same (K, dim).
    EncodingOptions v2_8bit;
    v2_8bit.version = kWireV2;
    v2_8bit.quantized = true;
    EXPECT_GE(encoded_size(6, 8, {}), 2 * encoded_size(6, 8, v2_8bit));
}

// -------------------------------------------------------------------- delta

TEST(TransferV2, DeltaReconstructsExactlyAndSkipsUnchangedAtoms) {
    // Dyadic weights summing to exactly 1.0: MixturePrior's normalization
    // divides by 1.0, so "unchanged" atoms really are bit-identical across
    // the two broadcasts — the property the presence byte keys on.
    std::vector<stats::MultivariateNormal> base_atoms;
    base_atoms.push_back(stats::MultivariateNormal::isotropic({6.0, 0.0, -6.0, 0.0}, 0.5));
    base_atoms.push_back(stats::MultivariateNormal::isotropic({-6.0, 6.0, 0.0, 6.0}, 0.75));
    base_atoms.push_back(stats::MultivariateNormal::isotropic({0.0, -6.0, 6.0, -6.0}, 1.0));
    const dp::MixturePrior base_prior({0.5, 0.25, 0.25}, std::move(base_atoms));

    // Next broadcast: atom 0 unchanged bit-for-bit, atom 1 perturbed (and
    // its weight share moved to a brand-new component), atom 2 unchanged.
    std::vector<stats::MultivariateNormal> atoms{base_prior.atoms()};
    linalg::Vector moved = atoms[1].mean();
    moved[0] += 0.25;
    atoms[1] = stats::MultivariateNormal(std::move(moved), atoms[1].covariance());
    atoms.push_back(stats::MultivariateNormal::isotropic({9.0, -9.0, 9.0, -9.0}, 0.75));
    const dp::MixturePrior next({0.5, 0.125, 0.25, 0.125}, std::move(atoms));

    const PriorBase base{&base_prior, 41};
    EncodingOptions options;
    options.version = kWireV2;
    options.delta = true;
    options.prior_version = 42;
    const auto delta_frame = encode_prior(next, options, &base);

    EncodingOptions full = options;
    full.delta = false;
    const auto full_frame = encode_prior(next, full);
    // Two skipped atoms: the delta must be materially smaller, and within
    // the encoded_size worst case (all atoms present).
    EXPECT_LT(delta_frame.size(), full_frame.size());
    EXPECT_LE(delta_frame.size(), encoded_size(4, 4, options));

    // Exact reconstruction: identical to decoding the full frame.
    const dp::MixturePrior from_delta = decode_prior(delta_frame, &base);
    const dp::MixturePrior from_full = decode_prior(full_frame);
    ASSERT_EQ(from_delta.num_components(), from_full.num_components());
    for (std::size_t k = 0; k < from_full.num_components(); ++k) {
        EXPECT_EQ(from_delta.weights()[k], from_full.weights()[k]);
        EXPECT_EQ(from_delta.atom(k).mean(), from_full.atom(k).mean());
        EXPECT_EQ(cov_section(from_delta, k), cov_section(from_full, k));
    }
}

TEST(TransferV2, DeltaRePushOfUnchangedPriorCollapsesToHeaderBytes) {
    stats::Rng rng(5);
    const dp::MixturePrior prior = make_prior(6, 8, rng);
    const PriorBase base{&prior, 7};
    EncodingOptions options;
    options.version = kWireV2;
    options.delta = true;
    options.prior_version = 8;
    const auto frame = encode_prior(prior, options, &base);
    // Header (8 magic + 16 + 8 prior_version + 8 base_version) + one
    // presence byte per atom: nothing else when the prior did not move.
    EXPECT_EQ(frame.size(), 8u + 16u + 8u + 8u + prior.num_components());
    const dp::MixturePrior decoded = decode_prior(frame, &base);
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        EXPECT_EQ(decoded.atom(k).mean(), prior.atom(k).mean());
    }
}

TEST(TransferV2, QuantizedDeltaResidualsBeatAbsoluteQuantization) {
    stats::Rng rng(6);
    const dp::MixturePrior base_prior = make_prior(4, 6, rng);
    // Small drift: every mean moves by <= 0.01 — residual spans are tiny
    // compared with the absolute coordinate spans.
    linalg::Vector weights{base_prior.weights()};
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t k = 0; k < base_prior.num_components(); ++k) {
        linalg::Vector mean = base_prior.atom(k).mean();
        for (double& v : mean) v += 0.01 * rng.uniform();
        atoms.emplace_back(std::move(mean), base_prior.atom(k).covariance());
    }
    const dp::MixturePrior next(std::move(weights), std::move(atoms));

    const PriorBase base{&base_prior, 1};
    EncodingOptions residual;
    residual.version = kWireV2;
    residual.quantized = true;
    residual.quantization_bits = 8;
    residual.delta = true;
    residual.prior_version = 2;
    const dp::MixturePrior via_residual =
        decode_prior(encode_prior(next, residual, &base), &base);

    EncodingOptions absolute = residual;
    absolute.delta = false;
    const dp::MixturePrior via_absolute = decode_prior(encode_prior(next, absolute));

    double residual_err = 0.0, absolute_err = 0.0;
    for (std::size_t k = 0; k < next.num_components(); ++k) {
        for (std::size_t i = 0; i < next.dim(); ++i) {
            residual_err = std::max(
                residual_err,
                std::abs(via_residual.atom(k).mean()[i] - next.atom(k).mean()[i]));
            absolute_err = std::max(
                absolute_err,
                std::abs(via_absolute.atom(k).mean()[i] - next.atom(k).mean()[i]));
        }
    }
    EXPECT_LT(residual_err, 1e-4);  // residual span ~0.01 at 255 levels
    EXPECT_LT(residual_err, absolute_err / 10.0);
}

TEST(TransferV2, DeltaRejectsMissingOrMismatchedBase) {
    stats::Rng rng(7);
    const dp::MixturePrior prior = make_prior(3, 4, rng);
    const PriorBase base{&prior, 5};
    EncodingOptions options;
    options.version = kWireV2;
    options.delta = true;
    options.prior_version = 6;
    const auto frame = encode_prior(prior, options, &base);

    // Encoder side: no base at all.
    EXPECT_THROW(encode_prior(prior, options), std::invalid_argument);
    // Decoder side: no base, wrong version, wrong dimension — all before
    // any atom allocation.
    EXPECT_THROW(decode_prior(frame), std::invalid_argument);
    const PriorBase stale{&prior, 4};
    EXPECT_THROW(decode_prior(frame, &stale), std::invalid_argument);
    stats::Rng rng2(8);
    const dp::MixturePrior other_dim = make_prior(3, 5, rng2);
    const PriorBase mismatched{&other_dim, 5};
    EXPECT_THROW(decode_prior(frame, &mismatched), std::invalid_argument);
    EXPECT_FALSE(try_decode_prior(frame).has_value());
}

// -------------------------------------------------------------- negotiation

TEST(TransferNegotiation, VersionMatrix) {
    EXPECT_EQ(negotiate_wire_version(1, 1), kWireV1);
    EXPECT_EQ(negotiate_wire_version(2, 1), kWireV1);
    EXPECT_EQ(negotiate_wire_version(1, 2), kWireV1);
    EXPECT_EQ(negotiate_wire_version(2, 2), kWireV2);
    // A peer advertising a FUTURE version still speaks ours: clamp down.
    EXPECT_EQ(negotiate_wire_version(7, 2), kWireV2);
    EXPECT_EQ(negotiate_wire_version(2, 7), kWireV2);
    // A peer advertising nothing speaks nothing.
    EXPECT_THROW(negotiate_wire_version(0, 2), std::invalid_argument);
    EXPECT_THROW(negotiate_wire_version(2, 0), std::invalid_argument);
}

TEST(TransferNegotiation, V2ServerShedsV2FeaturesForV1OnlyDevice) {
    EncodingOptions prefs;
    prefs.version = kWireV2;
    prefs.quantized = true;
    prefs.quantization_bits = 8;
    prefs.delta = true;
    const EncodingOptions to_v1 = negotiated_options(prefs, kWireV1);
    EXPECT_EQ(to_v1.version, kWireV1);
    EXPECT_FALSE(to_v1.quantized);
    EXPECT_FALSE(to_v1.delta);
    const EncodingOptions to_v2 = negotiated_options(prefs, kWireV2);
    EXPECT_EQ(to_v2.version, kWireV2);
    EXPECT_TRUE(to_v2.quantized);
    EXPECT_TRUE(to_v2.delta);

    // The shed frame is plain v1 and a v1-only decoder accepts it.
    stats::Rng rng(9);
    const dp::MixturePrior prior = make_prior(3, 4, rng);
    const auto frame = encode_prior(prior, to_v1);
    EXPECT_NO_THROW(decode_prior(frame, nullptr, kWireV1));
}

TEST(TransferNegotiation, V1OnlyDecoderRejectsV2PayloadWithClearError) {
    stats::Rng rng(10);
    const dp::MixturePrior prior = make_prior(3, 4, rng);
    EncodingOptions options;
    options.version = kWireV2;
    const auto frame = encode_prior(prior, options);
    try {
        (void)decode_prior(frame, nullptr, kWireV1);
        FAIL() << "v1-only decoder accepted a v2 frame";
    } catch (const std::invalid_argument& e) {
        // The error must name both sides of the mismatch.
        const std::string message = e.what();
        EXPECT_NE(message.find("version 2"), std::string::npos) << message;
        EXPECT_NE(message.find("maximum 1"), std::string::npos) << message;
    }
    EXPECT_FALSE(try_decode_prior(frame, nullptr, kWireV1).has_value());
}

TEST(TransferNegotiation, UnknownFutureVersionRejected) {
    stats::Rng rng(11);
    const dp::MixturePrior prior = make_prior(2, 3, rng);
    auto frame = encode_prior(prior);
    const std::uint32_t future = 3;
    std::memcpy(frame.data() + 8, &future, sizeof(future));  // version field
    EXPECT_THROW(decode_prior(frame), std::invalid_argument);
}

// ---------------------------------------------------------- flags registry

TEST(TransferFlags, RegistryIsVersioned) {
    EXPECT_EQ(registered_flags(kWireV1), kFlagFloat32 | kFlagDiagonalOnly);
    EXPECT_EQ(registered_flags(kWireV2),
              kFlagFloat32 | kFlagDiagonalOnly | kFlagQuantized | kFlagDelta);
    EXPECT_THROW(registered_flags(3), std::invalid_argument);
    EXPECT_THROW(registered_flags(0), std::invalid_argument);
}

// The regression for the original flags gap: a v1 frame carrying a v2-only
// bit must be rejected, not decoded with misread geometry.
TEST(TransferFlags, V1FrameWithV2OnlyFlagRejected) {
    stats::Rng rng(12);
    const dp::MixturePrior prior = make_prior(2, 3, rng);
    auto frame = encode_prior(prior);
    std::uint32_t flags = 0;
    std::memcpy(&flags, frame.data() + 12, sizeof(flags));
    flags |= kFlagQuantized;
    std::memcpy(frame.data() + 12, &flags, sizeof(flags));
    EXPECT_THROW(decode_prior(frame), std::invalid_argument);
}

TEST(TransferFlags, UnregisteredBitRejectedOnBothVersions) {
    stats::Rng rng(13);
    const dp::MixturePrior prior = make_prior(2, 3, rng);
    for (const std::uint32_t version : {kWireV1, kWireV2}) {
        EncodingOptions options;
        options.version = version;
        auto frame = encode_prior(prior, options);
        std::uint32_t flags = 0;
        std::memcpy(&flags, frame.data() + 12, sizeof(flags));
        flags |= 1u << 7;
        std::memcpy(frame.data() + 12, &flags, sizeof(flags));
        EXPECT_THROW(decode_prior(frame), std::invalid_argument) << "v" << version;
    }
}

TEST(TransferFlags, OptionsValidationRejectsInconsistentSettings) {
    EncodingOptions v1_quantized;
    v1_quantized.quantized = true;
    EXPECT_THROW(v1_quantized.validate(), std::invalid_argument);
    EncodingOptions v1_delta;
    v1_delta.delta = true;
    EXPECT_THROW(v1_delta.validate(), std::invalid_argument);
    EncodingOptions both;
    both.version = kWireV2;
    both.quantized = true;
    both.use_float32 = true;
    EXPECT_THROW(both.validate(), std::invalid_argument);
    EncodingOptions bits;
    bits.version = kWireV2;
    bits.quantized = true;
    bits.quantization_bits = 1;
    EXPECT_THROW(bits.validate(), std::invalid_argument);
    bits.quantization_bits = 17;
    EXPECT_THROW(bits.validate(), std::invalid_argument);
    EncodingOptions bad_version;
    bad_version.version = 9;
    EXPECT_THROW(bad_version.validate(), std::invalid_argument);
}

// --------------------------------------------------- chi-square mode check

// Fixed-seed goodness-of-fit: on a fleet-bench-like multi-mode prior
// (4 modes, d = 8 — the bench_fig7_fleet population shape), samples drawn
// from the 8-bit-quantized decode must land on modes with the same
// frequencies as samples from the float32 decode. Two-sample chi-square
// over MAP mode assignments; df = 3, critical value 16.27 at p = 0.999.
TEST(TransferStatistical, EightBitQuantizationPreservesModeRecovery) {
    stats::Rng rng(14);
    const dp::MixturePrior prior = make_prior(4, 8, rng);

    EncodingOptions f32;
    f32.use_float32 = true;
    const dp::MixturePrior float32_prior = decode_prior(encode_prior(prior, f32));
    EncodingOptions q8;
    q8.version = kWireV2;
    q8.quantized = true;
    q8.quantization_bits = 8;
    const dp::MixturePrior quantized_prior = decode_prior(encode_prior(prior, q8));

    const std::size_t num_modes = prior.num_components();
    const std::size_t n = 4000;
    std::vector<double> f32_counts(num_modes, 0.0);
    std::vector<double> q8_counts(num_modes, 0.0);
    stats::Rng draw_a(15);
    stats::Rng draw_b(15);  // same stream: the priors differ, not the draws
    for (std::size_t i = 0; i < n; ++i) {
        const linalg::Vector theta_a = float32_prior.sample(draw_a);
        f32_counts[prior.map_component(theta_a)] += 1.0;
        const linalg::Vector theta_b = quantized_prior.sample(draw_b);
        q8_counts[prior.map_component(theta_b)] += 1.0;
    }
    // Two-sample chi-square with equal totals:
    //   X^2 = sum_k (a_k - b_k)^2 / (a_k + b_k).
    double statistic = 0.0;
    for (std::size_t k = 0; k < num_modes; ++k) {
        const double total = f32_counts[k] + q8_counts[k];
        ASSERT_GT(total, 0.0) << "mode " << k << " never recovered";
        const double diff = f32_counts[k] - q8_counts[k];
        statistic += diff * diff / total;
    }
    EXPECT_LT(statistic, 16.27) << "8-bit quantization shifted the mode frequencies";

    // And both recoveries match the generator weights themselves.
    for (std::size_t k = 0; k < num_modes; ++k) {
        EXPECT_NEAR(q8_counts[k] / static_cast<double>(n), prior.weights()[k], 0.05)
            << "mode " << k;
    }
    // Sanity on the fixture: the modes are far apart relative to spread,
    // so MAP assignment is essentially noiseless.
    for (std::size_t k = 0; k < num_modes; ++k) {
        EXPECT_GT(max_abs(prior.atom(k).mean()) + 1.0, 1.0);
    }
}

}  // namespace
}  // namespace drel::edgesim
