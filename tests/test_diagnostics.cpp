// Tests for prior diagnostics and incremental cloud updates.
#include <gtest/gtest.h>

#include <cmath>

#include "dp/dpmm_gibbs.hpp"
#include "dp/prior_diagnostics.hpp"
#include "stats/rng.hpp"

namespace drel::dp {
namespace {

MixturePrior tight_prior() {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({5.0, 0.0}, 0.3));
    atoms.push_back(stats::MultivariateNormal::isotropic({-5.0, 0.0}, 0.3));
    return MixturePrior({0.5, 0.5}, std::move(atoms));
}

MixturePrior shifted_prior(double shift) {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({5.0 + shift, 0.0}, 0.3));
    atoms.push_back(stats::MultivariateNormal::isotropic({-5.0 + shift, 0.0}, 0.3));
    return MixturePrior({0.5, 0.5}, std::move(atoms));
}

// -------------------------------------------------------------- diagnostics

TEST(PriorDiagnostics, HeldoutScoreRanksMatchingPriorHigher) {
    stats::Rng rng(1);
    const MixturePrior good = tight_prior();
    const MixturePrior bad = shifted_prior(4.0);
    std::vector<linalg::Vector> heldout;
    for (int i = 0; i < 50; ++i) heldout.push_back(good.sample(rng));
    EXPECT_GT(heldout_log_score(good, heldout), heldout_log_score(bad, heldout) + 1.0);
    EXPECT_THROW(heldout_log_score(good, {}), std::invalid_argument);
}

TEST(PriorDiagnostics, EffectiveComponentsBounds) {
    EXPECT_NEAR(effective_components(tight_prior()), 2.0, 1e-9);
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({0.0}, 1.0));
    atoms.push_back(stats::MultivariateNormal::isotropic({1.0}, 1.0));
    const MixturePrior skewed({0.999, 0.001}, std::move(atoms));
    EXPECT_LT(effective_components(skewed), 1.05);
}

TEST(PriorDiagnostics, SymmetricKlZeroForIdenticalGrowsWithShift) {
    stats::Rng rng(2);
    const MixturePrior p = tight_prior();
    const double self = symmetric_kl_estimate(p, tight_prior(), 400, rng);
    EXPECT_NEAR(self, 0.0, 0.05);
    const double small = symmetric_kl_estimate(p, shifted_prior(0.5), 400, rng);
    const double large = symmetric_kl_estimate(p, shifted_prior(2.0), 400, rng);
    EXPECT_GT(small, self);
    EXPECT_GT(large, small);
}

TEST(PriorDiagnostics, MapSharesSumToOneAndFindDeadAtoms) {
    stats::Rng rng(3);
    const MixturePrior p = tight_prior();
    // All samples near the first atom only.
    std::vector<linalg::Vector> thetas;
    for (int i = 0; i < 40; ++i) {
        thetas.push_back({5.0 + 0.1 * rng.normal(), 0.1 * rng.normal()});
    }
    const linalg::Vector shares = map_component_shares(p, thetas);
    EXPECT_NEAR(linalg::sum(shares), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(shares[0], 1.0);
    EXPECT_DOUBLE_EQ(shares[1], 0.0);
}

// ------------------------------------------------------- incremental Gibbs

DpmmConfig incremental_config() {
    DpmmConfig config;
    config.alpha = 1.0;
    config.base_mean = {0.0, 0.0};
    config.base_covariance = linalg::Matrix::identity(2) * 25.0;
    config.within_covariance = linalg::Matrix::identity(2) * 0.25;
    config.num_sweeps = 50;
    return config;
}

TEST(IncrementalGibbs, NewObservationJoinsItsCluster) {
    stats::Rng rng(4);
    std::vector<linalg::Vector> obs;
    for (int i = 0; i < 15; ++i) obs.push_back({6.0 + 0.3 * rng.normal(), 0.3 * rng.normal()});
    for (int i = 0; i < 15; ++i) obs.push_back({-6.0 + 0.3 * rng.normal(), 0.3 * rng.normal()});
    DpmmGibbs sampler(obs, incremental_config());
    sampler.run(rng);
    ASSERT_EQ(sampler.num_clusters(), 2u);

    // A clearly right-cluster point must land with the right-cluster members.
    sampler.add_observation({6.1, 0.1}, rng, 0);
    EXPECT_EQ(sampler.assignments().back(), sampler.assignments()[0]);
    EXPECT_EQ(sampler.num_observations(), 31u);
    EXPECT_EQ(sampler.num_clusters(), 2u);
}

TEST(IncrementalGibbs, NovelDeviceTypeSpawnsNewCluster) {
    stats::Rng rng(5);
    std::vector<linalg::Vector> obs;
    for (int i = 0; i < 20; ++i) obs.push_back({6.0 + 0.3 * rng.normal(), 0.3 * rng.normal()});
    DpmmGibbs sampler(obs, incremental_config());
    sampler.run(rng);
    ASSERT_EQ(sampler.num_clusters(), 1u);
    // Far-away arrivals should open a second cluster within a few updates.
    for (int i = 0; i < 5; ++i) {
        sampler.add_observation({-8.0 + 0.2 * rng.normal(), 0.2 * rng.normal()}, rng, 2);
    }
    EXPECT_GE(sampler.num_clusters(), 2u);
}

TEST(IncrementalGibbs, IncrementalPriorTracksBatchRefit) {
    stats::Rng rng(6);
    std::vector<linalg::Vector> initial;
    for (int i = 0; i < 12; ++i) {
        initial.push_back({6.0 + 0.3 * rng.normal(), 0.3 * rng.normal()});
    }
    std::vector<linalg::Vector> arrivals;
    for (int i = 0; i < 12; ++i) {
        arrivals.push_back({-6.0 + 0.3 * rng.normal(), 0.3 * rng.normal()});
    }

    // Incremental path.
    stats::Rng inc_rng(7);
    DpmmGibbs incremental(initial, incremental_config());
    incremental.run(inc_rng);
    for (const auto& theta : arrivals) incremental.add_observation(theta, inc_rng, 3);
    const MixturePrior inc_prior = incremental.extract_prior(false);

    // Batch path on the union.
    std::vector<linalg::Vector> all = initial;
    all.insert(all.end(), arrivals.begin(), arrivals.end());
    stats::Rng batch_rng(8);
    DpmmGibbs batch(all, incremental_config());
    batch.run(batch_rng);
    const MixturePrior batch_prior = batch.extract_prior(false);

    ASSERT_EQ(inc_prior.num_components(), batch_prior.num_components());
    // Densities agree at the cluster centers.
    const std::vector<linalg::Vector> probes = {{6.0, 0.0}, {-6.0, 0.0}};
    for (const linalg::Vector& probe : probes) {
        EXPECT_NEAR(inc_prior.log_pdf(probe), batch_prior.log_pdf(probe), 0.5);
    }
}

TEST(IncrementalGibbs, Validation) {
    stats::Rng rng(9);
    DpmmGibbs sampler({{1.0, 2.0}}, incremental_config());
    EXPECT_THROW(sampler.add_observation({1.0}, rng), std::invalid_argument);
    EXPECT_THROW(sampler.add_observation({1.0, 2.0}, rng, -1), std::invalid_argument);
}

}  // namespace
}  // namespace drel::dp
