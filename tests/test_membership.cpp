// Liveness & churn suite for the membership layer (edgesim/membership.hpp)
// and its integration into the event-driven fleet engine.
//
// The contract under test: churn decisions are pure functions of
// (plan seed, round, device) and monotone in the rate; the membership state
// machine only ever takes legal transitions; Dead slots are SKIPPED without
// renumbering; a rejoining device RESUMES — scored, with a stale-prior
// DegradedReason — rather than erroring; and a churn run's telemetry is
// bit-identical at any thread or shard count. A zero-churn plan must leave
// the engine's reports byte-identical to a run with no plan at all.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "edgesim/faults.hpp"
#include "edgesim/membership.hpp"
#include "edgesim/scheduler.hpp"
#include "edgesim/server.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::edgesim {
namespace {

using test_support::bits_equal;

// ------------------------------------------------------------ config layer

TEST(LivenessNames, AreStableLowercase) {
    EXPECT_STREQ(to_string(LivenessState::kUnknown), "unknown");
    EXPECT_STREQ(to_string(LivenessState::kJoining), "joining");
    EXPECT_STREQ(to_string(LivenessState::kAlive), "alive");
    EXPECT_STREQ(to_string(LivenessState::kSuspect), "suspect");
    EXPECT_STREQ(to_string(LivenessState::kDead), "dead");
    // The membership event kinds ride the same stable-name contract (the
    // flight recorder serializes them).
    EXPECT_STREQ(to_string(EventKind::kHeartbeatDeadline), "heartbeat_deadline");
    EXPECT_STREQ(to_string(EventKind::kDeviceJoin), "device_join");
    EXPECT_STREQ(to_string(EventKind::kDeviceRejoin), "device_rejoin");
    EXPECT_STREQ(to_string(DegradedReason::kRejoinStalePrior), "rejoin_stale_prior");
}

TEST(ChurnConfigTest, ValidationRejectsNonProbabilities) {
    ChurnConfig config;
    EXPECT_NO_THROW(config.validate());
    EXPECT_FALSE(config.any());

    config.join_prob = 1.5;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = ChurnConfig{};
    config.leave_prob = -0.1;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = ChurnConfig{};
    config.heartbeat_loss_prob = 2.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config = ChurnConfig{};
    config.rejoin_prob = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ChurnConfigTest, UniformClampsAndSetsEveryRate) {
    const ChurnConfig config = ChurnConfig::uniform(1.7);
    EXPECT_EQ(config.join_prob, 1.0);
    EXPECT_EQ(config.leave_prob, 1.0);
    EXPECT_EQ(config.heartbeat_loss_prob, 1.0);
    EXPECT_EQ(config.rejoin_prob, 1.0);
    EXPECT_TRUE(config.any());
    EXPECT_FALSE(ChurnConfig::uniform(-0.5).any());
}

TEST(MembershipConfigTest, EnabledAndEffectiveMembers) {
    MembershipConfig config;
    EXPECT_FALSE(config.enabled(40));
    EXPECT_EQ(config.effective_initial_members(40), 40u);

    config.initial_members = 30;
    EXPECT_TRUE(config.enabled(40));        // reserved tail
    EXPECT_FALSE(config.enabled(30));       // tail is empty: nothing to join
    EXPECT_EQ(config.effective_initial_members(40), 30u);
    EXPECT_EQ(config.effective_initial_members(20), 20u);  // clamped

    config = MembershipConfig{};
    config.churn = ChurnConfig::uniform(0.1);
    EXPECT_TRUE(config.enabled(40));
}

TEST(MembershipConfigTest, TimingValidationRejectsBadOffsets) {
    MembershipConfig config;
    EXPECT_NO_THROW(config.validate_timing(60.0));
    config.suspect_rounds_to_dead = 0;
    EXPECT_THROW(config.validate_timing(60.0), std::invalid_argument);
    config = MembershipConfig{};
    config.heartbeat_seconds = 61.0;  // past the round boundary
    EXPECT_THROW(config.validate_timing(60.0), std::invalid_argument);
    config = MembershipConfig{};
    config.join_seconds = 50.0;  // after the heartbeat deadline
    EXPECT_THROW(config.validate_timing(60.0), std::invalid_argument);
    // A DISABLED config never constrains the round length...
    config = MembershipConfig{};
    config.heartbeat_seconds = 1e6;
    EXPECT_NO_THROW(config.validate(40, 60.0));
    // ...but enabling churn makes the same offsets fatal.
    config.churn = ChurnConfig::uniform(0.1);
    EXPECT_THROW(config.validate(40, 60.0), std::invalid_argument);
}

// ------------------------------------------------------------- churn plan

TEST(ChurnPlanTest, InactiveByDefaultAndWhenAllRatesZero) {
    const ChurnPlan inactive;
    EXPECT_FALSE(inactive.active());
    const DeviceChurnDecision d = inactive.device_churn(3, 7);
    EXPECT_FALSE(d.join || d.leave || d.heartbeat_lost || d.rejoin);

    stats::Rng rng(5);
    const ChurnPlan zeros(ChurnConfig{}, rng);
    EXPECT_FALSE(zeros.active());
    const DeviceChurnDecision z = zeros.device_churn(0, 0);
    EXPECT_FALSE(z.join || z.leave || z.heartbeat_lost || z.rejoin);
}

TEST(ChurnPlanTest, DecisionsArePureFunctionsOfTheCell) {
    stats::Rng rng(11);
    const ChurnPlan plan(ChurnConfig::uniform(0.4), rng);
    const ChurnPlan twin(ChurnConfig::uniform(0.4), rng);

    // Any query order, any repetition: the same cell always answers the same.
    const DeviceChurnDecision first = plan.device_churn(2, 5);
    (void)plan.device_churn(9, 0);
    (void)plan.device_churn(0, 63);
    const DeviceChurnDecision again = plan.device_churn(2, 5);
    EXPECT_EQ(first.join, again.join);
    EXPECT_EQ(first.leave, again.leave);
    EXPECT_EQ(first.heartbeat_lost, again.heartbeat_lost);
    EXPECT_EQ(first.rejoin, again.rejoin);

    // A twin plan built from the same base stream agrees everywhere...
    for (std::size_t round = 0; round < 4; ++round) {
        for (std::size_t device = 0; device < 32; ++device) {
            const DeviceChurnDecision a = plan.device_churn(round, device);
            const DeviceChurnDecision b = twin.device_churn(round, device);
            EXPECT_EQ(a.join, b.join);
            EXPECT_EQ(a.leave, b.leave);
            EXPECT_EQ(a.heartbeat_lost, b.heartbeat_lost);
            EXPECT_EQ(a.rejoin, b.rejoin);
        }
    }

    // ...while a different plan seed draws a different pattern.
    ChurnConfig reseeded = ChurnConfig::uniform(0.4);
    reseeded.seed = 99;
    const ChurnPlan other(reseeded, rng);
    bool any_difference = false;
    for (std::size_t device = 0; device < 128 && !any_difference; ++device) {
        const DeviceChurnDecision a = plan.device_churn(0, device);
        const DeviceChurnDecision b = other.device_churn(0, device);
        any_difference = a.join != b.join || a.leave != b.leave ||
                         a.heartbeat_lost != b.heartbeat_lost || a.rejoin != b.rejoin;
    }
    EXPECT_TRUE(any_difference);
}

TEST(ChurnPlanTest, StreamIsIndependentOfTheFaultPlan) {
    // Churn and faults fork DIFFERENT tags off the same base: enabling one
    // must not change what the other draws. The twin-plan check above pins
    // the value; here we pin the independence.
    stats::Rng rng(17);
    const FaultPlan faults_alone(FaultConfig::uniform(0.3), rng);
    const ChurnPlan churn(ChurnConfig::uniform(0.3), rng);
    const FaultPlan faults_again(FaultConfig::uniform(0.3), rng);
    for (std::size_t device = 0; device < 16; ++device) {
        const DeviceFaultDecision a = faults_alone.device_faults(1, device);
        const DeviceFaultDecision b = faults_again.device_faults(1, device);
        EXPECT_EQ(a.crash, b.crash);
        EXPECT_EQ(a.straggler, b.straggler);
        EXPECT_EQ(a.link_outage, b.link_outage);
    }
    (void)churn;
}

// ------------------------------------------------------- state machine

/// Replays the engine's per-round query pattern against a table:
/// begin_round, then join/rejoin admissions in device order, then the
/// heartbeat deadline.
void drive_round(MembershipTable& table, std::size_t round, const ChurnPlan& plan) {
    table.begin_round();
    for (std::size_t j = 0; j < table.capacity(); ++j) {
        const LivenessState st = table.state(j);
        if (st == LivenessState::kUnknown) {
            if (plan.device_churn(round, j).join) table.apply_join(j);
        } else if (st == LivenessState::kDead) {
            if (plan.device_churn(round, j).rejoin) table.apply_rejoin(j);
        }
    }
    table.heartbeat_deadline(round, plan);
}

TEST(MembershipTableTest, BootsInitialMembersAliveAndTailUnknown) {
    const MembershipTable table(10, 6, 2);
    EXPECT_EQ(table.capacity(), 10u);
    EXPECT_EQ(table.alive_count(), 6u);
    EXPECT_EQ(table.prior_version(), 1u);  // the bootstrap broadcast
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(table.state(j), LivenessState::kAlive);
    for (std::size_t j = 6; j < 10; ++j) {
        EXPECT_EQ(table.state(j), LivenessState::kUnknown);
    }
    const MembershipCounts counts = table.counts();
    EXPECT_EQ(counts.alive, 6u);
    EXPECT_EQ(counts.unknown, 4u);
    EXPECT_EQ(counts.churn_events(), 0u);
}

TEST(MembershipTableTest, LeaveKillsOutright) {
    stats::Rng rng(3);
    ChurnConfig config;
    config.leave_prob = 1.0;
    const ChurnPlan everyone_leaves(config, rng);

    MembershipTable table(8, 8, 2);
    table.begin_round();
    EXPECT_EQ(table.participation().size(), 8u);
    for (const std::uint8_t p : table.participation()) EXPECT_EQ(p, 1);
    table.heartbeat_deadline(0, everyone_leaves);

    EXPECT_EQ(table.alive_count(), 0u);
    const MembershipCounts counts = table.counts();
    EXPECT_EQ(counts.dead, 8u);
    EXPECT_EQ(counts.leaves, 8u);
    EXPECT_EQ(counts.deaths, 8u);
    EXPECT_EQ(counts.heartbeats_missed, 0u);
    // The participation snapshot is from the round START: the departed
    // devices still ran this round and are only skipped from the NEXT one.
    table.begin_round();
    for (const std::uint8_t p : table.participation()) EXPECT_EQ(p, 0);
}

TEST(MembershipTableTest, MissedHeartbeatsSuspectThenKill) {
    stats::Rng rng(3);
    ChurnConfig config;
    config.heartbeat_loss_prob = 1.0;
    const ChurnPlan silent(config, rng);

    MembershipTable table(4, 4, /*suspect_rounds_to_dead=*/3);
    // Round 0: first miss suspects, nobody dies.
    drive_round(table, 0, silent);
    MembershipCounts counts = table.counts();
    EXPECT_EQ(counts.suspect, 4u);
    EXPECT_EQ(counts.deaths, 0u);
    EXPECT_EQ(counts.heartbeats_missed, 4u);
    // Suspect devices still participate next round.
    drive_round(table, 1, silent);
    counts = table.counts();
    EXPECT_EQ(counts.suspect, 4u);
    EXPECT_EQ(counts.deaths, 0u);
    // Round 2: the third consecutive miss crosses the threshold.
    drive_round(table, 2, silent);
    counts = table.counts();
    EXPECT_EQ(counts.dead, 4u);
    EXPECT_EQ(counts.deaths, 4u);
    EXPECT_EQ(counts.heartbeats_missed, 4u);
}

TEST(MembershipTableTest, HeartbeatRecoveryResyncsThePrior) {
    stats::Rng rng(3);
    ChurnConfig config;
    config.heartbeat_loss_prob = 1.0;
    const ChurnPlan silent(config, rng);
    const ChurnPlan healthy;  // inactive: every heartbeat arrives

    MembershipTable table(4, 4, /*suspect_rounds_to_dead=*/3);
    drive_round(table, 0, silent);
    EXPECT_EQ(table.counts().suspect, 4u);
    // A broadcast goes out while the devices are Suspect: they miss it.
    table.record_broadcast();
    EXPECT_EQ(table.prior_version(), 2u);
    // The next heartbeat arrives: recovery, miss counter reset, prior
    // re-synced by the heartbeat response itself.
    drive_round(table, 1, healthy);
    const MembershipCounts counts = table.counts();
    EXPECT_EQ(counts.alive, 4u);
    EXPECT_EQ(counts.recoveries, 4u);
    // Because recovery re-synced the prior, the NEXT round must not flag
    // anyone stale — only a Dead spell can surface staleness.
    drive_round(table, 2, healthy);
    EXPECT_EQ(table.counts().rejoins_stale, 0u);
    // And the miss counter really did reset: three more silent rounds are
    // needed to kill, not one.
    drive_round(table, 3, silent);
    drive_round(table, 4, silent);
    EXPECT_EQ(table.counts().dead, 0u);
    drive_round(table, 5, silent);
    EXPECT_EQ(table.counts().dead, 4u);
}

TEST(MembershipTableTest, JoinAdmitsReservedTailAtNextRoundStart) {
    MembershipTable table(6, 4, 2);
    table.apply_join(4);
    table.apply_join(5);
    table.apply_join(0);  // Alive: no-op
    MembershipCounts counts = table.counts();
    EXPECT_EQ(counts.joining, 2u);
    EXPECT_EQ(counts.joins, 2u);
    EXPECT_EQ(table.state(4), LivenessState::kJoining);
    EXPECT_EQ(table.state(0), LivenessState::kAlive);
    // Joining slots do NOT participate until promoted.
    EXPECT_EQ(table.alive_count(), 4u);

    table.begin_round();
    EXPECT_EQ(table.alive_count(), 6u);
    // A fresh join never resumes stale — it had no prior to outdate.
    EXPECT_FALSE(table.resumed_stale(4));
    EXPECT_FALSE(table.resumed_stale(5));
    EXPECT_EQ(table.counts().rejoins_stale, 0u);
}

TEST(MembershipTableTest, RejoinAfterMissedBroadcastResumesStale) {
    stats::Rng rng(3);
    ChurnConfig config;
    config.leave_prob = 1.0;
    const ChurnPlan everyone_leaves(config, rng);

    MembershipTable table(2, 2, 2);
    drive_round(table, 0, everyone_leaves);
    ASSERT_EQ(table.counts().dead, 2u);
    // Device 0 rejoins BEFORE any new broadcast: nothing to be stale about.
    table.apply_rejoin(0);
    // A broadcast goes out while device 1 is still Dead...
    table.record_broadcast();
    table.apply_rejoin(1);
    table.begin_round();
    // Device 0 rejoined BEFORE the broadcast but is promoted AFTER it, so
    // its stored version-1 prior is outdated all the same: staleness is
    // judged at promotion time, not admission time. Both resume stale.
    EXPECT_TRUE(table.resumed_stale(0));
    EXPECT_TRUE(table.resumed_stale(1));
    const MembershipCounts counts = table.counts();
    EXPECT_EQ(counts.alive, 2u);
    EXPECT_EQ(counts.rejoins_stale, 2u);
    // Promotion handed both the latest prior: a second round is clean.
    table.begin_round();
    EXPECT_FALSE(table.resumed_stale(0));
    EXPECT_EQ(table.counts().rejoins_stale, 0u);
}

TEST(MembershipTableTest, RejoinWithoutMissedBroadcastIsNotStale) {
    stats::Rng rng(3);
    ChurnConfig config;
    config.leave_prob = 1.0;
    const ChurnPlan everyone_leaves(config, rng);

    MembershipTable table(1, 1, 2);
    drive_round(table, 0, everyone_leaves);
    ASSERT_EQ(table.state(0), LivenessState::kDead);
    table.apply_rejoin(0);
    table.begin_round();  // no broadcast happened while Dead
    EXPECT_EQ(table.state(0), LivenessState::kAlive);
    EXPECT_FALSE(table.resumed_stale(0));
    EXPECT_EQ(table.counts().rejoins, 0u);  // counters reset by begin_round
}

TEST(MembershipTableTest, OnlyLegalTransitionsUnderRandomChurn) {
    // Property check: drive the table through heavy mixed churn and verify
    // every per-device transition is an edge of the state diagram, and the
    // census always sums to capacity.
    stats::Rng rng(21);
    const ChurnPlan plan(ChurnConfig::uniform(0.35), rng);
    constexpr std::size_t kCapacity = 48;
    MembershipTable table(kCapacity, 32, 2);

    std::vector<LivenessState> prev(kCapacity);
    for (std::size_t j = 0; j < kCapacity; ++j) prev[j] = table.state(j);

    const auto legal = [](LivenessState from, LivenessState to) {
        if (from == to) return true;
        switch (from) {
            case LivenessState::kUnknown: return to == LivenessState::kJoining;
            case LivenessState::kJoining: return to == LivenessState::kAlive;
            case LivenessState::kAlive:
                return to == LivenessState::kSuspect || to == LivenessState::kDead;
            case LivenessState::kSuspect:
                return to == LivenessState::kAlive || to == LivenessState::kDead;
            case LivenessState::kDead: return to == LivenessState::kJoining;
        }
        return false;
    };

    std::size_t total_churn = 0;
    for (std::size_t round = 0; round < 24; ++round) {
        // Check after each PHASE of the round — promotion, admissions, and
        // the heartbeat fold each take only legal steps.
        table.begin_round();
        for (std::size_t j = 0; j < kCapacity; ++j) {
            ASSERT_TRUE(legal(prev[j], table.state(j)))
                << "round " << round << " device " << j << ": "
                << to_string(prev[j]) << " -> " << to_string(table.state(j));
            prev[j] = table.state(j);
        }
        for (std::size_t j = 0; j < kCapacity; ++j) {
            const LivenessState st = table.state(j);
            if (st == LivenessState::kUnknown) {
                if (plan.device_churn(round, j).join) table.apply_join(j);
            } else if (st == LivenessState::kDead) {
                if (plan.device_churn(round, j).rejoin) table.apply_rejoin(j);
            }
        }
        table.heartbeat_deadline(round, plan);
        const MembershipCounts counts = table.counts();
        EXPECT_EQ(counts.alive + counts.suspect + counts.dead + counts.joining +
                      counts.unknown,
                  kCapacity);
        for (std::size_t j = 0; j < kCapacity; ++j) {
            ASSERT_TRUE(legal(prev[j], table.state(j)))
                << "round " << round << " device " << j << ": "
                << to_string(prev[j]) << " -> " << to_string(table.state(j));
            prev[j] = table.state(j);
        }
        total_churn += counts.churn_events();
    }
    // At a 35% uniform rate over 24 rounds the run must actually churn.
    EXPECT_GT(total_churn, 100u);
}

// --------------------------------------------------- engine integration

DeviceResult cheap_work(stats::Rng& work_rng, std::size_t theta_dim) {
    DeviceResult result;
    result.accuracy = work_rng.uniform();
    result.scored = true;
    result.attempted_upload = true;
    result.upload_attempts = 1;
    result.upload_delivered = true;
    result.theta = work_rng.standard_normal_vector(theta_dim);
    return result;
}

EngineConfig small_engine_config() {
    EngineConfig config;
    config.rounds = 5;
    config.devices_per_round = 40;
    config.theta_dim = 3;
    config.num_shards = 4;
    config.num_threads = 1;
    return config;
}

/// run_small_engine from test_engine.cpp, extended with an optional churn
/// plan built from the same root the fault plan forks off.
EngineReport run_churn_engine(EngineConfig config, const ChurnConfig& churn_config,
                              bool pass_plan = true) {
    const stats::Rng root(99);
    const stats::Rng device_root = root.fork(4);
    const FaultPlan plan(FaultConfig{}, root);
    const ChurnPlan churn(churn_config, root);
    const std::size_t dim = config.theta_dim;
    const DeviceWork work = [dim](std::size_t /*round*/, std::size_t /*device*/,
                                  stats::Rng& work_rng, util::Workspace& /*ws*/) {
        return cheap_work(work_rng, dim);
    };
    const RoundEndFn round_end = [](std::size_t /*round*/, CloudServer& server) {
        (void)server.take_serviced_thetas();
        RoundEndDecision decision;
        decision.rebroadcast = true;  // every round: maximal staleness signal
        decision.payload_bytes = 64;
        decision.prior_components = 2;
        return decision;
    };
    return run_fleet_engine(config, device_root, plan, work, round_end,
                            /*batch_score=*/nullptr, pass_plan ? &churn : nullptr);
}

/// The partition-independent byte surface: telemetry + default-SLO report.
std::string telemetry_fingerprint(const EngineReport& report) {
    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), report.telemetry);
    return report.telemetry.to_json(&slo, /*include_partition=*/false).dump(0);
}

TEST(MembershipEngine, ZeroChurnPlanIsAByteLevelNoOp) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    const EngineConfig config = small_engine_config();
    const EngineReport without = run_churn_engine(config, ChurnConfig{},
                                                  /*pass_plan=*/false);
    const EngineReport with = run_churn_engine(config, ChurnConfig{});
    // An inactive plan keeps membership OFF: no membership rows, no extra
    // SLO rules, and the whole telemetry surface byte-identical.
    EXPECT_EQ(with.telemetry.membership.num_rows(), 0u);
    EXPECT_EQ(telemetry_fingerprint(with), telemetry_fingerprint(without));
    EXPECT_EQ(with.total_broadcast_bytes, without.total_broadcast_bytes);
    EXPECT_EQ(with.total_upload_bytes, without.total_upload_bytes);
    EXPECT_TRUE(bits_equal(with.virtual_seconds, without.virtual_seconds));
    ASSERT_EQ(with.rounds.size(), without.rounds.size());
    for (std::size_t r = 0; r < with.rounds.size(); ++r) {
        EXPECT_TRUE(bits_equal(with.rounds[r].mean_accuracy,
                               without.rounds[r].mean_accuracy));
        EXPECT_EQ(with.rounds[r].devices_scored, without.rounds[r].devices_scored);
    }
    // The default SLO list stays historical: 4 rules, no membership pair.
    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), with.telemetry);
    EXPECT_EQ(slo.rules.size(), 4u);
    for (const health::SloResult& rule : slo.rules) {
        EXPECT_NE(rule.name, "suspect_fraction");
        EXPECT_NE(rule.name, "mass_extinction_guard");
    }
}

TEST(MembershipEngine, ChurnRunIsBitIdenticalAcrossThreadAndShardCounts) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    const ChurnConfig churn = ChurnConfig::uniform(0.25);
    EngineConfig config = small_engine_config();
    config.membership.initial_members = 32;  // reserve a tail for joins
    const EngineReport baseline = run_churn_engine(config, churn);
    ASSERT_EQ(baseline.telemetry.membership.num_rows(), 5u);
    EXPECT_GT(baseline.telemetry.membership.column_max(
                  health::idx(health::MembershipCol::kChurnEvents)),
              0u);
    const std::string expected = telemetry_fingerprint(baseline);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        EngineConfig variant = config;
        variant.num_threads = threads;
        EXPECT_EQ(telemetry_fingerprint(run_churn_engine(variant, churn)), expected)
            << "threads=" << threads;
    }
    for (const std::size_t shards : {1u, 3u, 8u, 40u}) {
        EngineConfig variant = config;
        variant.num_shards = shards;
        variant.num_threads = 2;
        EXPECT_EQ(telemetry_fingerprint(run_churn_engine(variant, churn)), expected)
            << "shards=" << shards;
    }
}

TEST(MembershipEngine, DeadSlotsAreSkippedWithoutRenumbering) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    using health::MembershipCol;
    using health::idx;
    ChurnConfig churn;
    churn.leave_prob = 0.3;  // departures only: no suspects, no rejoins
    const EngineReport report = run_churn_engine(small_engine_config(), churn);
    const obs::RoundSeries& members = report.telemetry.membership;
    ASSERT_EQ(members.num_rows(), report.rounds.size());

    bool saw_skip = false;
    for (std::size_t r = 0; r < report.rounds.size(); ++r) {
        // The census partitions the fixed index space — no renumbering.
        EXPECT_EQ(members.at(r, idx(MembershipCol::kCapacity)), 40u);
        EXPECT_EQ(members.at(r, idx(MembershipCol::kAlive)) +
                      members.at(r, idx(MembershipCol::kSuspect)) +
                      members.at(r, idx(MembershipCol::kDead)) +
                      members.at(r, idx(MembershipCol::kJoining)) +
                      members.at(r, idx(MembershipCol::kUnknown)),
                  40u);
        // Fault-free run: exactly the participating slots score; a Dead
        // slot is unscored but NOT a failure.
        const std::uint64_t participating =
            members.at(r, idx(MembershipCol::kParticipating));
        EXPECT_EQ(report.rounds[r].devices_scored, participating);
        if (participating < 40u) saw_skip = true;
        for (const DegradedReason reason : report.rounds[r].device_degraded) {
            EXPECT_EQ(reason, DegradedReason::kNone);
        }
    }
    EXPECT_TRUE(saw_skip) << "churn never removed a device; rate too low?";
    // Departures shrink the broadcast audience: the last rebroadcast must
    // charge fewer bytes than a full-fleet push.
    EXPECT_LT(report.rounds[report.rounds.size() - 2].broadcast_bytes, 64u * 40u);
}

TEST(MembershipEngine, RejoinResumesScoredWithStalePriorReason) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    using health::MembershipCol;
    using health::idx;
    ChurnConfig churn;
    churn.leave_prob = 0.5;
    churn.rejoin_prob = 0.9;
    EngineConfig config = small_engine_config();
    config.rounds = 6;
    const EngineReport report = run_churn_engine(config, churn);
    const obs::RoundSeries& members = report.telemetry.membership;
    ASSERT_EQ(members.num_rows(), 6u);

    // The round_end policy rebroadcasts every round, so any device that
    // dies and later rejoins provably missed a prior push.
    std::uint64_t series_stale = 0;
    std::size_t flagged = 0;
    std::size_t flagged_and_scored_rounds = 0;
    for (std::size_t r = 0; r < report.rounds.size(); ++r) {
        series_stale += members.at(r, idx(MembershipCol::kRejoinsStale));
        std::size_t in_round = 0;
        for (const DegradedReason reason : report.rounds[r].device_degraded) {
            if (reason == DegradedReason::kRejoinStalePrior) ++in_round;
        }
        flagged += in_round;
        // Graceful resume: the flagged devices still SCORED — the round's
        // scored count covers every participating slot, stale or not.
        if (in_round > 0) {
            ++flagged_and_scored_rounds;
            EXPECT_EQ(report.rounds[r].devices_scored,
                      members.at(r, idx(MembershipCol::kParticipating)));
        }
    }
    EXPECT_GT(series_stale, 0u) << "no rejoin ever missed a broadcast";
    EXPECT_EQ(flagged, series_stale)
        << "per-device reasons disagree with the membership series";
    EXPECT_GT(flagged_and_scored_rounds, 0u);
    EXPECT_GT(members.column_max(idx(MembershipCol::kRejoins)), 0u);
}

TEST(MembershipEngine, JoinsFillTheReservedTail) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    using health::MembershipCol;
    using health::idx;
    ChurnConfig churn;
    churn.join_prob = 1.0;  // every reserved slot announces itself round 0
    EngineConfig config = small_engine_config();
    config.membership.initial_members = 25;
    const EngineReport report = run_churn_engine(config, churn);
    const obs::RoundSeries& members = report.telemetry.membership;
    ASSERT_GE(members.num_rows(), 2u);

    // Round 0: the 25 founders run; all 15 reserved slots join mid-round.
    EXPECT_EQ(members.at(0, idx(MembershipCol::kParticipating)), 25u);
    EXPECT_EQ(members.at(0, idx(MembershipCol::kJoins)), 15u);
    EXPECT_EQ(members.at(0, idx(MembershipCol::kJoining)), 15u);
    EXPECT_EQ(report.rounds[0].devices_scored, 25u);
    // Round 1: the tail is promoted and runs — the whole index space.
    EXPECT_EQ(members.at(1, idx(MembershipCol::kParticipating)), 40u);
    EXPECT_EQ(members.at(1, idx(MembershipCol::kAlive)), 40u);
    EXPECT_EQ(members.at(1, idx(MembershipCol::kUnknown)), 0u);
    EXPECT_EQ(report.rounds[1].devices_scored, 40u);
    // Round 0 charged the initial broadcast to the FOUNDERS only.
    EXPECT_EQ(members.at(0, idx(MembershipCol::kCapacity)), 40u);
}

TEST(MembershipEngine, ReservedTailAloneEngagesMembershipWithoutChurn) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    using health::MembershipCol;
    using health::idx;
    // initial_members < capacity engages the machinery even with a null
    // churn plan: the tail just never joins (nobody tells it to).
    EngineConfig config = small_engine_config();
    config.membership.initial_members = 30;
    const EngineReport report = run_churn_engine(config, ChurnConfig{},
                                                 /*pass_plan=*/false);
    const obs::RoundSeries& members = report.telemetry.membership;
    ASSERT_EQ(members.num_rows(), report.rounds.size());
    for (std::size_t r = 0; r < report.rounds.size(); ++r) {
        EXPECT_EQ(members.at(r, idx(MembershipCol::kParticipating)), 30u);
        EXPECT_EQ(members.at(r, idx(MembershipCol::kUnknown)), 10u);
        EXPECT_EQ(members.at(r, idx(MembershipCol::kJoins)), 0u);
        EXPECT_EQ(report.rounds[r].devices_scored, 30u);
    }
}

TEST(MembershipEngine, MembershipSloRulesJudgeOnlyChurnRuns) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    const EngineReport report =
        run_churn_engine(small_engine_config(), ChurnConfig::uniform(0.2));
    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), report.telemetry);
    ASSERT_EQ(slo.rules.size(), 6u);
    bool saw_suspect = false;
    bool saw_extinction = false;
    for (const health::SloResult& rule : slo.rules) {
        saw_suspect = saw_suspect || rule.name == "suspect_fraction";
        saw_extinction = saw_extinction || rule.name == "mass_extinction_guard";
    }
    EXPECT_TRUE(saw_suspect);
    EXPECT_TRUE(saw_extinction);
}

TEST(MembershipEngine, ReportsThePeakEventQueueDepth) {
    const EngineReport report =
        run_churn_engine(small_engine_config(), ChurnConfig::uniform(0.25));
    // Round start + heartbeat + round end coexist at minimum; churn adds
    // join/rejoin admissions on top.
    EXPECT_GE(report.max_event_queue_depth, 2u);
    EXPECT_GT(report.events_processed, 0u);
}

TEST(MembershipEngine, BadHeartbeatTimingIsRejectedOnlyWhenEngaged) {
    EngineConfig config = small_engine_config();
    config.membership.heartbeat_seconds = config.round_seconds + 1.0;
    // Disabled membership: the offset is inert, the run is legal.
    EXPECT_NO_THROW(run_churn_engine(config, ChurnConfig{}, /*pass_plan=*/false));
    // An active plan engages membership and must re-validate the timing.
    EXPECT_THROW(run_churn_engine(config, ChurnConfig::uniform(0.2)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace drel::edgesim
