// Randomized robustness ("fuzz-ish") tests: hostile bytes and malformed
// text must produce exceptions, never crashes, hangs, or silent garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "data/csv_io.hpp"
#include "edgesim/transfer.hpp"
#include "linalg/reference.hpp"
#include "stats/alias_table.hpp"
#include "stats/rng.hpp"
#include "stats/weighted_reservoir.hpp"

namespace drel {
namespace {

dp::MixturePrior fuzz_prior() {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({1.0, 2.0, 3.0}, 0.5));
    atoms.push_back(stats::MultivariateNormal::isotropic({-1.0, 0.0, 1.0}, 1.5));
    return dp::MixturePrior({0.4, 0.6}, std::move(atoms));
}

TEST(FuzzDecode, RandomBuffersNeverCrash) {
    stats::Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> buffer(rng.uniform_index(200));
        for (auto& b : buffer) b = static_cast<std::uint8_t>(rng.uniform_index(256));
        try {
            const dp::MixturePrior decoded = edgesim::decode_prior(buffer);
            // Decoding random bytes successfully is (essentially) impossible;
            // if it ever happens the result must still be a valid prior.
            EXPECT_GT(decoded.num_components(), 0u);
        } catch (const std::invalid_argument&) {
            // expected path
        }
    }
}

TEST(FuzzDecode, SingleByteCorruptionsEitherThrowOrStayValid) {
    const auto payload = edgesim::encode_prior(fuzz_prior());
    stats::Rng rng(2);
    for (int trial = 0; trial < 500; ++trial) {
        auto corrupted = payload;
        const std::size_t at = rng.uniform_index(corrupted.size());
        corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
        try {
            const dp::MixturePrior decoded = edgesim::decode_prior(corrupted);
            // A flipped mantissa bit can decode fine — the result must still
            // satisfy the MixturePrior invariants (normalized weights, PD
            // covariances), which its constructor enforces.
            double total = 0.0;
            for (const double w : decoded.weights()) total += w;
            EXPECT_NEAR(total, 1.0, 1e-9);
        } catch (const std::invalid_argument&) {
            // rejected — fine
        }
    }
}

TEST(FuzzDecode, TruncationAtEveryLengthThrows) {
    const auto payload = edgesim::encode_prior(fuzz_prior());
    for (std::size_t length = 0; length < payload.size(); ++length) {
        std::vector<std::uint8_t> truncated(payload.begin(),
                                            payload.begin() + static_cast<long>(length));
        EXPECT_THROW(edgesim::decode_prior(truncated), std::invalid_argument)
            << "length " << length;
    }
}

// --------------------------------------------------------------- wire v2
// Same hostile-bytes contract for the v2 framings (quantized, delta,
// quantized+delta): every malformed buffer throws std::invalid_argument
// BEFORE the K x d x d allocation — never crashes, never OOMs.

edgesim::EncodingOptions fuzz_v2_options(bool quantized, bool delta) {
    edgesim::EncodingOptions options;
    options.version = edgesim::kWireV2;
    options.quantized = quantized;
    options.quantization_bits = 8;
    options.delta = delta;
    options.prior_version = 3;
    return options;
}

TEST(FuzzDecodeV2, TruncationAtEveryLengthThrows) {
    const dp::MixturePrior prior = fuzz_prior();
    const edgesim::PriorBase base{&prior, 2};
    for (const bool quantized : {false, true}) {
        for (const bool delta : {false, true}) {
            const auto payload = edgesim::encode_prior(
                prior, fuzz_v2_options(quantized, delta), delta ? &base : nullptr);
            for (std::size_t length = 0; length < payload.size(); ++length) {
                std::vector<std::uint8_t> truncated(
                    payload.begin(), payload.begin() + static_cast<long>(length));
                EXPECT_THROW(edgesim::decode_prior(truncated, &base),
                             std::invalid_argument)
                    << "quantized=" << quantized << " delta=" << delta
                    << " length=" << length;
            }
        }
    }
}

TEST(FuzzDecodeV2, OverlongBuffersThrowOnBothVersions) {
    const dp::MixturePrior prior = fuzz_prior();
    const edgesim::PriorBase base{&prior, 2};
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.push_back(edgesim::encode_prior(prior));  // v1
    payloads.push_back(edgesim::encode_prior(prior, fuzz_v2_options(true, false)));
    payloads.push_back(
        edgesim::encode_prior(prior, fuzz_v2_options(true, true), &base));
    for (auto payload : payloads) {
        for (const std::size_t extra : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
            auto overlong = payload;
            overlong.insert(overlong.end(), extra, 0xab);
            EXPECT_THROW(edgesim::decode_prior(overlong, &base), std::invalid_argument)
                << "extra=" << extra;
        }
    }
}

TEST(FuzzDecodeV2, SingleBitCorruptionsEitherThrowOrStayValid) {
    const dp::MixturePrior prior = fuzz_prior();
    const edgesim::PriorBase base{&prior, 2};
    stats::Rng rng(4);
    for (const bool quantized : {false, true}) {
        for (const bool delta : {false, true}) {
            const auto payload = edgesim::encode_prior(
                prior, fuzz_v2_options(quantized, delta), delta ? &base : nullptr);
            for (int trial = 0; trial < 400; ++trial) {
                auto corrupted = payload;
                const std::size_t at = rng.uniform_index(corrupted.size());
                corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
                try {
                    const dp::MixturePrior decoded =
                        edgesim::decode_prior(corrupted, &base);
                    double total = 0.0;
                    for (const double w : decoded.weights()) total += w;
                    EXPECT_NEAR(total, 1.0, 1e-9);
                } catch (const std::invalid_argument&) {
                    // rejected — fine
                }
            }
        }
    }
}

TEST(FuzzDecodeV2, RandomV2HeadersNeverAllocate) {
    // Buffers that LOOK like v2 frames — valid magic and version, random
    // everything after — probe the header-validation path specifically:
    // huge K/dim, unregistered flags, hostile quantization ranges.
    const dp::MixturePrior prior = fuzz_prior();
    const edgesim::PriorBase base{&prior, 2};
    stats::Rng rng(5);
    const char magic[8] = {'D', 'R', 'E', 'L', 'P', 'R', 'I', 'O'};
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> buffer(12 + rng.uniform_index(120));
        std::memcpy(buffer.data(), magic, sizeof(magic));
        const std::uint32_t version = edgesim::kWireV2;
        std::memcpy(buffer.data() + 8, &version, sizeof(version));
        for (std::size_t i = 12; i < buffer.size(); ++i) {
            buffer[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
        }
        try {
            (void)edgesim::decode_prior(buffer, &base);
        } catch (const std::invalid_argument&) {
            // expected for essentially every random tail
        }
    }
}

TEST(FuzzCsv, RandomTextNeverCrashes) {
    stats::Rng rng(3);
    const std::string alphabet = "0123456789.,-+eE na\n\r\t;|";
    for (int trial = 0; trial < 1000; ++trial) {
        std::string text;
        const std::size_t length = rng.uniform_index(120);
        for (std::size_t i = 0; i < length; ++i) {
            text += alphabet[rng.uniform_index(alphabet.size())];
        }
        std::istringstream is(text);
        try {
            const models::Dataset d = data::load_csv(is, false);
            EXPECT_GT(d.size(), 0u);   // successful parses must be non-empty
            EXPECT_GE(d.dim(), 1u);
        } catch (const std::invalid_argument&) {
            // expected for almost all random strings
        }
    }
}

TEST(FuzzCsv, MixedValidInvalidRowsRejectedAtomically) {
    // Parsing must not return a half-dataset when a later row is bad.
    std::istringstream is("1.0,2.0,1\n3.0,4.0,-1\nbad,row,1\n");
    EXPECT_THROW(data::load_csv(is, false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Alias-table builds over hostile weight vectors. The Gibbs sweep feeds the
// table softmax outputs, which are benign; these pin the contract for every
// OTHER caller: degenerate and near-denormal inputs either build a usable
// table or throw std::invalid_argument — never crash, never emit NaN
// bucket thresholds.

TEST(FuzzAliasTable, DegenerateWeightsThrowInvalidArgument) {
    stats::AliasTable table;
    EXPECT_THROW(table.rebuild(nullptr, 0), std::invalid_argument);

    const std::vector<double> zeros(7, 0.0);
    EXPECT_THROW(table.rebuild(zeros.data(), zeros.size()), std::invalid_argument);

    const std::vector<double> negative = {0.5, -0.25, 0.5};
    EXPECT_THROW(table.rebuild(negative.data(), negative.size()), std::invalid_argument);

    for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()}) {
        std::vector<double> weights = {0.25, bad, 0.25};
        EXPECT_THROW(table.rebuild(weights.data(), weights.size()), std::invalid_argument);
    }

    // Weights individually finite but summing to +inf must also be rejected.
    const std::vector<double> overflow(4, std::numeric_limits<double>::max());
    EXPECT_THROW(table.rebuild(overflow.data(), overflow.size()), std::invalid_argument);
}

TEST(FuzzAliasTable, SingleNonzeroEntryAlwaysDrawsIt) {
    stats::Rng rng(81);
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{17}}) {
        for (std::size_t hot = 0; hot < n; ++hot) {
            std::vector<double> weights(n, 0.0);
            weights[hot] = 1e-12;  // magnitude must not matter
            stats::AliasTable table;
            table.rebuild(weights.data(), n);
            for (int trial = 0; trial < 64; ++trial) {
                EXPECT_EQ(table.draw(rng), hot);
            }
        }
    }
}

TEST(FuzzAliasTable, NearDenormalSumsBuildUsableTables) {
    // Sums down at the edge of the denormal range: the exact power-of-two
    // rescaling must keep every bucket mass finite and the pmf intact.
    stats::Rng rng(82);
    for (int scale_exp : {-1000, -1021, -1040, -1060}) {
        std::vector<double> weights(5);
        for (std::size_t i = 0; i < weights.size(); ++i) {
            weights[i] = std::ldexp(static_cast<double>(i + 1), scale_exp);
        }
        stats::AliasTable table;
        table.rebuild(weights.data(), weights.size());
        for (const double p : table.probabilities()) {
            EXPECT_TRUE(std::isfinite(p));
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
        }
        const std::vector<double> pmf =
            linalg::reference::alias_pmf(table.probabilities(), table.aliases());
        const double total = 15.0 * std::ldexp(1.0, scale_exp);  // sum of 1..5, scaled
        for (std::size_t i = 0; i < weights.size(); ++i) {
            EXPECT_NEAR(pmf[i], weights[i] / total, 1e-12) << "bucket " << i;
        }
        // Draws with extreme uniforms stay in range.
        EXPECT_LT(table.draw_from_uniform(0.0), weights.size());
        EXPECT_LT(table.draw_from_uniform(std::nextafter(1.0, 0.0)), weights.size());
        EXPECT_LT(table.draw(rng), weights.size());
    }
}

TEST(FuzzAliasTable, RandomWeightVectorsAlwaysReconstructTheirPmf) {
    stats::Rng rng(83);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t n = 1 + rng.uniform_index(40);
        std::vector<double> weights(n);
        double total = 0.0;
        for (double& w : weights) {
            // Spread magnitudes over ~60 decades, with occasional zeros.
            w = rng.uniform_index(8) == 0
                    ? 0.0
                    : std::ldexp(rng.uniform(), -static_cast<int>(rng.uniform_index(200)));
            total += w;
        }
        if (!(total > 0.0)) weights[0] = 1.0, total = 1.0;
        stats::AliasTable table;
        table.rebuild(weights.data(), n);
        const std::vector<double> pmf =
            linalg::reference::alias_pmf(table.probabilities(), table.aliases());
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(pmf[i], weights[i] / total, 1e-9) << "trial " << trial;
        }
    }
}

TEST(FuzzWeightedReservoir, HostileWeightsThrowAndZeroWeightsAreLegal) {
    stats::Rng rng(84);
    stats::WeightedReservoir reservoir(3);
    EXPECT_THROW(stats::WeightedReservoir(0), std::invalid_argument);
    EXPECT_THROW(reservoir.offer(0, -1.0, rng), std::invalid_argument);
    EXPECT_THROW(reservoir.offer(0, std::numeric_limits<double>::quiet_NaN(), rng),
                 std::invalid_argument);
    EXPECT_THROW(reservoir.offer(0, std::numeric_limits<double>::infinity(), rng),
                 std::invalid_argument);
    // All-zero stream: fills with zero-key entries, never draws, never hangs.
    for (std::size_t i = 0; i < 64; ++i) reservoir.offer(i, 0.0, rng);
    EXPECT_EQ(reservoir.size(), 3u);
    // Positive weights displace every zero-weight resident.
    for (std::size_t i = 100; i < 103; ++i) reservoir.offer(i, 1.0, rng);
    const std::vector<std::size_t> kept = reservoir.sorted_items();
    EXPECT_EQ(kept, (std::vector<std::size_t>{100, 101, 102}));
}

}  // namespace
}  // namespace drel
