// Randomized robustness ("fuzz-ish") tests: hostile bytes and malformed
// text must produce exceptions, never crashes, hangs, or silent garbage.
#include <gtest/gtest.h>

#include <sstream>

#include "data/csv_io.hpp"
#include "edgesim/transfer.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

dp::MixturePrior fuzz_prior() {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({1.0, 2.0, 3.0}, 0.5));
    atoms.push_back(stats::MultivariateNormal::isotropic({-1.0, 0.0, 1.0}, 1.5));
    return dp::MixturePrior({0.4, 0.6}, std::move(atoms));
}

TEST(FuzzDecode, RandomBuffersNeverCrash) {
    stats::Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> buffer(rng.uniform_index(200));
        for (auto& b : buffer) b = static_cast<std::uint8_t>(rng.uniform_index(256));
        try {
            const dp::MixturePrior decoded = edgesim::decode_prior(buffer);
            // Decoding random bytes successfully is (essentially) impossible;
            // if it ever happens the result must still be a valid prior.
            EXPECT_GT(decoded.num_components(), 0u);
        } catch (const std::invalid_argument&) {
            // expected path
        }
    }
}

TEST(FuzzDecode, SingleByteCorruptionsEitherThrowOrStayValid) {
    const auto payload = edgesim::encode_prior(fuzz_prior());
    stats::Rng rng(2);
    for (int trial = 0; trial < 500; ++trial) {
        auto corrupted = payload;
        const std::size_t at = rng.uniform_index(corrupted.size());
        corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
        try {
            const dp::MixturePrior decoded = edgesim::decode_prior(corrupted);
            // A flipped mantissa bit can decode fine — the result must still
            // satisfy the MixturePrior invariants (normalized weights, PD
            // covariances), which its constructor enforces.
            double total = 0.0;
            for (const double w : decoded.weights()) total += w;
            EXPECT_NEAR(total, 1.0, 1e-9);
        } catch (const std::invalid_argument&) {
            // rejected — fine
        }
    }
}

TEST(FuzzDecode, TruncationAtEveryLengthThrows) {
    const auto payload = edgesim::encode_prior(fuzz_prior());
    for (std::size_t length = 0; length < payload.size(); ++length) {
        std::vector<std::uint8_t> truncated(payload.begin(),
                                            payload.begin() + static_cast<long>(length));
        EXPECT_THROW(edgesim::decode_prior(truncated), std::invalid_argument)
            << "length " << length;
    }
}

TEST(FuzzCsv, RandomTextNeverCrashes) {
    stats::Rng rng(3);
    const std::string alphabet = "0123456789.,-+eE na\n\r\t;|";
    for (int trial = 0; trial < 1000; ++trial) {
        std::string text;
        const std::size_t length = rng.uniform_index(120);
        for (std::size_t i = 0; i < length; ++i) {
            text += alphabet[rng.uniform_index(alphabet.size())];
        }
        std::istringstream is(text);
        try {
            const models::Dataset d = data::load_csv(is, false);
            EXPECT_GT(d.size(), 0u);   // successful parses must be non-empty
            EXPECT_GE(d.dim(), 1u);
        } catch (const std::invalid_argument&) {
            // expected for almost all random strings
        }
    }
}

TEST(FuzzCsv, MixedValidInvalidRowsRejectedAtomically) {
    // Parsing must not return a half-dataset when a later row is bad.
    std::istringstream is("1.0,2.0,1\n3.0,4.0,-1\nbad,row,1\n");
    EXPECT_THROW(data::load_csv(is, false), std::invalid_argument);
}

}  // namespace
}  // namespace drel
