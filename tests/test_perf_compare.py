#!/usr/bin/env python3
"""Unit tests for scripts/perf_compare.py (the noise-aware perf gate).

Exercises the CLI the way CI does — as a subprocess over real JSON files —
so the documented exit-code contract (0 clean, 1 gate tripped, 2 schema or
usage error) is what gets pinned, not internal helpers. Wired into ctest by
tests/CMakeLists.txt as `perf_compare_unit`.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                      "scripts", "perf_compare.py")


def make_doc():
    return {
        "schema_version": 1,
        "environment": {"git_sha": "0" * 40, "compiler": "unit-test",
                        "build_type": "Release", "threads": 1},
        "benchmarks": {
            "kernel.stable": {"inner_iterations": 64, "repetitions": 11,
                              "min_ms": 1.00, "median_ms": 1.02,
                              "mad_ms": 0.01, "mean_ms": 1.03},
            "kernel.noisy": {"inner_iterations": 8, "repetitions": 11,
                             "min_ms": 4.2, "median_ms": 5.0,
                             "mad_ms": 0.8, "mean_ms": 5.1},
        },
    }


class PerfCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, *argv):
        return subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True)

    def test_identical_inputs_pass(self):
        base = self.write("base.json", make_doc())
        result = self.run_compare(base, base)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("0 regressed", result.stdout)

    def test_regression_fails(self):
        doc = make_doc()
        slow = copy.deepcopy(doc)
        slow["benchmarks"]["kernel.stable"]["median_ms"] *= 2.0
        result = self.run_compare(self.write("base.json", doc),
                                  self.write("cand.json", slow))
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION in kernel.stable", result.stderr)

    def test_added_benchmark_reported_not_gated(self):
        doc = make_doc()
        grown = copy.deepcopy(doc)
        grown["benchmarks"]["kernel.brand_new"] = dict(
            doc["benchmarks"]["kernel.stable"])
        result = self.run_compare(self.write("base.json", doc),
                                  self.write("cand.json", grown))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("kernel.brand_new", result.stdout)
        self.assertIn("1 new", result.stdout)

    def test_removed_benchmark_fails_with_report(self):
        doc = make_doc()
        shrunk = copy.deepcopy(doc)
        del shrunk["benchmarks"]["kernel.noisy"]
        result = self.run_compare(self.write("base.json", doc),
                                  self.write("cand.json", shrunk))
        self.assertEqual(result.returncode, 1)
        self.assertIn("MISSING from candidate", result.stdout)
        self.assertIn("missing from candidate", result.stderr)

    def test_disjoint_suites_report_instead_of_crashing(self):
        doc = make_doc()
        renamed = copy.deepcopy(doc)
        renamed["benchmarks"] = {
            "kernel.renamed_to_something_longer": dict(
                doc["benchmarks"]["kernel.stable"]),
        }
        result = self.run_compare(self.write("base.json", doc),
                                  self.write("cand.json", renamed))
        self.assertEqual(result.returncode, 1)
        self.assertNotIn("Traceback", result.stderr)
        self.assertIn("2 missing", result.stdout)
        self.assertIn("1 new", result.stdout)

    def test_schema_error_exits_two(self):
        bad = make_doc()
        bad["schema_version"] = 99
        result = self.run_compare("--validate-only", self.write("bad.json", bad))
        self.assertEqual(result.returncode, 2)
        self.assertIn("schema_version", result.stderr)

    def test_unreadable_file_exits_two(self):
        result = self.run_compare(os.path.join(self.tmp.name, "absent.json"),
                                  os.path.join(self.tmp.name, "absent.json"))
        self.assertEqual(result.returncode, 2)

    def test_self_test_passes(self):
        result = self.run_compare("--self-test")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("self-test passed", result.stdout)


if __name__ == "__main__":
    unittest.main()
