// Phase profiler suite: nesting, exception safety, the disabled-mode
// contract, and the determinism contract — merged phase COUNTS must be
// byte-identical at any thread count (timings are segregated and never
// compared). Mirrors the metrics-registry determinism tests in test_obs.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/executor.hpp"

namespace {

using namespace drel;
using obs::JsonValue;
using obs::Profiler;

/// Fresh, enabled profiler for one test body; restores disabled state on
/// exit so suites sharing a process never observe each other's frames.
class ProfilerTest : public ::testing::Test {
 protected:
    void SetUp() override {
        Profiler::global().disable();
        Profiler::global().reset();
        Profiler::global().enable();
    }
    void TearDown() override {
        Profiler::global().disable();
        Profiler::global().reset();
    }
};

TEST_F(ProfilerTest, NestedScopesBuildPaths) {
    {
        DREL_PROFILE_SCOPE("outer");
        for (int i = 0; i < 3; ++i) {
            DREL_PROFILE_SCOPE("inner");
        }
        DREL_PROFILE_SCOPE("sibling");
    }
    {
        DREL_PROFILE_SCOPE("outer");
    }

    const auto phases = Profiler::global().merged_phases();
    ASSERT_TRUE(phases.count("outer"));
    ASSERT_TRUE(phases.count("outer/inner"));
    ASSERT_TRUE(phases.count("outer/sibling"));
    EXPECT_EQ(phases.at("outer").count, 2u);
    EXPECT_EQ(phases.at("outer/inner").count, 3u);
    EXPECT_EQ(phases.at("outer/sibling").count, 1u);
    // Inclusive wall time flows upward: outer covers its children.
    EXPECT_GE(phases.at("outer").wall_ns, phases.at("outer/inner").wall_ns);
}

TEST_F(ProfilerTest, ExceptionUnwindPopsFrames) {
    try {
        DREL_PROFILE_SCOPE("throwing");
        {
            DREL_PROFILE_SCOPE("deep");
            throw std::runtime_error("unwind");
        }
    } catch (const std::runtime_error&) {
    }
    // After the unwind the stack must be back at the root: a new frame is
    // a top-level path, not a child of the phase that threw.
    {
        DREL_PROFILE_SCOPE("after");
    }

    const auto phases = Profiler::global().merged_phases();
    EXPECT_EQ(phases.at("throwing").count, 1u);
    EXPECT_EQ(phases.at("throwing/deep").count, 1u);
    ASSERT_TRUE(phases.count("after"));
    EXPECT_FALSE(phases.count("throwing/after"));
}

TEST_F(ProfilerTest, DisabledModeRecordsNothing) {
    Profiler::global().disable();
    Profiler::global().reset();

    constexpr int kFrames = 200000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kFrames; ++i) {
        DREL_PROFILE_SCOPE("disabled.hot");
    }
    const double ns_per_frame =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
            .count() /
        kFrames;

    EXPECT_TRUE(Profiler::global().merged_phases().empty());
    // One relaxed load + untaken branch. The bound is deliberately loose
    // (sanitizer builds, noisy CI) — it exists to catch an accidental
    // clock read or lock on the disabled path, which costs 10-100x more.
    EXPECT_LT(ns_per_frame, 1000.0);
}

TEST_F(ProfilerTest, FrameStartedWhileEnabledCompletesAfterDisable) {
    {
        DREL_PROFILE_SCOPE("straddle");
        Profiler::global().disable();
    }
    Profiler::global().enable();
    EXPECT_EQ(Profiler::global().merged_phases().at("straddle").count, 1u);
}

TEST_F(ProfilerTest, ResetZeroesCountsAndTimes) {
    {
        DREL_PROFILE_SCOPE("transient");
    }
    ASSERT_EQ(Profiler::global().merged_phases().at("transient").count, 1u);
    Profiler::global().reset();
    EXPECT_TRUE(Profiler::global().merged_phases().empty());
}

TEST_F(ProfilerTest, DeterministicJsonSchema) {
    {
        DREL_PROFILE_SCOPE("schema.phase");
    }
    const JsonValue doc = JsonValue::parse(Profiler::global().deterministic_json());
    EXPECT_EQ(doc.at("schema_version").as_uint(), obs::kProfileSchemaVersion);
    EXPECT_EQ(doc.at("phases").at("schema.phase").as_uint(), 1u);

    const JsonValue full = JsonValue::parse(Profiler::global().json());
    EXPECT_TRUE(full.contains("counts"));
    EXPECT_TRUE(full.contains("timing"));
    const JsonValue& timing = full.at("timing").at("schema.phase");
    EXPECT_TRUE(timing.at("wall_seconds").is_number());
    EXPECT_TRUE(timing.at("self_wall_seconds").is_number());
}

/// Deterministic fan-out workload: counts depend only on indices, never on
/// which thread ran an iteration.
std::string run_workload_and_snapshot(std::size_t num_threads) {
    Profiler::global().reset();
    {
        DREL_PROFILE_SCOPE("mt.region");
        util::Executor::global().parallel_for(24, num_threads, [](std::size_t i) {
            DREL_PROFILE_SCOPE("mt.item");
            if (i % 3 == 0) {
                DREL_PROFILE_SCOPE("mt.special");
            }
        });
    }
    std::string snapshot = Profiler::global().deterministic_json();
    Profiler::global().reset();
    return snapshot;
}

TEST_F(ProfilerTest, MergedCountsBitIdenticalAcrossThreadCounts) {
    const std::string serial = run_workload_and_snapshot(1);

    // Worker-thread frames must land under the submitting thread's phase
    // path (executor context propagation), not at the root.
    const JsonValue doc = JsonValue::parse(serial);
    EXPECT_EQ(doc.at("phases").at("mt.region").as_uint(), 1u);
    EXPECT_EQ(doc.at("phases").at("mt.region/mt.item").as_uint(), 24u);
    EXPECT_EQ(doc.at("phases").at("mt.region/mt.item/mt.special").as_uint(), 8u);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        EXPECT_EQ(run_workload_and_snapshot(threads), serial)
            << "deterministic snapshot diverged at " << threads << " threads";
    }
}

TEST_F(ProfilerTest, ScopeEmitsValidTraceSpans) {
    obs::TraceCollector& collector = obs::TraceCollector::global();
    collector.disable();
    collector.clear();
    collector.enable(::testing::TempDir() + "drel_profiler_trace.json");
    {
        DREL_PROFILE_SCOPE("tv.outer");
        DREL_PROFILE_SCOPE("tv.inner");
    }
    collector.disable();

    // The trace document must be parseable by the strict obs::json parser
    // and contain exactly the spans the profiler counted.
    const JsonValue doc = JsonValue::parse(collector.json());
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);
    std::vector<std::string> names;
    for (const JsonValue& event : events) {
        names.push_back(event.at("name").as_string());
        EXPECT_EQ(event.at("ph").as_string(), "X");
        EXPECT_TRUE(event.at("ts").is_number());
        EXPECT_TRUE(event.at("dur").is_number());
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "tv.outer"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "tv.inner"), names.end());

    const auto phases = Profiler::global().merged_phases();
    EXPECT_EQ(phases.at("tv.outer").count, 1u);
    EXPECT_EQ(phases.at("tv.outer/tv.inner").count, 1u);
    collector.clear();
}

}  // namespace
