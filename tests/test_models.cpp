#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "models/dataset.hpp"
#include "models/erm_objective.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"

namespace drel::models {
namespace {

Dataset tiny_dataset() {
    // Linearly separable 2-feature (+bias) toy.
    linalg::Matrix f(4, 3,
                     {+1.0, +1.0, 1.0,   //
                      +2.0, +0.5, 1.0,   //
                      -1.0, -1.0, 1.0,   //
                      -2.0, -0.5, 1.0});
    return Dataset(std::move(f), {1.0, 1.0, -1.0, -1.0});
}

// ---------------------------------------------------------------- dataset

TEST(Dataset, ConstructionValidation) {
    EXPECT_THROW(Dataset(linalg::Matrix(2, 2), {1.0}), std::invalid_argument);
    const Dataset d = tiny_dataset();
    EXPECT_EQ(d.size(), 4u);
    EXPECT_EQ(d.dim(), 3u);
    EXPECT_DOUBLE_EQ(d.label(0), 1.0);
}

TEST(Dataset, RejectsNonFiniteValues) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(Dataset(linalg::Matrix(1, 2, {nan, 1.0}), {1.0}), std::invalid_argument);
    EXPECT_THROW(Dataset(linalg::Matrix(1, 2, {inf, 1.0}), {1.0}), std::invalid_argument);
    EXPECT_THROW(Dataset(linalg::Matrix(1, 2, {0.0, 1.0}), {nan}), std::invalid_argument);
}

TEST(Dataset, SubsetSupportsDuplicates) {
    const Dataset d = tiny_dataset();
    const Dataset s = d.subset({0, 0, 3});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.label(0), s.label(1));
    EXPECT_THROW(d.subset({9}), std::out_of_range);
}

TEST(Dataset, SplitPartitionsAllExamples) {
    stats::Rng rng(1);
    const Dataset d = tiny_dataset();
    const auto [train, test] = d.split(0.5, rng);
    EXPECT_EQ(train.size() + test.size(), d.size());
    EXPECT_EQ(train.size(), 2u);
    EXPECT_THROW(d.split(1.5, rng), std::invalid_argument);
}

TEST(Dataset, ConcatenatePreservesOrder) {
    const Dataset d = tiny_dataset();
    const Dataset c = Dataset::concatenate(d, d);
    EXPECT_EQ(c.size(), 8u);
    EXPECT_DOUBLE_EQ(c.label(4), d.label(0));
}

TEST(Dataset, PushBackGrows) {
    Dataset d = tiny_dataset();
    d.push_back({0.0, 0.0, 1.0}, -1.0);
    EXPECT_EQ(d.size(), 5u);
    EXPECT_THROW(d.push_back({0.0}, 1.0), std::invalid_argument);
}

TEST(Dataset, StandardizerZeroMeanUnitVariance) {
    stats::Rng rng(2);
    linalg::Matrix f(200, 2);
    for (std::size_t i = 0; i < 200; ++i) {
        f(i, 0) = rng.normal(5.0, 3.0);
        f(i, 1) = rng.normal(-1.0, 0.5);
    }
    const Dataset d(std::move(f), linalg::Vector(200, 1.0));
    const auto standardizer = d.fit_standardizer();
    const Dataset z = standardizer.apply_to(d);
    const auto restd = z.fit_standardizer();
    EXPECT_NEAR(restd.mean[0], 0.0, 1e-10);
    EXPECT_NEAR(restd.stddev[0], 1.0, 1e-10);
    EXPECT_NEAR(restd.mean[1], 0.0, 1e-10);
}

TEST(Dataset, WithBiasFeatureAppendsOnes) {
    const Dataset raw(linalg::Matrix(2, 2, {1.0, 2.0, 3.0, 4.0}), {1.0, -1.0});
    const Dataset b = with_bias_feature(raw);
    EXPECT_EQ(b.dim(), 3u);
    EXPECT_DOUBLE_EQ(b.feature_row(0)[2], 1.0);
    EXPECT_DOUBLE_EQ(b.feature_row(1)[2], 1.0);
}

TEST(Dataset, PositiveFraction) {
    EXPECT_DOUBLE_EQ(tiny_dataset().positive_fraction(), 0.5);
}

// ------------------------------------------------------------------ losses

TEST(Loss, LogisticKnownValues) {
    const auto loss = make_logistic_loss();
    EXPECT_NEAR(loss->phi(0.0), std::log(2.0), 1e-12);
    EXPECT_NEAR(loss->dphi(0.0), -0.5, 1e-12);
    // Very negative margin: linear asymptote with slope -1.
    EXPECT_NEAR(loss->phi(-50.0), 50.0, 1e-9);
    EXPECT_NEAR(loss->dphi(-50.0), -1.0, 1e-9);
    // Very positive margin: loss vanishes.
    EXPECT_NEAR(loss->phi(50.0), 0.0, 1e-12);
}

TEST(Loss, SmoothedHingePiecewise) {
    const auto loss = make_smoothed_hinge_loss();
    EXPECT_DOUBLE_EQ(loss->phi(2.0), 0.0);
    EXPECT_DOUBLE_EQ(loss->phi(0.5), 0.125);
    EXPECT_DOUBLE_EQ(loss->phi(-1.0), 1.5);
    EXPECT_DOUBLE_EQ(loss->dphi(-1.0), -1.0);
    EXPECT_DOUBLE_EQ(loss->dphi(0.5), -0.5);
    EXPECT_DOUBLE_EQ(loss->dphi(2.0), 0.0);
}

TEST(Loss, DerivativeMatchesFiniteDifferenceEverywhere) {
    const double h = 1e-6;
    for (const LossKind kind :
         {LossKind::kLogistic, LossKind::kSmoothedHinge, LossKind::kSquared, LossKind::kHuber}) {
        const auto loss = make_loss(kind);
        for (double z = -3.0; z <= 3.0; z += 0.37) {
            const double numeric = (loss->phi(z + h) - loss->phi(z - h)) / (2.0 * h);
            EXPECT_NEAR(loss->dphi(z), numeric, 1e-4) << loss->name() << " at z=" << z;
        }
    }
}

TEST(Loss, LipschitzBoundsDerivative) {
    for (const LossKind kind : {LossKind::kLogistic, LossKind::kSmoothedHinge, LossKind::kHuber}) {
        const auto loss = make_loss(kind);
        for (double z = -20.0; z <= 20.0; z += 0.1) {
            EXPECT_LE(std::fabs(loss->dphi(z)), loss->lipschitz() + 1e-12) << loss->name();
        }
    }
}

TEST(Loss, HuberValidatesDelta) {
    EXPECT_THROW(make_huber_loss(0.0), std::invalid_argument);
    EXPECT_THROW(make_huber_loss(-1.0), std::invalid_argument);
}

// ------------------------------------------------------------ linear model

TEST(LinearModel, PredictionsOnSeparableData) {
    const LinearModel model({1.0, 1.0, 0.0});
    const Dataset d = tiny_dataset();
    EXPECT_DOUBLE_EQ(accuracy(model, d), 1.0);
    EXPECT_GT(model.predict_probability({1.0, 1.0, 1.0}), 0.5);
    EXPECT_LT(model.predict_probability({-1.0, -1.0, 1.0}), 0.5);
}

TEST(LinearModel, AdversarialLossUpperBoundsCleanLoss) {
    const LinearModel model({0.7, -0.3, 0.1});
    const auto loss = make_logistic_loss();
    const Dataset d = tiny_dataset();
    const double clean = model.average_loss(*loss, d);
    const double adv = model.average_adversarial_loss(*loss, d, 0.5);
    EXPECT_GE(adv, clean);
    EXPECT_DOUBLE_EQ(model.average_adversarial_loss(*loss, d, 0.0), clean);
}

TEST(LinearModel, AdversarialLossMonotoneInEpsilon) {
    const LinearModel model({0.7, -0.3, 0.1});
    const auto loss = make_smoothed_hinge_loss();
    const Dataset d = tiny_dataset();
    double previous = model.average_adversarial_loss(*loss, d, 0.0);
    for (double eps = 0.1; eps <= 1.0; eps += 0.1) {
        const double current = model.average_adversarial_loss(*loss, d, eps);
        EXPECT_GE(current, previous - 1e-12);
        previous = current;
    }
}

// ---------------------------------------------------------------- ERM

TEST(ErmObjective, GradientMatchesNumerical) {
    stats::Rng rng(3);
    const Dataset d = tiny_dataset();
    for (const LossKind kind : {LossKind::kLogistic, LossKind::kSmoothedHinge,
                                LossKind::kSquared, LossKind::kHuber}) {
        const auto loss = make_loss(kind);
        const ErmObjective objective(d, *loss, 0.1);
        const linalg::Vector theta = rng.standard_normal_vector(3);
        const linalg::Vector analytic = objective.gradient(theta);
        const linalg::Vector numeric = objective.numerical_gradient(theta);
        EXPECT_LT(linalg::distance2(analytic, numeric), 1e-4) << loss->name();
    }
}

TEST(ErmObjective, WeightedGradientMatchesNumerical) {
    stats::Rng rng(4);
    const Dataset d = tiny_dataset();
    const auto loss = make_logistic_loss();
    ErmObjective objective(d, *loss);
    const linalg::Vector weights{0.4, 0.3, 0.2, 0.1};
    objective.set_example_weights(&weights);
    const linalg::Vector theta = rng.standard_normal_vector(3);
    EXPECT_LT(linalg::distance2(objective.gradient(theta),
                                objective.numerical_gradient(theta)),
              1e-5);
}

TEST(ErmObjective, FitSeparatesSeparableData) {
    const Dataset d = tiny_dataset();
    const auto loss = make_logistic_loss();
    const ErmObjective objective(d, *loss, 0.01);
    const auto r = optim::minimize_lbfgs(objective, linalg::zeros(3));
    EXPECT_DOUBLE_EQ(accuracy(LinearModel(r.x), d), 1.0);
}

TEST(ErmObjective, PerExampleLossesMatchAverage) {
    stats::Rng rng(5);
    const Dataset d = tiny_dataset();
    const auto loss = make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(3);
    const linalg::Vector losses = per_example_losses(d, *loss, theta);
    const ErmObjective objective(d, *loss);
    EXPECT_NEAR(linalg::sum(losses) / 4.0, objective.value(theta), 1e-12);
}

TEST(ErmObjective, RejectsInvalidInputs) {
    const Dataset d = tiny_dataset();
    const auto loss = make_logistic_loss();
    EXPECT_THROW(ErmObjective(d, *loss, -1.0), std::invalid_argument);
    const ErmObjective objective(d, *loss);
    EXPECT_THROW(objective.value({1.0}), std::invalid_argument);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, AccuracyAndPerClassErrors) {
    // Model that always predicts +1.
    const LinearModel model({0.0, 0.0, 100.0});
    const Dataset d = tiny_dataset();
    EXPECT_DOUBLE_EQ(accuracy(model, d), 0.5);
    const ClassErrors errors = per_class_errors(model, d);
    EXPECT_DOUBLE_EQ(errors.positive, 0.0);
    EXPECT_DOUBLE_EQ(errors.negative, 1.0);
}

TEST(Metrics, LogLossOfPerfectModelIsSmall) {
    const LinearModel strong({10.0, 10.0, 0.0});
    const LinearModel weak({0.1, 0.1, 0.0});
    const Dataset d = tiny_dataset();
    EXPECT_LT(log_loss(strong, d), log_loss(weak, d));
}

TEST(Metrics, AdversarialAccuracyShrinksWithEpsilon) {
    const LinearModel model({1.0, 1.0, 0.0});
    const Dataset d = tiny_dataset();
    EXPECT_DOUBLE_EQ(adversarial_accuracy(model, d, 0.0), 1.0);
    double previous = 1.0;
    for (double eps = 0.5; eps <= 3.0; eps += 0.5) {
        const double current = adversarial_accuracy(model, d, eps);
        EXPECT_LE(current, previous + 1e-12);
        previous = current;
    }
    EXPECT_DOUBLE_EQ(adversarial_accuracy(model, d, 100.0), 0.0);
}

TEST(Metrics, BrierScoreBounds) {
    const LinearModel model({1.0, 1.0, 0.0});
    const Dataset d = tiny_dataset();
    const double brier = brier_score(model, d);
    EXPECT_GE(brier, 0.0);
    EXPECT_LE(brier, 1.0);
}

TEST(Metrics, MseForRegression) {
    const LinearModel model({2.0, 0.0});
    const Dataset d(linalg::Matrix(2, 2, {1.0, 1.0, 2.0, 1.0}), {2.0, 4.0});
    EXPECT_NEAR(mse(model, d), 0.0, 1e-12);
}

}  // namespace
}  // namespace drel::models
