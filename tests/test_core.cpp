#include <gtest/gtest.h>

#include <cmath>

#include "core/edge_learner.hpp"
#include "core/em_dro.hpp"
#include "data/task_generator.hpp"
#include "dp/mixture_prior.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::core {
namespace {

using Fixture = test_support::PopulationFixture;

/// Small edge dataset whose task comes from a 3-mode population; the prior
/// is the *exact* population mixture (atoms at the true modes) so core tests
/// are isolated from DPMM inference quality.
Fixture make_fixture(std::uint64_t seed, std::size_t n_train = 16) {
    return test_support::make_population_fixture(seed, n_train, /*n_test=*/2500);
}

// ----------------------------------------------------------------- EM-DRO

TEST(EmDro, ObjectiveMonotoneNonIncreasing) {
    const Fixture f = make_fixture(1);
    const auto loss = models::make_logistic_loss();
    const EmDroSolver solver(f.train, *loss, f.prior, dro::AmbiguitySet::wasserstein(0.1),
                             2.0);
    const EmDroResult r = solver.solve_from(f.prior.mean());
    ASSERT_GE(r.trace.objective.size(), 2u);
    for (std::size_t i = 1; i < r.trace.objective.size(); ++i) {
        EXPECT_LE(r.trace.objective[i], r.trace.objective[i - 1] + 1e-8) << "iteration " << i;
    }
}

TEST(EmDro, SolveImprovesOnInitialObjective) {
    const Fixture f = make_fixture(2);
    const auto loss = models::make_logistic_loss();
    const EmDroSolver solver(f.train, *loss, f.prior, dro::AmbiguitySet::wasserstein(0.1),
                             2.0);
    const double at_mean = solver.objective(f.prior.mean());
    const EmDroResult r = solver.solve();
    EXPECT_LT(r.objective, at_mean);
}

TEST(EmDro, ResponsibilitiesConcentrateOnTrueMode) {
    // With enough local data the learned theta should sit in the basin of
    // the task's true population mode.
    const Fixture f = make_fixture(3, 64);
    const auto loss = models::make_logistic_loss();
    const EmDroSolver solver(f.train, *loss, f.prior, dro::AmbiguitySet::wasserstein(0.05),
                             2.0);
    const EmDroResult r = solver.solve();
    EXPECT_EQ(linalg::argmax(r.final_responsibilities), f.task.mode_index);
    EXPECT_GT(r.final_responsibilities[f.task.mode_index], 0.9);
}

TEST(EmDro, ZeroTransferWeightEqualsPureDro) {
    const Fixture f = make_fixture(4);
    const auto loss = models::make_logistic_loss();
    const dro::AmbiguitySet set = dro::AmbiguitySet::wasserstein(0.1);
    const EmDroSolver solver(f.train, *loss, f.prior, set, 0.0);
    const EmDroResult r = solver.solve();
    // Must match directly minimizing the robust objective.
    const auto robust = dro::make_robust_objective(f.train, *loss, set);
    const auto direct = optim::minimize_lbfgs(*robust, f.prior.mean());
    EXPECT_NEAR(robust->value(r.theta), direct.value, 1e-4);
}

TEST(EmDro, LargeTransferWeightPinsToPrior) {
    const Fixture f = make_fixture(5);
    const auto loss = models::make_logistic_loss();
    const EmDroSolver solver(f.train, *loss, f.prior, dro::AmbiguitySet::none(), 1e6);
    const EmDroResult r = solver.solve();
    // With overwhelming prior weight, theta must sit essentially at a prior
    // mode: its log-density should be within a hair of the best atom's.
    double best_atom_density = -1e18;
    for (std::size_t k = 0; k < f.prior.num_components(); ++k) {
        best_atom_density =
            std::max(best_atom_density, f.prior.log_pdf(f.prior.atom(k).mean()));
    }
    EXPECT_GT(f.prior.log_pdf(r.theta), best_atom_density - 0.5);
}

TEST(EmDro, DimensionValidation) {
    const Fixture f = make_fixture(6);
    const auto loss = models::make_logistic_loss();
    // Prior of wrong dimension must be rejected at construction.
    const dp::MixturePrior bad =
        dp::MixturePrior::single(stats::MultivariateNormal::isotropic({0.0, 0.0}, 1.0));
    EXPECT_THROW(EmDroSolver(f.train, *loss, bad, dro::AmbiguitySet::none(), 1.0),
                 std::invalid_argument);
    const EmDroSolver solver(f.train, *loss, f.prior, dro::AmbiguitySet::none(), 1.0);
    EXPECT_THROW(solver.solve_from({1.0}), std::invalid_argument);
}

TEST(EmDro, TraceFieldsConsistent) {
    const Fixture f = make_fixture(7);
    const auto loss = models::make_logistic_loss();
    const EmDroSolver solver(f.train, *loss, f.prior, dro::AmbiguitySet::wasserstein(0.1),
                             1.0);
    const EmDroResult r = solver.solve_from(f.prior.mean());
    EXPECT_EQ(r.trace.robust_loss.size(), r.trace.log_prior.size());
    EXPECT_EQ(r.trace.robust_loss.size(),
              static_cast<std::size_t>(r.trace.outer_iterations));
    // objective = robust - w*log_prior at every recorded iterate.
    const double w = solver.transfer_weight_scaled();
    for (std::size_t i = 0; i < r.trace.robust_loss.size(); ++i) {
        EXPECT_NEAR(r.trace.objective[i],
                    r.trace.robust_loss[i] - w * r.trace.log_prior[i], 1e-9);
    }
}

// ------------------------------------------------------------- EdgeLearner

TEST(EdgeLearner, FitBeatsPureLocalOnFewSamples) {
    // The headline claim at unit-test scale: with 12 samples, EM-DRO with
    // the true population prior must beat unregularized local ERM on
    // held-out data (averaged over tasks to kill seed luck).
    double em_dro_total = 0.0;
    double local_total = 0.0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
        const Fixture f = make_fixture(100 + t, 12);
        EdgeLearnerConfig config;
        config.radius_coefficient = 0.25;
        config.transfer_weight = 2.0;
        const EdgeLearner learner(f.prior, config);
        const FitResult fit = learner.fit(f.train);
        em_dro_total += models::accuracy(fit.model, f.test);

        const auto loss = models::make_logistic_loss();
        const models::ErmObjective erm(f.train, *loss);
        const auto r = optim::minimize_lbfgs(erm, linalg::zeros(f.train.dim()));
        local_total += models::accuracy(models::LinearModel(r.x), f.test);
    }
    EXPECT_GT(em_dro_total / trials, local_total / trials + 0.02);
}

TEST(EdgeLearner, AutoRadiusFollowsSchedule) {
    const Fixture f = make_fixture(8);
    EdgeLearnerConfig config;
    config.radius_coefficient = 1.0;
    const EdgeLearner learner(f.prior, config);
    EXPECT_NEAR(learner.effective_ambiguity(16).radius, 0.25, 1e-12);
    EXPECT_NEAR(learner.effective_ambiguity(64).radius, 0.125, 1e-12);
}

TEST(EdgeLearner, ManualRadiusRespected) {
    const Fixture f = make_fixture(9);
    EdgeLearnerConfig config;
    config.auto_radius = false;
    config.ambiguity = dro::AmbiguitySet::kl(0.77);
    const EdgeLearner learner(f.prior, config);
    EXPECT_DOUBLE_EQ(learner.effective_ambiguity(10).radius, 0.77);
    EXPECT_EQ(learner.effective_ambiguity(10).kind, dro::AmbiguityKind::kKl);
}

TEST(EdgeLearner, FitReportIsCoherent) {
    const Fixture f = make_fixture(10);
    const EdgeLearner learner(f.prior, {});
    const FitResult fit = learner.fit(f.train);
    EXPECT_EQ(fit.model.dim(), f.train.dim());
    EXPECT_NEAR(linalg::sum(fit.responsibilities), 1.0, 1e-9);
    EXPECT_LT(fit.map_component, f.prior.num_components());
    EXPECT_GT(fit.chosen_radius, 0.0);
    EXPECT_GE(fit.trace.outer_iterations, 1);
}

TEST(EdgeLearner, RejectsDimensionMismatch) {
    const Fixture f = make_fixture(11);
    const EdgeLearner learner(f.prior, {});
    const models::Dataset wrong(linalg::Matrix(3, 2, {1.0, 1.0, 2.0, 1.0, 3.0, 1.0}),
                                {1.0, -1.0, 1.0});
    EXPECT_THROW(learner.fit(wrong), std::invalid_argument);
}

TEST(EdgeLearner, WorksWithEveryAmbiguityKind) {
    const Fixture f = make_fixture(12);
    for (const dro::AmbiguityKind kind :
         {dro::AmbiguityKind::kNone, dro::AmbiguityKind::kWasserstein, dro::AmbiguityKind::kKl,
          dro::AmbiguityKind::kChiSquare}) {
        EdgeLearnerConfig config;
        config.ambiguity.kind = kind;
        config.em.max_outer_iterations = 10;
        const EdgeLearner learner(f.prior, config);
        const FitResult fit = learner.fit(f.train);
        EXPECT_GT(models::accuracy(fit.model, f.test), 0.5)
            << dro::ambiguity_name(kind);
    }
}

TEST(EdgeLearner, SmoothedHingeLossSupported) {
    const Fixture f = make_fixture(13);
    EdgeLearnerConfig config;
    config.loss = models::LossKind::kSmoothedHinge;
    const EdgeLearner learner(f.prior, config);
    const FitResult fit = learner.fit(f.train);
    EXPECT_GT(models::accuracy(fit.model, f.test), 0.6);
}

}  // namespace
}  // namespace drel::core
