// Edge-case and boundary-condition sweeps across modules — the inputs that
// break hand-rolled numerical code in production: dimension-1 problems,
// single-example datasets, duplicate points, extreme scales, and degenerate
// configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/edge_learner.hpp"
#include "data/task_generator.hpp"
#include "dp/dpmm_gibbs.hpp"
#include "dro/robust_objective.hpp"
#include "dro/wasserstein.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

// ------------------------------------------------------------ tiny problems

TEST(EdgeCases, OneByOneLinearAlgebra) {
    const linalg::Matrix a(1, 1, {4.0});
    const linalg::Cholesky chol(a);
    EXPECT_DOUBLE_EQ(chol.lower()(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(chol.solve({8.0})[0], 2.0);
    EXPECT_NEAR(chol.log_det(), std::log(4.0), 1e-12);
    const linalg::EigenSym es = linalg::eigen_sym(a);
    EXPECT_DOUBLE_EQ(es.values[0], 4.0);
}

TEST(EdgeCases, SingleExampleDataset) {
    const models::Dataset d(linalg::Matrix(1, 2, {1.5, 1.0}), {1.0});
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective erm(d, *loss, 0.1);
    const auto r = optim::minimize_lbfgs(erm, linalg::zeros(2));
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(models::accuracy(models::LinearModel(r.x), d), 1.0);
    // DRO duals must handle n=1 (a single atom distribution).
    for (const dro::AmbiguitySet set :
         {dro::AmbiguitySet::kl(0.3), dro::AmbiguitySet::chi_square(0.3),
          dro::AmbiguitySet::wasserstein(0.3)}) {
        EXPECT_GE(dro::robust_loss(r.x, d, *loss, set),
                  dro::robust_loss(r.x, d, *loss, dro::AmbiguitySet::none()) - 1e-9)
            << set.to_string();
    }
}

TEST(EdgeCases, DuplicateExamplesAreHandled) {
    // All examples identical: duals degenerate gracefully.
    linalg::Matrix f(5, 2);
    for (std::size_t i = 0; i < 5; ++i) {
        f(i, 0) = 1.0;
        f(i, 1) = 1.0;
    }
    const models::Dataset d(std::move(f), linalg::Vector(5, 1.0));
    const auto loss = models::make_logistic_loss();
    stats::Rng rng(1);
    const linalg::Vector theta = rng.standard_normal_vector(2);
    const double clean = dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::none());
    // KL/chi2 reweighting cannot change the mean of identical losses.
    EXPECT_NEAR(dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::kl(0.5)), clean, 1e-6);
    EXPECT_NEAR(dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::chi_square(0.5)), clean,
                1e-6);
}

TEST(EdgeCases, ZeroWeightVectorEverywhere) {
    stats::Rng rng(2);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(3, 2, 2.0, 0.05, rng);
    const models::Dataset d = pop.generate(pop.sample_task(rng), 20, rng);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector zero = linalg::zeros(d.dim());
    // Wasserstein penalty is 0 at theta=0 (subgradient 0 at the kink).
    const dro::WassersteinDroObjective robust(d, *loss, 0.5);
    EXPECT_NEAR(robust.value(zero), std::log(2.0), 1e-12);
    const linalg::Vector g = robust.gradient(zero);
    for (const double v : g) EXPECT_TRUE(std::isfinite(v));
    // Metrics on constant classifiers: no feature perturbation can flip a
    // decision that ignores the features, so adversarial accuracy must
    // equal clean accuracy at ANY budget (this pinned a real boundary bug).
    const models::LinearModel all_zero(zero);
    EXPECT_DOUBLE_EQ(models::adversarial_accuracy(all_zero, d, 1.0),
                     models::accuracy(all_zero, d));
    linalg::Vector bias_only = zero;
    bias_only.back() = -2.0;  // constant negative prediction
    const models::LinearModel negative(bias_only);
    EXPECT_DOUBLE_EQ(models::adversarial_accuracy(negative, d, 5.0),
                     models::accuracy(negative, d));
}

// --------------------------------------------------------- extreme scales

TEST(EdgeCases, HugeAndTinyFeatureScales) {
    // Raw fits must never produce non-finite values at extreme scales, and
    // the documented remedy — the Standardizer — must restore full accuracy.
    stats::Rng rng(3);
    for (const double scale : {1e-6, 1e6}) {
        linalg::Matrix raw_features(10, 1);
        linalg::Vector y(10);
        for (std::size_t i = 0; i < 10; ++i) {
            raw_features(i, 0) = scale * rng.normal();
            y[i] = (raw_features(i, 0) > 0.0) ? 1.0 : -1.0;
        }
        const models::Dataset raw(std::move(raw_features), std::move(y));
        const auto loss = models::make_logistic_loss();
        const models::Dataset biased = models::with_bias_feature(raw);
        const models::ErmObjective direct(biased, *loss, 1e-8);
        const auto direct_fit = optim::minimize_lbfgs(direct, linalg::zeros(2));
        EXPECT_TRUE(std::isfinite(direct_fit.value)) << scale;

        // The documented pipeline: standardize RAW features, THEN append the
        // bias column (the standardizer would zero a constant column).
        const models::Dataset z =
            models::with_bias_feature(raw.fit_standardizer().apply_to(raw));
        const models::ErmObjective standardized(z, *loss, 1e-8);
        const auto z_fit = optim::minimize_lbfgs(standardized, linalg::zeros(2));
        EXPECT_GE(models::accuracy(models::LinearModel(z_fit.x), z), 0.9) << scale;
    }
}

TEST(EdgeCases, MvnWithTinyAndHugeVariance) {
    const auto tiny = stats::MultivariateNormal::isotropic({0.0, 0.0}, 1e-10);
    const auto huge = stats::MultivariateNormal::isotropic({0.0, 0.0}, 1e10);
    EXPECT_TRUE(std::isfinite(tiny.log_pdf({0.0, 0.0})));
    EXPECT_TRUE(std::isfinite(huge.log_pdf({1e3, -1e3})));
    EXPECT_GT(tiny.log_pdf({0.0, 0.0}), huge.log_pdf({0.0, 0.0}));
}

TEST(EdgeCases, MixtureWithVeryFarAtomsStaysStable) {
    // Responsibilities underflow territory: atoms 1e3 apart.
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({1000.0}, 1.0));
    atoms.push_back(stats::MultivariateNormal::isotropic({-1000.0}, 1.0));
    const dp::MixturePrior prior({0.5, 0.5}, std::move(atoms));
    const linalg::Vector r = prior.responsibilities({999.0});
    EXPECT_NEAR(r[0], 1.0, 1e-12);
    EXPECT_TRUE(std::isfinite(prior.log_pdf({0.0})));  // log-sum-exp path
    EXPECT_TRUE(std::isfinite(prior.log_pdf({999.0})));
}

// ----------------------------------------------------- degenerate configs

TEST(EdgeCases, EdgeLearnerWithSingleAtomPrior) {
    stats::Rng rng(4);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(4, 1, 2.0, 0.05, rng);
    const data::TaskSpec task = pop.sample_task(rng);
    const models::Dataset train = pop.generate(task, 16, rng);
    const models::Dataset test = pop.generate(task, 1000, rng);
    const dp::MixturePrior prior = dp::MixturePrior::single(
        stats::MultivariateNormal::isotropic(task.theta_star, 0.5));
    const core::EdgeLearner learner(prior, {});
    const core::FitResult fit = learner.fit(train);
    EXPECT_EQ(fit.responsibilities.size(), 1u);
    EXPECT_DOUBLE_EQ(fit.responsibilities[0], 1.0);
    EXPECT_GT(models::accuracy(fit.model, test), 0.6);
}

TEST(EdgeCases, EmDroWithMoreMultiStartsThanAtoms) {
    stats::Rng rng(5);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(4, 2, 2.0, 0.05, rng);
    const models::Dataset train = pop.generate(pop.sample_task(rng), 12, rng);
    const dp::MixturePrior prior = dp::MixturePrior::single(
        stats::MultivariateNormal::isotropic(linalg::zeros(train.dim()), 1.0));
    const auto loss = models::make_logistic_loss();
    core::EmDroOptions options;
    options.multi_start_atoms = 50;  // > component count; must clamp
    const core::EmDroSolver solver(train, *loss, prior, dro::AmbiguitySet::wasserstein(0.1),
                                   1.0, options);
    EXPECT_NO_THROW(solver.solve());
}

TEST(EdgeCases, DpmmWithTwoObservations) {
    stats::Rng rng(6);
    dp::DpmmConfig config;
    config.base_mean = {0.0};
    config.base_covariance = linalg::Matrix(1, 1, {10.0});
    config.within_covariance = linalg::Matrix(1, 1, {0.5});
    config.num_sweeps = 30;
    dp::DpmmGibbs sampler({{0.1}, {-0.1}}, config);
    sampler.run(rng);
    EXPECT_GE(sampler.num_clusters(), 1u);
    EXPECT_LE(sampler.num_clusters(), 2u);
    const dp::MixturePrior prior = sampler.extract_prior();
    EXPECT_NEAR(linalg::sum(prior.weights()), 1.0, 1e-12);
}

TEST(EdgeCases, RadiusZeroEverywhereIsErm) {
    stats::Rng rng(7);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(3, 2, 2.0, 0.05, rng);
    const models::Dataset d = pop.generate(pop.sample_task(rng), 15, rng);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const double erm = dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::none());
    for (const dro::AmbiguityKind kind :
         {dro::AmbiguityKind::kWasserstein, dro::AmbiguityKind::kKl,
          dro::AmbiguityKind::kChiSquare}) {
        EXPECT_NEAR(dro::robust_loss(theta, d, *loss, {kind, 0.0}), erm, 1e-10)
            << dro::ambiguity_name(kind);
    }
}

TEST(EdgeCases, PerfectlySeparableDataWithHugeRadius) {
    // The norm penalty must prevent weight blow-up even on separable data.
    linalg::Matrix f(4, 3,
                     {2.0, 0.0, 1.0, 3.0, 0.0, 1.0, -2.0, 0.0, 1.0, -3.0, 0.0, 1.0});
    const models::Dataset d(std::move(f), {1.0, 1.0, -1.0, -1.0});
    const auto loss = models::make_logistic_loss();
    const dro::WassersteinDroObjective robust(d, *loss, 5.0);
    const auto r = optim::minimize_lbfgs(robust, linalg::zeros(3));
    EXPECT_LT(linalg::norm2(r.x), 10.0);
    EXPECT_TRUE(std::isfinite(r.value));
}

}  // namespace
}  // namespace drel
