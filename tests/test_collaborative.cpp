// Tests for the consensus-ADMM collaborative fleet extension.
#include <gtest/gtest.h>

#include "core/em_dro.hpp"
#include "data/task_generator.hpp"
#include "edgesim/collaborative.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {
namespace {

struct Fleet {
    data::TaskPopulation population;
    data::TaskSpec task;
    std::vector<models::Dataset> local;   ///< all devices share the task
    models::Dataset test;
    dp::MixturePrior prior;
};

Fleet make_fleet(std::uint64_t seed, std::size_t devices, std::size_t samples_each) {
    stats::Rng rng(seed);
    data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(5, 3, 2.5, 0.05, rng);
    data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    std::vector<models::Dataset> local;
    for (std::size_t j = 0; j < devices; ++j) {
        local.push_back(population.generate(task, samples_each, rng, options));
    }
    models::Dataset test = population.generate(task, 2500, rng, options);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return Fleet{std::move(population), std::move(task), std::move(local), std::move(test),
                 dp::MixturePrior(std::move(weights), std::move(atoms))};
}

std::vector<const models::Dataset*> pointers(const std::vector<models::Dataset>& v,
                                             std::size_t count) {
    std::vector<const models::Dataset*> out;
    for (std::size_t i = 0; i < count; ++i) out.push_back(&v[i]);
    return out;
}

TEST(Collaborative, SingleDeviceMatchesEmDroSolver) {
    const Fleet f = make_fleet(1, 1, 24);
    CollaborativeConfig config;
    config.admm.max_iterations = 150;
    const CollaborativeResult collab = collaborative_fit(pointers(f.local, 1), f.prior, config);

    const auto loss = models::make_logistic_loss();
    const dro::AmbiguitySet set = dro::AmbiguitySet::wasserstein(
        dro::radius_for_sample_size(config.radius_coefficient, f.local[0].size()));
    const core::EmDroSolver solo(f.local[0], *loss, f.prior, set, config.transfer_weight);
    const core::EmDroResult r = solo.solve_from(f.prior.mean());
    EXPECT_NEAR(collab.objective, r.objective, 2e-3);
}

TEST(Collaborative, ObjectiveTraceMonotone) {
    const Fleet f = make_fleet(2, 4, 12);
    const CollaborativeResult r = collaborative_fit(pointers(f.local, 4), f.prior);
    for (std::size_t i = 1; i < r.objective_trace.size(); ++i) {
        EXPECT_LE(r.objective_trace[i], r.objective_trace[i - 1] + 1e-7);
    }
    EXPECT_GE(r.total_admm_iterations, r.outer_iterations);
}

TEST(Collaborative, MoreDevicesImproveAccuracy) {
    // Same-task devices: pooling evidence through consensus must help on
    // average over seeds.
    double solo_total = 0.0;
    double group_total = 0.0;
    const int trials = 4;
    for (int t = 0; t < trials; ++t) {
        const Fleet f = make_fleet(10 + t, 6, 10);
        const CollaborativeResult solo = collaborative_fit(pointers(f.local, 1), f.prior);
        const CollaborativeResult group = collaborative_fit(pointers(f.local, 6), f.prior);
        solo_total += models::accuracy(solo.model, f.test);
        group_total += models::accuracy(group.model, f.test);
    }
    EXPECT_GT(group_total / trials, solo_total / trials - 1e-9);
}

TEST(Collaborative, ResponsibilitiesIdentifyTaskMode) {
    const Fleet f = make_fleet(3, 5, 20);
    const CollaborativeResult r = collaborative_fit(pointers(f.local, 5), f.prior);
    EXPECT_EQ(linalg::argmax(r.responsibilities), f.task.mode_index);
}

TEST(Collaborative, Validation) {
    const Fleet f = make_fleet(4, 2, 10);
    EXPECT_THROW(collaborative_fit({}, f.prior), std::invalid_argument);
    EXPECT_THROW(collaborative_fit({nullptr}, f.prior), std::invalid_argument);
    const models::Dataset wrong(linalg::Matrix(2, 2, {1.0, 1.0, -1.0, 1.0}), {1.0, -1.0});
    EXPECT_THROW(collaborative_fit({&wrong}, f.prior), std::invalid_argument);
    CollaborativeConfig bad;
    bad.transfer_weight = -1.0;
    EXPECT_THROW(collaborative_fit(pointers(f.local, 1), f.prior, bad),
                 std::invalid_argument);
}

TEST(Collaborative, WorksWithKlAmbiguity) {
    const Fleet f = make_fleet(5, 3, 15);
    CollaborativeConfig config;
    config.ambiguity = dro::AmbiguityKind::kKl;
    config.max_outer_iterations = 10;
    const CollaborativeResult r = collaborative_fit(pointers(f.local, 3), f.prior, config);
    EXPECT_GT(models::accuracy(r.model, f.test), 0.6);
}

}  // namespace
}  // namespace drel::edgesim
