// Tests for the multiclass softmax extension: model, objectives, generator,
// and the SoftmaxEdgeLearner end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/softmax_edge_learner.hpp"
#include "data/multiclass_generator.hpp"
#include "models/softmax.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

using models::SoftmaxErmObjective;
using models::SoftmaxModel;
using models::SoftmaxWassersteinObjective;

models::Dataset multiclass_fixture(stats::Rng& rng, std::size_t n, std::size_t num_classes,
                                   data::MulticlassTaskSpec* task_out = nullptr) {
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(5, num_classes, 3, 2.5, 0.05, rng);
    const data::MulticlassTaskSpec task = pop.sample_task(rng);
    if (task_out) *task_out = task;
    data::MulticlassDataOptions options;
    options.margin_scale = 2.0;
    return pop.generate(task, n, rng, options);
}

// ------------------------------------------------------------------- model

TEST(SoftmaxModel, ShapeAndAccessors) {
    const SoftmaxModel model(3, linalg::Vector(12, 0.5));
    EXPECT_EQ(model.num_classes(), 3u);
    EXPECT_EQ(model.feature_dim(), 4u);
    EXPECT_EQ(model.class_weights(2).size(), 4u);
    EXPECT_THROW(model.class_weights(3), std::out_of_range);
    EXPECT_THROW(SoftmaxModel(1, linalg::Vector(4, 0.0)), std::invalid_argument);
    EXPECT_THROW(SoftmaxModel(3, linalg::Vector(10, 0.0)), std::invalid_argument);
}

TEST(SoftmaxModel, ProbabilitiesFormDistribution) {
    stats::Rng rng(1);
    const SoftmaxModel model(4, rng.standard_normal_vector(4 * 6));
    const linalg::Vector x = rng.standard_normal_vector(6);
    const linalg::Vector p = model.probabilities(x);
    EXPECT_NEAR(linalg::sum(p), 1.0, 1e-12);
    for (const double v : p) EXPECT_GT(v, 0.0);
    EXPECT_EQ(model.predict(x), linalg::argmax(p));
}

TEST(SoftmaxModel, ExampleLossMatchesManual) {
    stats::Rng rng(2);
    const SoftmaxModel model(3, rng.standard_normal_vector(3 * 4));
    const linalg::Vector x = rng.standard_normal_vector(4);
    const linalg::Vector p = model.probabilities(x);
    EXPECT_NEAR(model.example_loss(x, 1), -std::log(p[1]), 1e-10);
}

TEST(SoftmaxModel, TwoClassSoftmaxMatchesLogistic) {
    // W = [w; 0] makes softmax CE(class 0) equal the logistic loss of margin
    // <w, x>.
    stats::Rng rng(3);
    const linalg::Vector w = rng.standard_normal_vector(4);
    linalg::Vector stacked = w;
    stacked.insert(stacked.end(), 4, 0.0);
    const SoftmaxModel model(2, stacked);
    const linalg::Vector x = rng.standard_normal_vector(4);
    const double margin = linalg::dot(w, x);
    EXPECT_NEAR(model.example_loss(x, 0), std::log1p(std::exp(-margin)), 1e-10);
}

TEST(SoftmaxModel, PairwiseFeatureNormKnownCase) {
    // Two classes, d=3 (2 perturbable + bias): rows (1,0,b1), (0,2,b2).
    const SoftmaxModel model(2, {1.0, 0.0, 5.0, 0.0, 2.0, -3.0});
    EXPECT_NEAR(model.pairwise_feature_norm(2), std::sqrt(1.0 + 4.0), 1e-12);
    // Full dim includes the bias difference.
    EXPECT_NEAR(model.pairwise_feature_norm(3), std::sqrt(1.0 + 4.0 + 64.0), 1e-12);
}

// -------------------------------------------------------------- objectives

TEST(SoftmaxErm, GradientMatchesNumerical) {
    stats::Rng rng(4);
    const models::Dataset d = multiclass_fixture(rng, 20, 3);
    const SoftmaxErmObjective objective(d, 3, 0.05);
    const linalg::Vector theta = rng.standard_normal_vector(objective.dim());
    EXPECT_LT(linalg::distance2(objective.gradient(theta),
                                objective.numerical_gradient(theta)),
              1e-4);
}

TEST(SoftmaxErm, RejectsBadLabels) {
    const models::Dataset bad(linalg::Matrix(2, 3, {1.0, 0.0, 1.0, 0.0, 1.0, 1.0}),
                              {0.0, 5.0});
    EXPECT_THROW(SoftmaxErmObjective(bad, 3), std::invalid_argument);
    const models::Dataset fractional(linalg::Matrix(1, 2, {1.0, 1.0}), {0.5});
    EXPECT_THROW(SoftmaxErmObjective(fractional, 3), std::invalid_argument);
}

TEST(SoftmaxErm, TrainingSeparatesEasyData) {
    stats::Rng rng(5);
    data::MulticlassTaskSpec task;
    const models::Dataset train = multiclass_fixture(rng, 300, 3, &task);
    const SoftmaxErmObjective objective(train, 3, 0.01);
    const auto r = optim::minimize_lbfgs(objective, linalg::zeros(objective.dim()));
    const SoftmaxModel model(3, r.x);
    EXPECT_GT(models::softmax_accuracy(model, train), 0.8);
}

TEST(SoftmaxWasserstein, GradientMatchesNumerical) {
    stats::Rng rng(6);
    const models::Dataset d = multiclass_fixture(rng, 15, 3);
    const SoftmaxWassersteinObjective objective(d, 3, 0.3, 0.01);
    const linalg::Vector theta = rng.standard_normal_vector(objective.dim());
    EXPECT_LT(linalg::distance2(objective.gradient(theta),
                                objective.numerical_gradient(theta)),
              1e-4);
}

TEST(SoftmaxWasserstein, ReducesToErmAtZeroRadius) {
    stats::Rng rng(7);
    const models::Dataset d = multiclass_fixture(rng, 15, 3);
    const SoftmaxErmObjective erm(d, 3);
    const SoftmaxWassersteinObjective robust(d, 3, 0.0);
    const linalg::Vector theta = rng.standard_normal_vector(erm.dim());
    EXPECT_DOUBLE_EQ(robust.value(theta), erm.value(theta));
}

TEST(SoftmaxWasserstein, PenaltyMatchesModelNorm) {
    stats::Rng rng(8);
    const models::Dataset d = multiclass_fixture(rng, 15, 3);
    const double rho = 0.4;
    const SoftmaxErmObjective erm(d, 3);
    const SoftmaxWassersteinObjective robust(d, 3, rho);
    const linalg::Vector theta = rng.standard_normal_vector(erm.dim());
    const SoftmaxModel model(3, theta);
    EXPECT_NEAR(robust.value(theta) - erm.value(theta),
                rho * model.pairwise_feature_norm(d.dim() - 1), 1e-10);
}

TEST(SoftmaxWasserstein, MonotoneInRadius) {
    stats::Rng rng(9);
    const models::Dataset d = multiclass_fixture(rng, 15, 4);
    const linalg::Vector theta = rng.standard_normal_vector(4 * d.dim());
    double previous = -1.0;
    for (const double rho : {0.0, 0.1, 0.3, 0.9}) {
        const SoftmaxWassersteinObjective robust(d, 4, rho);
        const double value = robust.value(theta);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

TEST(SoftmaxWasserstein, RobustTrainingShrinksPairwiseNorm) {
    stats::Rng rng(10);
    const models::Dataset d = multiclass_fixture(rng, 60, 3);
    double previous = 1e18;
    for (const double rho : {0.0, 0.2, 0.8}) {
        const SoftmaxWassersteinObjective robust(d, 3, rho);
        const auto r = optim::minimize_lbfgs(robust, linalg::zeros(robust.dim()));
        const double norm = SoftmaxModel(3, r.x).pairwise_feature_norm(d.dim() - 1);
        EXPECT_LE(norm, previous + 1e-6);
        previous = norm;
    }
}

// --------------------------------------------------------------- generator

TEST(MulticlassGenerator, ShapesAndLabelRange) {
    stats::Rng rng(11);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(4, 5, 2, 2.0, 0.05, rng);
    EXPECT_EQ(pop.stacked_dim(), 25u);
    const data::MulticlassTaskSpec task = pop.sample_task(rng);
    const models::Dataset d = pop.generate(task, 100, rng);
    EXPECT_EQ(d.dim(), 5u);
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_DOUBLE_EQ(d.feature_row(i)[4], 1.0);
        EXPECT_GE(d.label(i), 0.0);
        EXPECT_LT(d.label(i), 5.0);
    }
}

TEST(MulticlassGenerator, AllClassesAppear) {
    stats::Rng rng(12);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(6, 3, 2, 2.0, 0.05, rng);
    const models::Dataset d = pop.generate(pop.sample_task(rng), 600, rng);
    std::vector<int> counts(3, 0);
    for (std::size_t i = 0; i < d.size(); ++i) ++counts[static_cast<int>(d.label(i))];
    for (const int c : counts) EXPECT_GT(c, 30);
}

TEST(MulticlassGenerator, TrueModelBeatsChance) {
    stats::Rng rng(13);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(6, 4, 2, 3.0, 0.02, rng);
    const data::MulticlassTaskSpec task = pop.sample_task(rng);
    data::MulticlassDataOptions options;
    options.margin_scale = 4.0;
    const models::Dataset d = pop.generate(task, 2000, rng, options);
    const SoftmaxModel oracle(4, task.stacked_weights);
    EXPECT_GT(models::softmax_accuracy(oracle, d), 0.7);
}

TEST(MulticlassGenerator, Validation) {
    stats::Rng rng(14);
    EXPECT_THROW(data::MulticlassPopulation::make_synthetic(0, 3, 2, 2.0, 0.05, rng),
                 std::invalid_argument);
    EXPECT_THROW(data::MulticlassPopulation::make_synthetic(4, 1, 2, 2.0, 0.05, rng),
                 std::invalid_argument);
}

// ----------------------------------------------------------- edge learner

dp::MixturePrior multiclass_oracle_prior(const data::MulticlassPopulation& pop) {
    linalg::Vector weights(pop.num_modes(), 1.0);
    return dp::MixturePrior(std::move(weights), pop.mode_distributions());
}

TEST(SoftmaxEdgeLearner, BeatsLocalSoftmaxErmAtSmallN) {
    double em_total = 0.0;
    double local_total = 0.0;
    const int trials = 4;
    for (int t = 0; t < trials; ++t) {
        stats::Rng rng(100 + t);
        const data::MulticlassPopulation pop =
            data::MulticlassPopulation::make_synthetic(5, 3, 3, 2.5, 0.05, rng);
        const data::MulticlassTaskSpec task = pop.sample_task(rng);
        data::MulticlassDataOptions options;
        options.margin_scale = 2.0;
        const models::Dataset train = pop.generate(task, 18, rng, options);
        const models::Dataset test = pop.generate(task, 2000, rng, options);

        core::SoftmaxEdgeLearnerConfig config;
        config.num_classes = 3;
        config.transfer_weight = 2.0;
        config.em.max_outer_iterations = 15;
        const core::SoftmaxEdgeLearner learner(multiclass_oracle_prior(pop), config);
        em_total += models::softmax_accuracy(learner.fit(train).model, test);

        const SoftmaxErmObjective erm(train, 3);
        const auto r = optim::minimize_lbfgs(erm, linalg::zeros(erm.dim()));
        local_total += models::softmax_accuracy(SoftmaxModel(3, r.x), test);
    }
    EXPECT_GT(em_total / trials, local_total / trials + 0.03);
}

TEST(SoftmaxEdgeLearner, EmTraceMonotone) {
    stats::Rng rng(200);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(4, 3, 3, 2.5, 0.05, rng);
    const data::MulticlassTaskSpec task = pop.sample_task(rng);
    const models::Dataset train = pop.generate(task, 20, rng);
    core::SoftmaxEdgeLearnerConfig config;
    config.num_classes = 3;
    const core::SoftmaxEdgeLearner learner(multiclass_oracle_prior(pop), config);
    const core::SoftmaxFitResult fit = learner.fit(train);
    for (std::size_t i = 1; i < fit.trace.objective.size(); ++i) {
        EXPECT_LE(fit.trace.objective[i], fit.trace.objective[i - 1] + 1e-7);
    }
    EXPECT_NEAR(linalg::sum(fit.responsibilities), 1.0, 1e-9);
}

TEST(SoftmaxEdgeLearner, IdentifiesTrueMode) {
    stats::Rng rng(300);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(5, 3, 3, 3.0, 0.02, rng);
    const data::MulticlassTaskSpec task = pop.sample_task(rng);
    data::MulticlassDataOptions options;
    options.margin_scale = 3.0;
    const models::Dataset train = pop.generate(task, 80, rng, options);
    core::SoftmaxEdgeLearnerConfig config;
    config.num_classes = 3;
    const core::SoftmaxEdgeLearner learner(multiclass_oracle_prior(pop), config);
    const core::SoftmaxFitResult fit = learner.fit(train);
    EXPECT_EQ(fit.map_component, task.mode_index);
}

TEST(SoftmaxEdgeLearner, Validation) {
    stats::Rng rng(400);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(4, 3, 2, 2.0, 0.05, rng);
    core::SoftmaxEdgeLearnerConfig config;
    config.num_classes = 4;  // mismatched with the 3-class prior dimension
    EXPECT_THROW(core::SoftmaxEdgeLearner(multiclass_oracle_prior(pop), config),
                 std::invalid_argument);
}

}  // namespace
}  // namespace drel
