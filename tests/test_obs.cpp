// Unit tests for the observability layer: the JSON module, the sharded
// metrics registry (determinism contract included), and the trace
// collector. The end-to-end golden/diff coverage lives in
// test_golden_metrics.cpp; cross-thread-count equality of real workloads in
// test_concurrency.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drel::obs {
namespace {

// -------------------------------------------------------------------- json

TEST(Json, DumpSortsObjectKeysDeterministically) {
    JsonValue::Object object;
    object["zeta"] = std::uint64_t{1};
    object["alpha"] = std::uint64_t{2};
    object["mid"] = std::uint64_t{3};
    const JsonValue doc{object};
    EXPECT_EQ(doc.dump(0), R"({"alpha":2,"mid":3,"zeta":1})");
}

TEST(Json, UintValuesRoundTripExactly) {
    const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
    JsonValue::Object object;
    object["count"] = big;
    const std::string text = JsonValue(object).dump(0);
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
    const JsonValue parsed = JsonValue::parse(text);
    EXPECT_TRUE(parsed.at("count").is_uint());
    EXPECT_EQ(parsed.at("count").as_uint(), big);
}

TEST(Json, DoubleFormattingIsIntegralWhenPossible) {
    EXPECT_EQ(format_json_double(12.0), "12");
    EXPECT_EQ(format_json_double(-3.0), "-3");
    const std::string text = format_json_double(0.1);
    EXPECT_DOUBLE_EQ(std::stod(text), 0.1);
    EXPECT_THROW(format_json_double(std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(Json, ParseRoundTripsNestedDocument) {
    const std::string text =
        R"({"array":[1,2.5,"three",true,null],"nested":{"k":"v"}})";
    const JsonValue doc = JsonValue::parse(text);
    ASSERT_TRUE(doc.is_object());
    const auto& array = doc.at("array").as_array();
    ASSERT_EQ(array.size(), 5u);
    EXPECT_EQ(array[0].as_uint(), 1u);
    EXPECT_DOUBLE_EQ(array[1].as_number(), 2.5);
    EXPECT_EQ(array[2].as_string(), "three");
    EXPECT_TRUE(array[3].as_bool());
    EXPECT_TRUE(array[4].is_null());
    EXPECT_EQ(doc.at("nested").at("k").as_string(), "v");
    EXPECT_EQ(JsonValue::parse(doc.dump(2)).dump(0), doc.dump(0));
}

TEST(Json, ParserRejectsMalformedInput) {
    EXPECT_THROW(JsonValue::parse("{"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("nul"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), std::invalid_argument);
}

TEST(Json, AccessorsThrowOnKindMismatch) {
    const JsonValue v{std::uint64_t{7}};
    EXPECT_THROW(v.as_string(), std::invalid_argument);
    EXPECT_THROW(v.as_object(), std::invalid_argument);
    EXPECT_THROW(v.at("missing"), std::invalid_argument);
    JsonValue::Object object;
    object["present"] = true;
    const JsonValue doc{object};
    EXPECT_TRUE(doc.contains("present"));
    EXPECT_FALSE(doc.contains("absent"));
    EXPECT_THROW(doc.at("absent"), std::invalid_argument);
}

// ----------------------------------------------------------------- metrics

TEST(MetricsDeterminism, CounterAggregatesExactlyAcrossThreads) {
    Counter counter;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(counter.total(), kThreads * kPerThread);
    counter.reset();
    EXPECT_EQ(counter.total(), 0u);
}

TEST(Metrics, HistogramBucketsAreUpperInclusive) {
    Histogram histogram({2, 4, 8});
    for (const std::uint64_t v : {1ull, 2ull, 3ull, 4ull, 8ull, 9ull, 100ull}) {
        histogram.observe(v);
    }
    const std::vector<std::uint64_t> counts = histogram.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);          // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);              // 1, 2
    EXPECT_EQ(counts[1], 2u);              // 3, 4
    EXPECT_EQ(counts[2], 1u);              // 8
    EXPECT_EQ(counts[3], 2u);              // 9, 100
    EXPECT_EQ(histogram.count(), 7u);
    EXPECT_EQ(histogram.sum(), 1 + 2 + 3 + 4 + 8 + 9 + 100u);
}

TEST(Metrics, RegistryHandlesAreStableAndNamed) {
    Registry registry;
    Counter& a = registry.counter("test.counter");
    Counter& b = registry.counter("test.counter");
    EXPECT_EQ(&a, &b);
    Histogram& h = registry.histogram("test.histogram", {1, 2});
    EXPECT_EQ(&h, &registry.histogram("test.histogram", {1, 2}));
    EXPECT_THROW(registry.histogram("test.histogram", {1, 2, 3}), std::invalid_argument);
}

TEST(Metrics, SnapshotIncludesOnlyTouchedMetrics) {
    Registry registry;
    registry.counter("touched");
    registry.counter("untouched");
    registry.gauge("gauge.untouched");
    registry.counter("touched").add(3);
    registry.gauge("gauge.touched").set(1.5);
    registry.histogram("hist.touched", {10}).observe(4);
    registry.histogram("hist.untouched", {10});
    registry.timing("walltime").record_seconds(0.5);

    const JsonValue snapshot = registry.deterministic_snapshot();
    const auto& counters = snapshot.at("counters").as_object();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters.at("touched").as_uint(), 3u);
    EXPECT_EQ(snapshot.at("gauges").as_object().size(), 1u);
    const auto& histograms = snapshot.at("histograms").as_object();
    ASSERT_EQ(histograms.size(), 1u);
    EXPECT_EQ(histograms.at("hist.touched").at("count").as_uint(), 1u);
    // Wall clock never leaks into the deterministic section.
    EXPECT_FALSE(snapshot.contains("timings"));
    const std::string text = registry.deterministic_json();
    EXPECT_EQ(text.find("walltime"), std::string::npos);
    EXPECT_EQ(JsonValue::parse(text).at("schema_version").as_uint(), kMetricsSchemaVersion);

    // After reset the snapshot is empty again: pure function of the run.
    registry.reset();
    const JsonValue cleared = registry.deterministic_snapshot();
    EXPECT_TRUE(cleared.at("counters").as_object().empty());
    EXPECT_TRUE(cleared.at("gauges").as_object().empty());
    EXPECT_TRUE(cleared.at("histograms").as_object().empty());
}

TEST(Metrics, TimingSnapshotTracksCountTotalMinMax) {
    Registry registry;
    TimingStat& stat = registry.timing("phase");
    stat.record_seconds(0.25);
    stat.record_seconds(0.75);
    const TimingStat::Snapshot s = stat.snapshot();
    EXPECT_EQ(s.count, 2u);
    EXPECT_DOUBLE_EQ(s.total_seconds, 1.0);
    EXPECT_DOUBLE_EQ(s.min_seconds, 0.25);
    EXPECT_DOUBLE_EQ(s.max_seconds, 0.75);
    const JsonValue timings = registry.timing_snapshot();
    EXPECT_DOUBLE_EQ(timings.at("phase").at("total_seconds").as_number(), 1.0);
}

// ------------------------------------------------------------------- trace

TEST(Trace, SpansRecordOnlyWhenEnabled) {
    TraceCollector& collector = TraceCollector::global();
    collector.disable();
    collector.clear();
    { DREL_TRACE_SPAN("disabled.span"); }
    EXPECT_EQ(collector.event_count(), 0u);

    const std::string path = ::testing::TempDir() + "drel_trace_test.json";
    collector.enable(path);
    {
        DREL_TRACE_SPAN("outer");
        DREL_TRACE_SPAN("inner");
    }
    collector.disable();
    EXPECT_EQ(collector.event_count(), 2u);

    const JsonValue doc = JsonValue::parse(collector.json());
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);
    for (const JsonValue& event : events) {
        EXPECT_EQ(event.at("ph").as_string(), "X");
        EXPECT_EQ(event.at("cat").as_string(), "drel");
        EXPECT_TRUE(event.at("ts").is_number());
        EXPECT_TRUE(event.at("dur").is_number());
    }

    ASSERT_TRUE(collector.flush());
    EXPECT_EQ(collector.event_count(), 0u);  // flush clears the buffer
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_TRUE(JsonValue::parse(buffer.str()).contains("traceEvents"));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace drel::obs
