// Unit tests for the observability layer: the JSON module, the sharded
// metrics registry (determinism contract included), and the trace
// collector. The end-to-end golden/diff coverage lives in
// test_golden_metrics.cpp; cross-thread-count equality of real workloads in
// test_concurrency.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace drel::obs {
namespace {

// -------------------------------------------------------------------- json

TEST(Json, DumpSortsObjectKeysDeterministically) {
    JsonValue::Object object;
    object["zeta"] = std::uint64_t{1};
    object["alpha"] = std::uint64_t{2};
    object["mid"] = std::uint64_t{3};
    const JsonValue doc{object};
    EXPECT_EQ(doc.dump(0), R"({"alpha":2,"mid":3,"zeta":1})");
}

TEST(Json, UintValuesRoundTripExactly) {
    const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
    JsonValue::Object object;
    object["count"] = big;
    const std::string text = JsonValue(object).dump(0);
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
    const JsonValue parsed = JsonValue::parse(text);
    EXPECT_TRUE(parsed.at("count").is_uint());
    EXPECT_EQ(parsed.at("count").as_uint(), big);
}

TEST(Json, DoubleFormattingIsIntegralWhenPossible) {
    EXPECT_EQ(format_json_double(12.0), "12");
    EXPECT_EQ(format_json_double(-3.0), "-3");
    const std::string text = format_json_double(0.1);
    EXPECT_DOUBLE_EQ(std::stod(text), 0.1);
    EXPECT_THROW(format_json_double(std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(Json, ParseRoundTripsNestedDocument) {
    const std::string text =
        R"({"array":[1,2.5,"three",true,null],"nested":{"k":"v"}})";
    const JsonValue doc = JsonValue::parse(text);
    ASSERT_TRUE(doc.is_object());
    const auto& array = doc.at("array").as_array();
    ASSERT_EQ(array.size(), 5u);
    EXPECT_EQ(array[0].as_uint(), 1u);
    EXPECT_DOUBLE_EQ(array[1].as_number(), 2.5);
    EXPECT_EQ(array[2].as_string(), "three");
    EXPECT_TRUE(array[3].as_bool());
    EXPECT_TRUE(array[4].is_null());
    EXPECT_EQ(doc.at("nested").at("k").as_string(), "v");
    EXPECT_EQ(JsonValue::parse(doc.dump(2)).dump(0), doc.dump(0));
}

TEST(Json, ParserRejectsMalformedInput) {
    EXPECT_THROW(JsonValue::parse("{"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("nul"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), std::invalid_argument);
}

TEST(Json, AccessorsThrowOnKindMismatch) {
    const JsonValue v{std::uint64_t{7}};
    EXPECT_THROW(v.as_string(), std::invalid_argument);
    EXPECT_THROW(v.as_object(), std::invalid_argument);
    EXPECT_THROW(v.at("missing"), std::invalid_argument);
    JsonValue::Object object;
    object["present"] = true;
    const JsonValue doc{object};
    EXPECT_TRUE(doc.contains("present"));
    EXPECT_FALSE(doc.contains("absent"));
    EXPECT_THROW(doc.at("absent"), std::invalid_argument);
}

// ----------------------------------------------------------------- metrics

TEST(MetricsDeterminism, CounterAggregatesExactlyAcrossThreads) {
    Counter counter;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(counter.total(), kThreads * kPerThread);
    counter.reset();
    EXPECT_EQ(counter.total(), 0u);
}

TEST(Metrics, HistogramBucketsAreUpperInclusive) {
    Histogram histogram({2, 4, 8});
    for (const std::uint64_t v : {1ull, 2ull, 3ull, 4ull, 8ull, 9ull, 100ull}) {
        histogram.observe(v);
    }
    const std::vector<std::uint64_t> counts = histogram.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);          // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);              // 1, 2
    EXPECT_EQ(counts[1], 2u);              // 3, 4
    EXPECT_EQ(counts[2], 1u);              // 8
    EXPECT_EQ(counts[3], 2u);              // 9, 100
    EXPECT_EQ(histogram.count(), 7u);
    EXPECT_EQ(histogram.sum(), 1 + 2 + 3 + 4 + 8 + 9 + 100u);
}

TEST(Metrics, RegistryHandlesAreStableAndNamed) {
    Registry registry;
    Counter& a = registry.counter("test.counter");
    Counter& b = registry.counter("test.counter");
    EXPECT_EQ(&a, &b);
    Histogram& h = registry.histogram("test.histogram", {1, 2});
    EXPECT_EQ(&h, &registry.histogram("test.histogram", {1, 2}));
    EXPECT_THROW(registry.histogram("test.histogram", {1, 2, 3}), std::invalid_argument);
}

TEST(Metrics, SnapshotIncludesOnlyTouchedMetrics) {
    Registry registry;
    registry.counter("touched");
    registry.counter("untouched");
    registry.gauge("gauge.untouched");
    registry.counter("touched").add(3);
    registry.gauge("gauge.touched").set(1.5);
    registry.histogram("hist.touched", {10}).observe(4);
    registry.histogram("hist.untouched", {10});
    registry.timing("walltime").record_seconds(0.5);

    const JsonValue snapshot = registry.deterministic_snapshot();
    const auto& counters = snapshot.at("counters").as_object();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters.at("touched").as_uint(), 3u);
    EXPECT_EQ(snapshot.at("gauges").as_object().size(), 1u);
    const auto& histograms = snapshot.at("histograms").as_object();
    ASSERT_EQ(histograms.size(), 1u);
    EXPECT_EQ(histograms.at("hist.touched").at("count").as_uint(), 1u);
    // Wall clock never leaks into the deterministic section.
    EXPECT_FALSE(snapshot.contains("timings"));
    const std::string text = registry.deterministic_json();
    EXPECT_EQ(text.find("walltime"), std::string::npos);
    EXPECT_EQ(JsonValue::parse(text).at("schema_version").as_uint(), kMetricsSchemaVersion);

    // After reset the snapshot is empty again: pure function of the run.
    registry.reset();
    const JsonValue cleared = registry.deterministic_snapshot();
    EXPECT_TRUE(cleared.at("counters").as_object().empty());
    EXPECT_TRUE(cleared.at("gauges").as_object().empty());
    EXPECT_TRUE(cleared.at("histograms").as_object().empty());
}

TEST(Metrics, TimingSnapshotTracksCountTotalMinMax) {
    Registry registry;
    TimingStat& stat = registry.timing("phase");
    stat.record_seconds(0.25);
    stat.record_seconds(0.75);
    const TimingStat::Snapshot s = stat.snapshot();
    EXPECT_EQ(s.count, 2u);
    EXPECT_DOUBLE_EQ(s.total_seconds, 1.0);
    EXPECT_DOUBLE_EQ(s.min_seconds, 0.25);
    EXPECT_DOUBLE_EQ(s.max_seconds, 0.75);
    const JsonValue timings = registry.timing_snapshot();
    EXPECT_DOUBLE_EQ(timings.at("phase").at("total_seconds").as_number(), 1.0);
}

TEST(Metrics, HistogramQuantileBoundIsNearestRankBucketUpperBound) {
    Histogram histogram({10, 20, 40});
    // 4 observations: buckets [<=10]=2, [<=20]=1, [<=40]=1.
    for (const std::uint64_t v : {1ull, 10ull, 15ull, 33ull}) histogram.observe(v);
    EXPECT_EQ(histogram.quantile_bound(0.0), 10u);    // rank 1 -> first bucket
    EXPECT_EQ(histogram.quantile_bound(0.5), 10u);    // rank 2
    EXPECT_EQ(histogram.quantile_bound(0.75), 20u);   // rank 3
    EXPECT_EQ(histogram.quantile_bound(1.0), 40u);    // rank 4
    EXPECT_THROW(histogram.quantile_bound(1.5), std::invalid_argument);
    EXPECT_THROW(histogram.quantile_bound(-0.1), std::invalid_argument);

    // Values past the last bound land in the overflow bucket, which has no
    // upper bound: the sentinel tells the caller the quantile is unbounded.
    histogram.observe(1000);
    histogram.observe(1000);
    EXPECT_EQ(histogram.quantile_bound(1.0), kHistogramOverflowBound);
    EXPECT_EQ(histogram.quantile_bound(0.5), 20u);    // rank 3 of 6

    Histogram empty({10, 20});
    EXPECT_EQ(empty.quantile_bound(0.99), 0u);
}

TEST(Metrics, HistogramSnapshotCopiesStateAndRoundTripsJson) {
    Histogram histogram({2, 4});
    for (const std::uint64_t v : {1ull, 3ull, 9ull}) histogram.observe(v);
    const HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.bounds, histogram.bounds());
    EXPECT_EQ(snap.buckets, histogram.bucket_counts());
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 13u);
    EXPECT_EQ(snap.quantile_bound(0.5), histogram.quantile_bound(0.5));
    // The snapshot is a value: mutating the live histogram does not move it.
    histogram.observe(1);
    EXPECT_EQ(snap.count, 3u);
    const JsonValue json = snap.to_json();
    EXPECT_EQ(json.at("count").as_uint(), 3u);
    EXPECT_EQ(json.at("buckets").as_array().size(), 3u);
}

// -------------------------------------------------------------- timeseries

TEST(Timeseries, LogSpacedBoundsDoubleUpToAndPastHi) {
    EXPECT_EQ(log_spaced_bounds(1, 8), (std::vector<std::uint64_t>{1, 2, 4, 8}));
    EXPECT_EQ(log_spaced_bounds(4, 30), (std::vector<std::uint64_t>{4, 8, 16, 32}));
    EXPECT_EQ(log_spaced_bounds(5, 5), (std::vector<std::uint64_t>{5}));
    EXPECT_THROW(log_spaced_bounds(0, 8), std::invalid_argument);
    EXPECT_THROW(log_spaced_bounds(8, 4), std::invalid_argument);
}

namespace series_test {
constexpr const char* kColumns[] = {"round", "events", "bytes"};
}

TEST(Timeseries, RoundSeriesStoresFixedSchemaRows) {
    RoundSeries series(series_test::kColumns, 3);
    EXPECT_EQ(series.num_columns(), 3u);
    EXPECT_EQ(series.num_rows(), 0u);
    series.append_row({0, 5, 100});
    series.append_row({1, 7, 50});
    ASSERT_EQ(series.num_rows(), 2u);
    EXPECT_EQ(series.at(1, 2), 50u);
    EXPECT_EQ(series.column_index("bytes"), 2u);
    EXPECT_STREQ(series.column_name(1), "events");
    EXPECT_EQ(series.column_max(2), 100u);
    EXPECT_THROW(series.column_index("missing"), std::invalid_argument);
    EXPECT_THROW(series.at(2, 0), std::out_of_range);

    const JsonValue json = series.to_json();
    EXPECT_EQ(json.dump(0),
              R"({"columns":["round","events","bytes"],"rows":[[0,5,100],[1,7,50]]})");
}

TEST(Timeseries, RoundSeriesRejectsBadRowsAndEmptySchema) {
    RoundSeries series(series_test::kColumns, 3);
    EXPECT_THROW(series.append_row({1, 2}), std::invalid_argument);
    EXPECT_THROW(series.append_row({1, 2, 3, 4}), std::invalid_argument);
    RoundSeries empty;
    EXPECT_THROW(empty.append_row({}), std::invalid_argument);
    EXPECT_EQ(empty.num_rows(), 0u);
}

TEST(Timeseries, FlightRecorderKeepsTheLastNEventsInOrder) {
    FlightRecorder recorder(4);
    EXPECT_FALSE(recorder.buffer_allocated());
    for (std::uint32_t i = 0; i < 10; ++i) {
        recorder.record(i, static_cast<double>(i) * 0.5, "round_start", i % 3, i);
    }
    EXPECT_TRUE(recorder.buffer_allocated());
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.total_recorded(), 10u);
    const std::vector<FlightEvent> events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 6u + i);  // oldest retained first
        EXPECT_EQ(events[i].round, 6u + i);
    }

    const JsonValue json = recorder.to_json();
    EXPECT_EQ(json.at("capacity").as_uint(), 4u);
    EXPECT_EQ(json.at("total_recorded").as_uint(), 10u);
    ASSERT_EQ(json.at("events").as_array().size(), 4u);
    EXPECT_EQ(json.at("events").as_array()[0].at("kind").as_string(), "round_start");

    const std::string path = ::testing::TempDir() + "drel_flight_recorder_test.json";
    ASSERT_TRUE(recorder.dump(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(JsonValue::parse(buffer.str()).at("total_recorded").as_uint(), 10u);
    std::remove(path.c_str());
    EXPECT_FALSE(recorder.dump("/nonexistent-dir/flight.json"));

    EXPECT_THROW(FlightRecorder(0), std::invalid_argument);
}

TEST(Timeseries, DisabledMetricsRecordNothingAndAllocateNothing) {
    // The DREL_METRICS=0 fast path, forced in-process: every recording site
    // early-returns like Counter::add, leaving zero observable state — and
    // the flight recorder's ring is never even allocated.
    ScopedMetricsEnabledForTesting disabled(false);
    ASSERT_FALSE(metrics_enabled());

    RoundSeries series(series_test::kColumns, 3);
    series.append_row({1, 2, 3});
    EXPECT_EQ(series.num_rows(), 0u);

    FlightRecorder recorder(8);
    recorder.record(0, 0.0, "round_start", 0, 0);
    EXPECT_FALSE(recorder.buffer_allocated());
    EXPECT_EQ(recorder.total_recorded(), 0u);
    EXPECT_TRUE(recorder.events().empty());

    Histogram histogram({2, 4});
    histogram.observe(1);
    EXPECT_EQ(histogram.count(), 0u);

    Counter counter;
    counter.add(5);
    EXPECT_EQ(counter.total(), 0u);

    {
        // Scopes nest: the innermost override wins, then restores.
        ScopedMetricsEnabledForTesting enabled(true);
        ASSERT_TRUE(metrics_enabled());
        series.append_row({1, 2, 3});
        EXPECT_EQ(series.num_rows(), 1u);
    }
    ASSERT_FALSE(metrics_enabled());
    series.append_row({4, 5, 6});
    EXPECT_EQ(series.num_rows(), 1u);
}

// ------------------------------------------------------------------ health

TEST(Health, FleetSeriesSchemaIsAlignedWithColumnEnum) {
    const RoundSeries series = health::make_fleet_series();
    ASSERT_EQ(series.num_columns(), health::kFleetNumColumns);
    EXPECT_EQ(series.column_index("round"), health::idx(health::FleetCol::kRound));
    EXPECT_EQ(series.column_index("uploads_rejected"),
              health::idx(health::FleetCol::kUploadsRejected));
    EXPECT_EQ(series.column_index("latency_p99_ms"),
              health::idx(health::FleetCol::kLatencyP99Ms));
    EXPECT_STREQ(series.column_name(health::idx(health::FleetCol::kQueueDepthAtClose)),
                 "queue_depth_at_close");
}

/// Builds a telemetry bundle with `rounds` series rows; `mutate(row, r)`
/// customizes each row before it is appended.
template <typename Fn>
health::FleetTelemetry make_telemetry(std::size_t rounds, Fn mutate) {
    health::FleetTelemetry telemetry;
    std::vector<std::uint64_t> row(health::kFleetNumColumns, 0);
    for (std::size_t r = 0; r < rounds; ++r) {
        row.assign(health::kFleetNumColumns, 0);
        row[health::idx(health::FleetCol::kRound)] = r;
        row[health::idx(health::FleetCol::kDevices)] = 100;
        row[health::idx(health::FleetCol::kUploadsAttempted)] = 100;
        mutate(row, r);
        telemetry.series.append_row(row);
    }
    return telemetry;
}

TEST(Health, RatioRuleFailsAndPinpointsFirstViolatingRound) {
    // Rejections start at round 2 and cross the 5% fail line at round 3.
    const health::FleetTelemetry telemetry =
        make_telemetry(5, [](std::vector<std::uint64_t>& row, std::size_t r) {
            row[health::idx(health::FleetCol::kUploadsRejected)] =
                r >= 3 ? 20 : (r == 2 ? 1 : 0);
        });
    health::Slo slo;
    slo.round_rules.push_back(
        {"backpressure_rejection_rate", "uploads_rejected", "uploads_attempted", 0.01, 0.05});
    const health::SloReport report = health::evaluate(slo, telemetry);
    EXPECT_EQ(report.verdict, health::Verdict::kFail);
    ASSERT_EQ(report.rules.size(), 1u);
    EXPECT_DOUBLE_EQ(report.rules[0].observed, 0.2);
    EXPECT_EQ(report.rules[0].first_violating_round, 3u);  // fail round, not warn round

    // With a higher fail line the same series only warns — pinpointing the
    // first WARN round instead.
    slo.round_rules[0].fail = 0.5;
    const health::SloReport warned = health::evaluate(slo, telemetry);
    EXPECT_EQ(warned.verdict, health::Verdict::kWarn);
    EXPECT_EQ(warned.rules[0].first_violating_round, 2u);
}

TEST(Health, AbsoluteRuleAndVacuousPassSemantics) {
    const health::FleetTelemetry telemetry =
        make_telemetry(3, [](std::vector<std::uint64_t>& row, std::size_t r) {
            row[health::idx(health::FleetCol::kQueueDepthAtClose)] = r == 1 ? 7 : 0;
        });
    health::Slo slo;
    slo.round_rules.push_back({"queue_depth_ceiling", "queue_depth_at_close", "", 4.0, 100.0});
    health::SloReport report = health::evaluate(slo, telemetry);
    EXPECT_EQ(report.verdict, health::Verdict::kWarn);
    EXPECT_DOUBLE_EQ(report.rules[0].observed, 7.0);
    EXPECT_EQ(report.rules[0].first_violating_round, 1u);

    // An empty series (e.g. a DREL_METRICS=0 run) passes vacuously.
    const health::FleetTelemetry empty;
    EXPECT_EQ(health::evaluate(slo, empty).verdict, health::Verdict::kPass);
    EXPECT_EQ(health::evaluate(health::Slo::fleet_default(), empty).verdict,
              health::Verdict::kPass);
}

TEST(Health, QuantileRuleJudgesLatencyHistogram) {
    Histogram latency(log_spaced_bounds(1, 1 << 10));
    for (int i = 0; i < 99; ++i) latency.observe(100);  // -> bucket bound 128
    latency.observe(900);                               // tail -> bound 1024

    health::FleetTelemetry telemetry;
    telemetry.upload_latency_ms = latency.snapshot();
    health::Slo slo;
    slo.latency_rules.push_back({"upload_latency_p99", 0.99, 200, 2000});
    health::SloReport report = health::evaluate(slo, telemetry);
    EXPECT_EQ(report.verdict, health::Verdict::kPass);
    EXPECT_DOUBLE_EQ(report.rules[0].observed, 128.0);

    slo.latency_rules[0] = {"upload_latency_p999", 0.999, 64, 512};
    report = health::evaluate(slo, telemetry);
    EXPECT_EQ(report.verdict, health::Verdict::kFail);  // p99.9 -> 1024 >= 512
    EXPECT_DOUBLE_EQ(report.rules[0].observed, 1024.0);

    // A quantile landing in the overflow bucket is unbounded: always a fail.
    Histogram overflowing({4});
    overflowing.observe(1000);
    telemetry.upload_latency_ms = overflowing.snapshot();
    slo.latency_rules[0] = {"upload_latency_p99", 0.99, 1u << 30, 1u << 31};
    EXPECT_EQ(health::evaluate(slo, telemetry).verdict, health::Verdict::kFail);
}

TEST(Health, TelemetryJsonSeparatesPartitionScopedData) {
    health::FleetTelemetry telemetry =
        make_telemetry(2, [](std::vector<std::uint64_t>&, std::size_t) {});
    telemetry.shard_devices = {50, 50};
    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), telemetry);

    const JsonValue full = telemetry.to_json(&slo, /*include_partition=*/true);
    EXPECT_TRUE(full.contains("partition"));
    EXPECT_EQ(full.at("partition").at("shard_devices").as_array().size(), 2u);
    EXPECT_EQ(full.at("slo").at("verdict").as_string(), "pass");

    // The byte-identity surface: no partition block, same everything else.
    const JsonValue main_only = telemetry.to_json(&slo, /*include_partition=*/false);
    EXPECT_FALSE(main_only.contains("partition"));
    EXPECT_EQ(main_only.at("series").dump(0), full.at("series").dump(0));
}

// ------------------------------------------------------------------- trace

TEST(Trace, SpansRecordOnlyWhenEnabled) {
    TraceCollector& collector = TraceCollector::global();
    collector.disable();
    collector.clear();
    { DREL_TRACE_SPAN("disabled.span"); }
    EXPECT_EQ(collector.event_count(), 0u);

    const std::string path = ::testing::TempDir() + "drel_trace_test.json";
    collector.enable(path);
    {
        DREL_TRACE_SPAN("outer");
        DREL_TRACE_SPAN("inner");
    }
    collector.disable();
    EXPECT_EQ(collector.event_count(), 2u);

    const JsonValue doc = JsonValue::parse(collector.json());
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);
    for (const JsonValue& event : events) {
        EXPECT_EQ(event.at("ph").as_string(), "X");
        EXPECT_EQ(event.at("cat").as_string(), "drel");
        EXPECT_TRUE(event.at("ts").is_number());
        EXPECT_TRUE(event.at("dur").is_number());
    }

    ASSERT_TRUE(collector.flush());
    EXPECT_EQ(collector.event_count(), 0u);  // flush clears the buffer
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_TRUE(JsonValue::parse(buffer.str()).contains("traceEvents"));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace drel::obs
