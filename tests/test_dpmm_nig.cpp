// Tests for the Normal-Inverse-Gamma DPMM (learned per-cluster spreads).
#include <gtest/gtest.h>

#include <cmath>

#include "dp/dpmm_nig.hpp"
#include "stats/rng.hpp"

namespace drel::dp {
namespace {

NigConfig nig_config(std::size_t dim) {
    NigConfig config;
    config.base_mean = linalg::zeros(dim);
    config.kappa0 = 0.02;
    config.a0 = 2.5;
    config.b0 = 0.5;
    config.num_sweeps = 80;
    return config;
}

/// Two planted clusters with VERY different spreads — the case the fixed-Sw
/// model cannot represent.
std::vector<linalg::Vector> heteroscedastic_observations(stats::Rng& rng,
                                                         std::size_t per_cluster) {
    std::vector<linalg::Vector> obs;
    for (std::size_t i = 0; i < per_cluster; ++i) {
        // Tight cluster at (8, 0), sd 0.2.
        obs.push_back({8.0 + 0.2 * rng.normal(), 0.2 * rng.normal()});
    }
    for (std::size_t i = 0; i < per_cluster; ++i) {
        // Loose cluster at (-8, 0), sd 1.5.
        obs.push_back({-8.0 + 1.5 * rng.normal(), 1.5 * rng.normal()});
    }
    return obs;
}

TEST(DpmmNig, RecoversHeteroscedasticClusters) {
    stats::Rng rng(1);
    DpmmNigGibbs sampler(heteroscedastic_observations(rng, 25), nig_config(2));
    sampler.run(rng);
    ASSERT_EQ(sampler.num_clusters(), 2u);
    const auto& z = sampler.assignments();
    for (std::size_t i = 1; i < 25; ++i) EXPECT_EQ(z[i], z[0]);
    for (std::size_t i = 26; i < 50; ++i) EXPECT_EQ(z[i], z[25]);
    EXPECT_NE(z[0], z[25]);
}

TEST(DpmmNig, LearnsDifferentSpreads) {
    stats::Rng rng(2);
    DpmmNigGibbs sampler(heteroscedastic_observations(rng, 40), nig_config(2));
    sampler.run(rng);
    ASSERT_EQ(sampler.num_clusters(), 2u);
    const auto summaries = sampler.cluster_summaries();
    // Identify clusters by mean sign.
    const auto& tight = summaries[summaries[0].mean[0] > 0.0 ? 0 : 1];
    const auto& loose = summaries[summaries[0].mean[0] > 0.0 ? 1 : 0];
    EXPECT_NEAR(tight.mean[0], 8.0, 0.3);
    EXPECT_NEAR(loose.mean[0], -8.0, 0.8);
    // Learned predictive variances must reflect the planted 0.04 vs 2.25.
    EXPECT_LT(tight.variance[0], 0.25);
    EXPECT_GT(loose.variance[0], 1.0);
    EXPECT_GT(loose.variance[0] / tight.variance[0], 5.0);
}

TEST(DpmmNig, ExtractedPriorReflectsSpreads) {
    stats::Rng rng(3);
    DpmmNigGibbs sampler(heteroscedastic_observations(rng, 40), nig_config(2));
    sampler.run(rng);
    const MixturePrior prior = sampler.extract_prior(false);
    ASSERT_EQ(prior.num_components(), 2u);
    // The prior should judge a point 1.0 away from the loose center as far
    // more plausible than a point 1.0 away from the tight center.
    const bool first_is_tight = prior.atom(0).mean()[0] > 0.0;
    const auto& tight_atom = prior.atom(first_is_tight ? 0 : 1);
    const auto& loose_atom = prior.atom(first_is_tight ? 1 : 0);
    linalg::Vector near_tight = tight_atom.mean();
    near_tight[0] += 1.0;
    linalg::Vector near_loose = loose_atom.mean();
    near_loose[0] += 1.0;
    EXPECT_GT(loose_atom.log_pdf(near_loose) - loose_atom.log_pdf(loose_atom.mean()),
              tight_atom.log_pdf(near_tight) - tight_atom.log_pdf(tight_atom.mean()));
}

TEST(DpmmNig, LogJointImprovesFromColdStart) {
    stats::Rng rng(4);
    DpmmNigGibbs sampler(heteroscedastic_observations(rng, 20), nig_config(2));
    const double before = sampler.log_joint();
    sampler.run(rng);
    EXPECT_GT(sampler.log_joint(), before);
}

TEST(DpmmNig, SingleClusterDataCollapses) {
    stats::Rng rng(5);
    std::vector<linalg::Vector> obs;
    for (int i = 0; i < 40; ++i) obs.push_back({0.3 * rng.normal(), 0.3 * rng.normal()});
    DpmmNigGibbs sampler(std::move(obs), nig_config(2));
    sampler.run(rng);
    EXPECT_EQ(sampler.num_clusters(), 1u);
}

TEST(DpmmNig, PriorWeightsNormalized) {
    stats::Rng rng(6);
    DpmmNigGibbs sampler(heteroscedastic_observations(rng, 15), nig_config(2));
    sampler.run(rng);
    const MixturePrior with_base = sampler.extract_prior(true);
    EXPECT_NEAR(linalg::sum(with_base.weights()), 1.0, 1e-12);
    EXPECT_EQ(with_base.num_components(), sampler.num_clusters() + 1);
}

TEST(DpmmNig, Validation) {
    EXPECT_THROW(DpmmNigGibbs({}, nig_config(2)), std::invalid_argument);
    NigConfig bad = nig_config(2);
    bad.a0 = 0.5;  // predictive variance undefined
    EXPECT_THROW(DpmmNigGibbs({{1.0, 2.0}}, bad), std::invalid_argument);
    NigConfig mismatched = nig_config(3);
    EXPECT_THROW(DpmmNigGibbs({{1.0, 2.0}}, mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace drel::dp
