// Tests for robustness certificates and the lossy-channel transfer.
#include <gtest/gtest.h>

#include <cmath>

#include "data/task_generator.hpp"
#include "dro/certificates.hpp"
#include "dro/robust_objective.hpp"
#include "edgesim/network.hpp"
#include "edgesim/transfer.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel {
namespace {

models::Dataset fixture(stats::Rng& rng, std::size_t n = 40) {
    return test_support::binary_task_dataset(rng, n);
}

// ------------------------------------------------------------ certificates

TEST(Certificates, RadiusInvertsTheProfile) {
    stats::Rng rng(1);
    const models::Dataset d = fixture(rng);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());

    const double budget =
        dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::wasserstein(0.37));
    const double rho = dro::certified_radius(theta, d, *loss,
                                             dro::AmbiguityKind::kWasserstein, budget);
    EXPECT_NEAR(rho, 0.37, 1e-4);
}

TEST(Certificates, BudgetBelowCleanLossGivesZero) {
    stats::Rng rng(2);
    const models::Dataset d = fixture(rng);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const double clean = dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::none());
    EXPECT_DOUBLE_EQ(dro::certified_radius(theta, d, *loss,
                                           dro::AmbiguityKind::kWasserstein, clean * 0.5),
                     0.0);
}

TEST(Certificates, HugeBudgetSaturatesAtMaxRadius) {
    stats::Rng rng(3);
    const models::Dataset d = fixture(rng);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    EXPECT_DOUBLE_EQ(
        dro::certified_radius(theta, d, *loss, dro::AmbiguityKind::kKl, 1e9, 4.0), 4.0);
}

TEST(Certificates, ProfileIsMonotone) {
    stats::Rng rng(4);
    const models::Dataset d = fixture(rng);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const auto profile = dro::certificate_profile(
        theta, d, *loss, dro::AmbiguityKind::kChiSquare, {0.0, 0.1, 0.3, 1.0});
    ASSERT_EQ(profile.size(), 4u);
    for (std::size_t i = 1; i < profile.size(); ++i) {
        EXPECT_GE(profile[i].worst_case_loss, profile[i - 1].worst_case_loss - 1e-9);
    }
}

TEST(Certificates, MarginsMatchAdversarialAccuracy) {
    stats::Rng rng(5);
    const models::Dataset d = fixture(rng, 200);
    const auto loss = models::make_logistic_loss();
    const auto objective = dro::make_robust_objective(d, *loss, dro::AmbiguitySet::none());
    const models::LinearModel model(optim::minimize_lbfgs(*objective, linalg::zeros(d.dim())).x);
    const std::vector<double> epsilons = {0.0, 0.2, 0.5, 1.0};
    const std::vector<double> curve = dro::certified_accuracy_curve(model, d, epsilons);
    for (std::size_t i = 0; i < epsilons.size(); ++i) {
        EXPECT_NEAR(curve[i], models::adversarial_accuracy(model, d, epsilons[i]), 1e-12);
    }
    // Curve is non-increasing and starts at clean accuracy.
    EXPECT_NEAR(curve[0], models::accuracy(model, d), 1e-12);
    for (std::size_t i = 1; i < curve.size(); ++i) EXPECT_LE(curve[i], curve[i - 1]);
}

TEST(Certificates, MisclassifiedExamplesGetZeroMargin) {
    // A model pointing the wrong way on one example.
    const models::Dataset d(linalg::Matrix(2, 3, {1.0, 0.0, 1.0, -1.0, 0.0, 1.0}),
                            {1.0, 1.0});
    const models::LinearModel model({1.0, 0.0, 0.0});
    const linalg::Vector margins = dro::prediction_margins(model, d);
    EXPECT_GT(margins[0], 0.0);
    EXPECT_DOUBLE_EQ(margins[1], 0.0);
}

TEST(Certificates, RejectsTrivialFamily) {
    stats::Rng rng(6);
    const models::Dataset d = fixture(rng);
    const auto loss = models::make_logistic_loss();
    EXPECT_THROW(dro::certified_radius(linalg::zeros(d.dim()), d, *loss,
                                       dro::AmbiguityKind::kNone, 1.0),
                 std::invalid_argument);
}

// ----------------------------------------------------------- lossy channel

dp::MixturePrior channel_prior() {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic({1.0, -1.0, 0.5}, 0.4));
    atoms.push_back(stats::MultivariateNormal::isotropic({-1.0, 1.0, 0.0}, 0.6));
    return dp::MixturePrior({0.5, 0.5}, std::move(atoms));
}

TEST(LossyChannel, PerfectChannelDeliversFirstTry) {
    stats::Rng rng(7);
    const auto payload = edgesim::encode_prior(channel_prior());
    const edgesim::TransmissionReport report =
        edgesim::transmit_prior(payload, {}, rng);
    EXPECT_TRUE(report.delivered);
    EXPECT_EQ(report.attempts, 1);
    EXPECT_EQ(report.transmitted_bytes, payload.size());
    EXPECT_EQ(report.payload, payload);
}

TEST(LossyChannel, RetransmitsUntilDelivered) {
    stats::Rng rng(8);
    const auto payload = edgesim::encode_prior(channel_prior());
    edgesim::ChannelConfig config;
    config.packet_loss_prob = 0.7;
    config.max_transmissions = 500;
    const edgesim::TransmissionReport report =
        edgesim::transmit_prior(payload, config, rng);
    EXPECT_TRUE(report.delivered);
    EXPECT_GT(report.attempts, 1);
    EXPECT_EQ(report.transmitted_bytes, payload.size() * report.attempts);
    // The delivered payload must decode to the same prior.
    const dp::MixturePrior decoded = edgesim::decode_prior(report.payload);
    EXPECT_EQ(decoded.num_components(), 2u);
}

TEST(LossyChannel, CorruptionIsDetectedNeverInstalled) {
    // With heavy bit flips and few attempts, delivery usually fails — but a
    // "delivered" payload must ALWAYS validate. Run many trials.
    stats::Rng rng(9);
    const auto payload = edgesim::encode_prior(channel_prior());
    edgesim::ChannelConfig config;
    config.bit_flip_prob = 0.02;
    config.max_transmissions = 3;
    int delivered = 0;
    for (int t = 0; t < 50; ++t) {
        const edgesim::TransmissionReport report =
            edgesim::transmit_prior(payload, config, rng);
        if (report.delivered) {
            ++delivered;
            EXPECT_NO_THROW(edgesim::decode_prior(report.payload));
        } else {
            EXPECT_GT(report.corrupted_attempts + report.dropped_packets, 0u);
        }
    }
    // Some corruption must have been observed across 150 attempts.
    EXPECT_LT(delivered, 50);
}

TEST(LossyChannel, HopelessChannelGivesUp) {
    stats::Rng rng(10);
    const auto payload = edgesim::encode_prior(channel_prior());
    edgesim::ChannelConfig config;
    config.packet_loss_prob = 1.0;
    config.max_transmissions = 4;
    const edgesim::TransmissionReport report =
        edgesim::transmit_prior(payload, config, rng);
    EXPECT_FALSE(report.delivered);
    EXPECT_EQ(report.attempts, 4);
}

TEST(LossyChannel, Validation) {
    stats::Rng rng(11);
    const auto payload = edgesim::encode_prior(channel_prior());
    edgesim::ChannelConfig bad;
    bad.packet_bytes = 0;
    EXPECT_THROW(edgesim::transmit_prior(payload, bad, rng), std::invalid_argument);
    edgesim::ChannelConfig no_attempts;
    no_attempts.max_transmissions = 0;
    EXPECT_THROW(edgesim::transmit_prior(payload, no_attempts, rng), std::invalid_argument);
    edgesim::ChannelConfig bad_loss;
    bad_loss.packet_loss_prob = 1.5;
    EXPECT_THROW(edgesim::transmit_prior(payload, bad_loss, rng), std::invalid_argument);
    edgesim::ChannelConfig bad_flip;
    bad_flip.bit_flip_prob = -0.1;
    EXPECT_THROW(edgesim::transmit_prior(payload, bad_flip, rng), std::invalid_argument);
    EXPECT_THROW(edgesim::transmit_with_retries(payload, {}, rng, nullptr),
                 std::invalid_argument);
}

TEST(LossyChannel, EmptyPayloadIsRejectedUpFront) {
    // An empty payload used to burn max_transmissions attempts shipping
    // nothing and then report a zero-byte "delivery". It is a caller bug,
    // rejected like packet_bytes == 0 — before any channel draw.
    stats::Rng rng(13);
    const std::vector<std::uint8_t> empty;
    EXPECT_THROW(edgesim::transmit_prior(empty, {}, rng), std::invalid_argument);
    EXPECT_THROW(
        edgesim::transmit_with_retries(
            empty, {}, rng, [](const std::vector<std::uint8_t>&) { return true; }),
        std::invalid_argument);
    // The throw happens before the RNG is touched: the next draw matches a
    // fresh stream with the same seed.
    stats::Rng fresh(13);
    EXPECT_EQ(rng.uniform(), fresh.uniform());
}

TEST(LossyChannel, CapturingValidatorWorks) {
    // The validate hook accepts capturing lambdas: reject anything shorter
    // than the size we captured, accept the full payload.
    stats::Rng rng(12);
    const auto payload = edgesim::encode_prior(channel_prior());
    const std::size_t expected = payload.size();
    int calls = 0;
    const edgesim::TransmissionReport report = edgesim::transmit_with_retries(
        payload, {}, rng, [&calls, expected](const std::vector<std::uint8_t>& bytes) {
            ++calls;
            return bytes.size() == expected;
        });
    EXPECT_TRUE(report.delivered);
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace drel
