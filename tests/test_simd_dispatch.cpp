// Runtime SIMD dispatch: every vectorized backend must be a drop-in for the
// scalar one, bit for bit.
//
// The contract under test (linalg/simd.hpp): all backends implement the SAME
// 8-lane reduction tree for dot-like kernels and plain elementwise loops for
// the rest, so for any input the active backend's result is BIT-IDENTICAL to
// the scalar table's. Against the naive left-to-right reference the lane
// tree may differ — but only within the standard summation reorder bound,
// which is also asserted here. The capstone re-runs a sharded fleet under
// ScopedBackendForTesting and demands a bit-identical report, which is what
// lets the golden files stay byte-stable whatever DREL_SIMD says.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "dp/batch_responsibilities.hpp"
#include "edgesim/server.hpp"
#include "linalg/reference.hpp"
#include "linalg/simd.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

using linalg::simd::Backend;

std::uint64_t to_bits(double x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    return bits;
}

std::vector<Backend> available_backends() {
    std::vector<Backend> backends;
    for (const Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
        if (linalg::simd::backend_available(b)) backends.push_back(b);
    }
    return backends;
}

/// Mixed-magnitude fill: spans ~120 decades so lane-order mistakes show up
/// as rounding differences instead of cancelling silently.
std::vector<double> mixed_values(stats::Rng& rng, std::size_t n) {
    std::vector<double> out(n);
    for (double& v : out) {
        v = rng.normal() * std::ldexp(1.0, static_cast<int>(rng.uniform_index(40)) - 20);
    }
    return out;
}

constexpr std::size_t kMaxDim = 67;  // crosses 8-lane blocks and every tail length

TEST(SimdDispatch, BackendEnumerationIsSane) {
    // Scalar is always available and always resolvable.
    ASSERT_TRUE(linalg::simd::backend_available(Backend::kScalar));
    ASSERT_NE(linalg::simd::backend_kernels(Backend::kScalar), nullptr);
    const Backend active = linalg::simd::active_backend();
    EXPECT_TRUE(linalg::simd::backend_available(active));
    EXPECT_EQ(linalg::simd::active().backend, active);
    EXPECT_STREQ(linalg::simd::backend_name(Backend::kScalar), "scalar");
    EXPECT_STREQ(linalg::simd::backend_name(Backend::kAvx2), "avx2");
    EXPECT_STREQ(linalg::simd::backend_name(Backend::kNeon), "neon");
}

TEST(SimdDispatch, ScopedOverrideSwitchesAndRestores) {
    const Backend before = linalg::simd::active_backend();
    {
        linalg::simd::ScopedBackendForTesting scoped(Backend::kScalar);
        EXPECT_EQ(linalg::simd::active_backend(), Backend::kScalar);
        {
            // Nested overrides restore in LIFO order.
            linalg::simd::ScopedBackendForTesting inner(before);
            EXPECT_EQ(linalg::simd::active_backend(), before);
        }
        EXPECT_EQ(linalg::simd::active_backend(), Backend::kScalar);
    }
    EXPECT_EQ(linalg::simd::active_backend(), before);
}

// Every backend's dot must land on the scalar emulation's bits exactly —
// the lane contract, exercised across every block/tail split and pointer
// misalignment (offsets break 32-byte alignment on AVX2).
TEST(SimdDispatch, DotBitIdenticalToScalarAcrossDimsAndOffsets) {
    stats::Rng rng(3001);
    const auto* scalar = linalg::simd::backend_kernels(Backend::kScalar);
    for (const Backend backend : available_backends()) {
        const auto* kernels = linalg::simd::backend_kernels(backend);
        ASSERT_NE(kernels, nullptr);
        for (std::size_t n = 1; n <= kMaxDim; ++n) {
            for (std::size_t offset = 0; offset < 4; ++offset) {
                const std::vector<double> x = mixed_values(rng, n + offset);
                const std::vector<double> y = mixed_values(rng, n + offset);
                const double got = kernels->dot_n(x.data() + offset, y.data() + offset, n);
                const double want = scalar->dot_n(x.data() + offset, y.data() + offset, n);
                EXPECT_EQ(to_bits(got), to_bits(want))
                    << linalg::simd::backend_name(backend) << " n=" << n
                    << " offset=" << offset;
            }
        }
    }
}

TEST(SimdDispatch, DotStrideBitIdenticalToScalar) {
    stats::Rng rng(3002);
    const auto* scalar = linalg::simd::backend_kernels(Backend::kScalar);
    for (const Backend backend : available_backends()) {
        const auto* kernels = linalg::simd::backend_kernels(backend);
        for (std::size_t n = 1; n <= 33; ++n) {
            for (const std::size_t stride : {std::size_t{1}, std::size_t{3}, std::size_t{9}}) {
                const std::vector<double> x = mixed_values(rng, n * stride);
                const std::vector<double> y = mixed_values(rng, n);
                const double got = kernels->dot_stride_n(x.data(), stride, y.data(), n);
                const double want = scalar->dot_stride_n(x.data(), stride, y.data(), n);
                EXPECT_EQ(to_bits(got), to_bits(want))
                    << linalg::simd::backend_name(backend) << " n=" << n
                    << " stride=" << stride;
            }
        }
    }
}

// The elementwise kernels have no reduction, so they owe bit-identity not
// just to scalar but to the naive reference as well.
TEST(SimdDispatch, ElementwiseKernelsBitIdenticalToReference) {
    stats::Rng rng(3003);
    for (const Backend backend : available_backends()) {
        const auto* kernels = linalg::simd::backend_kernels(backend);
        for (std::size_t n = 1; n <= kMaxDim; ++n) {
            for (std::size_t offset = 0; offset < 4; ++offset) {
                const std::vector<double> x = mixed_values(rng, n + offset);
                std::vector<double> got = mixed_values(rng, n + offset);
                std::vector<double> want = got;
                const double alpha = rng.normal();

                kernels->axpy_n(alpha, x.data() + offset, got.data() + offset, n);
                linalg::reference::axpy_n(alpha, x.data() + offset, want.data() + offset, n);
                for (std::size_t i = 0; i < n + offset; ++i) {
                    ASSERT_EQ(to_bits(got[i]), to_bits(want[i]))
                        << "axpy " << linalg::simd::backend_name(backend) << " n=" << n;
                }

                kernels->sub_const_n(x.data() + offset, alpha, got.data() + offset, n);
                linalg::reference::sub_const_n(x.data() + offset, alpha,
                                               want.data() + offset, n);
                for (std::size_t i = 0; i < n + offset; ++i) {
                    ASSERT_EQ(to_bits(got[i]), to_bits(want[i]))
                        << "sub_const " << linalg::simd::backend_name(backend) << " n=" << n;
                }

                const double divisor = 1.0 + std::fabs(rng.normal());
                kernels->div_const_n(got.data() + offset, divisor, n);
                linalg::reference::div_const_n(want.data() + offset, divisor, n);
                for (std::size_t i = 0; i < n + offset; ++i) {
                    ASSERT_EQ(to_bits(got[i]), to_bits(want[i]))
                        << "div_const " << linalg::simd::backend_name(backend) << " n=" << n;
                }

                kernels->add_sq_n(x.data() + offset, got.data() + offset, n);
                linalg::reference::add_sq_n(x.data() + offset, want.data() + offset, n);
                for (std::size_t i = 0; i < n + offset; ++i) {
                    ASSERT_EQ(to_bits(got[i]), to_bits(want[i]))
                        << "add_sq " << linalg::simd::backend_name(backend) << " n=" << n;
                }
            }
        }
    }
}

// Denormals, signed zeros, and infinities must flow through every backend
// exactly as through the scalar one — no flush-to-zero, no spurious NaNs.
TEST(SimdDispatch, SpecialValuesPropagateIdentically) {
    const double denormal = std::numeric_limits<double>::denorm_min();
    const double tiny = std::ldexp(1.0, -1060);
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> x = {denormal, -denormal, 0.0,  -0.0, tiny, 1.0,
                             1e300,    -1e-300,   -0.0, tiny, 2.0,  denormal};
    std::vector<double> y = {1.0, 1.0, -0.0, 0.0,  tiny,  denormal,
                             1.0, 1.0, 3.0,  -2.0, 1e300, 4.0};
    const auto* scalar = linalg::simd::backend_kernels(Backend::kScalar);
    for (const Backend backend : available_backends()) {
        const auto* kernels = linalg::simd::backend_kernels(backend);
        for (std::size_t n = 1; n <= x.size(); ++n) {
            EXPECT_EQ(to_bits(kernels->dot_n(x.data(), y.data(), n)),
                      to_bits(scalar->dot_n(x.data(), y.data(), n)))
                << linalg::simd::backend_name(backend) << " n=" << n;
        }
        // One +inf partnered with a positive value: the product and the
        // whole reduction must come out +inf on every backend.
        std::vector<double> with_inf = x;
        with_inf[5] = inf;
        const double got = kernels->dot_n(with_inf.data(), y.data(), with_inf.size());
        EXPECT_EQ(to_bits(got),
                  to_bits(scalar->dot_n(with_inf.data(), y.data(), with_inf.size())));
        EXPECT_TRUE(std::isinf(got));

        std::vector<double> acc_got(x.size(), 0.0);
        std::vector<double> acc_want(x.size(), 0.0);
        kernels->add_sq_n(x.data(), acc_got.data(), x.size());
        scalar->add_sq_n(x.data(), acc_want.data(), x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
            EXPECT_EQ(to_bits(acc_got[i]), to_bits(acc_want[i]));
        }
    }
}

// Scalar (and therefore, by the bit-identity above, every backend) stays
// within the textbook summation reorder bound of the naive reference.
TEST(SimdDispatch, DotWithinReorderBoundOfNaiveReference) {
    stats::Rng rng(3004);
    const auto* scalar = linalg::simd::backend_kernels(Backend::kScalar);
    for (std::size_t n = 1; n <= kMaxDim; ++n) {
        const std::vector<double> x = mixed_values(rng, n);
        const std::vector<double> y = mixed_values(rng, n);
        const double got = scalar->dot_n(x.data(), y.data(), n);
        const double want = linalg::reference::dot_n(x.data(), y.data(), n);
        double magnitude = 0.0;
        for (std::size_t i = 0; i < n; ++i) magnitude += std::fabs(x[i] * y[i]);
        const double bound = 2.0 * static_cast<double>(n) *
                             std::numeric_limits<double>::epsilon() * magnitude;
        EXPECT_NEAR(got, want, bound) << "n=" << n;
    }
}

// ---------------------------------------------------------------------------
// The batched responsibilities kernel against its naive oracle and the
// per-device path it replaces.

dp::MixturePrior dispatch_test_prior(std::size_t dim, std::size_t num_components,
                                     stats::Rng& rng) {
    std::vector<stats::MultivariateNormal> atoms;
    linalg::Vector weights(num_components);
    for (std::size_t k = 0; k < num_components; ++k) {
        linalg::Vector mean(dim);
        for (double& m : mean) m = 3.0 * rng.normal();
        linalg::Matrix cov = linalg::Matrix::identity(dim);
        cov *= 0.2 + rng.uniform();
        cov.add_outer(0.1, rng.standard_normal_vector(dim));  // correlated, PD
        atoms.emplace_back(std::move(mean), std::move(cov));
        weights[k] = 0.5 + rng.uniform();
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

TEST(SimdDispatch, BatchResponsibilitiesNearOracleAndPerDevicePath) {
    stats::Rng rng(3005);
    for (const std::size_t dim : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
        const dp::MixturePrior prior = dispatch_test_prior(dim, 4, rng);
        const dp::BatchResponsibilities batch(prior);
        const std::size_t count = 23;
        std::vector<double> thetas(count * dim);
        for (double& t : thetas) t = 4.0 * rng.normal();

        util::Workspace ws;
        std::vector<double> got(count * prior.num_components());
        batch.log_densities_into(thetas.data(), count, got.data(), ws);

        // Naive oracle: per-device textbook forward solve.
        std::vector<linalg::Vector> means;
        std::vector<linalg::Matrix> lowers;
        linalg::Vector log_weights(prior.num_components());
        for (std::size_t k = 0; k < prior.num_components(); ++k) {
            means.push_back(prior.atom(k).mean());
            lowers.push_back(prior.atom(k).chol().lower());
            log_weights[k] = std::log(prior.weights()[k]);
        }
        std::vector<double> want(count * prior.num_components());
        linalg::reference::batch_log_densities(means, lowers, log_weights, thetas.data(),
                                               count, dim, want.data());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + std::fabs(want[i])))
                << "dim=" << dim << " entry " << i;
        }

        // And the per-device production path (different reduction order,
        // same math): responsibilities row-by-row.
        std::vector<double> resp(count * prior.num_components());
        batch.responsibilities_into(thetas.data(), count, resp.data(), ws);
        linalg::Vector theta(dim);
        linalg::Vector per_device;
        for (std::size_t i = 0; i < count; ++i) {
            std::copy(thetas.begin() + static_cast<std::ptrdiff_t>(i * dim),
                      thetas.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim),
                      theta.begin());
            prior.responsibilities_into(theta, per_device, ws);
            for (std::size_t k = 0; k < prior.num_components(); ++k) {
                EXPECT_NEAR(resp[i * prior.num_components() + k], per_device[k], 1e-9)
                    << "device " << i << " component " << k;
            }
        }
    }
}

TEST(SimdDispatch, BatchResponsibilitiesIndependentOfBatchSplit) {
    // A device's row may not depend on who shares its batch — the property
    // that makes the fleet report shard-partition invariant.
    stats::Rng rng(3006);
    const dp::MixturePrior prior = dispatch_test_prior(6, 3, rng);
    const dp::BatchResponsibilities batch(prior);
    const std::size_t count = 17;
    std::vector<double> thetas(count * 6);
    for (double& t : thetas) t = 4.0 * rng.normal();

    util::Workspace ws;
    std::vector<double> whole(count * 3);
    batch.log_densities_into(thetas.data(), count, whole.data(), ws);
    for (const std::size_t split : {std::size_t{1}, std::size_t{5}, std::size_t{16}}) {
        std::vector<double> front(split * 3);
        std::vector<double> back((count - split) * 3);
        batch.log_densities_into(thetas.data(), split, front.data(), ws);
        batch.log_densities_into(thetas.data() + split * 6, count - split, back.data(), ws);
        for (std::size_t i = 0; i < front.size(); ++i) {
            ASSERT_EQ(to_bits(front[i]), to_bits(whole[i])) << "split=" << split;
        }
        for (std::size_t i = 0; i < back.size(); ++i) {
            ASSERT_EQ(to_bits(back[i]), to_bits(whole[split * 3 + i])) << "split=" << split;
        }
    }
}

TEST(SimdDispatch, BatchResponsibilitiesBitIdenticalAcrossBackends) {
    stats::Rng rng(3007);
    const dp::MixturePrior prior = dispatch_test_prior(7, 5, rng);
    const dp::BatchResponsibilities batch(prior);
    const std::size_t count = 29;
    std::vector<double> thetas(count * 7);
    for (double& t : thetas) t = 4.0 * rng.normal();

    util::Workspace ws;
    std::vector<double> baseline(count * 5);
    {
        linalg::simd::ScopedBackendForTesting scoped(Backend::kScalar);
        batch.log_densities_into(thetas.data(), count, baseline.data(), ws);
    }
    for (const Backend backend : available_backends()) {
        linalg::simd::ScopedBackendForTesting scoped(backend);
        std::vector<double> got(count * 5);
        batch.log_densities_into(thetas.data(), count, got.data(), ws);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(to_bits(got[i]), to_bits(baseline[i]))
                << linalg::simd::backend_name(backend) << " entry " << i;
        }
    }
}

// The capstone: an entire sharded, multi-threaded fleet run must produce a
// bit-identical report whichever backend is dispatched — accuracies, byte
// ledgers, latency tails, everything.
TEST(SimdDispatch, FleetReportBitIdenticalAcrossBackends) {
    edgesim::ScaleFleetConfig config;
    config.devices_per_round = 384;
    config.rounds = 2;
    config.feature_dim = 5;
    config.num_modes = 3;
    config.num_shards = 4;
    config.num_threads = 2;
    config.faults.crash_prob = 0.05;
    config.faults.straggler_prob = 0.05;
    config.faults.upload_fail_prob = 0.1;

    const auto run_with = [&](Backend backend) {
        linalg::simd::ScopedBackendForTesting scoped(backend);
        stats::Rng rng(2026);
        return edgesim::run_scale_fleet(config, rng);
    };

    const edgesim::ScaleFleetReport baseline = run_with(Backend::kScalar);
    ASSERT_GT(baseline.engine.rounds.size(), 0u);
    EXPECT_GT(baseline.mode_recovery_rate, 0.5);  // the prior separates its modes

    for (const Backend backend : available_backends()) {
        const edgesim::ScaleFleetReport report = run_with(backend);
        EXPECT_EQ(to_bits(report.mode_recovery_rate), to_bits(baseline.mode_recovery_rate))
            << linalg::simd::backend_name(backend);
        EXPECT_EQ(report.engine.total_broadcast_bytes, baseline.engine.total_broadcast_bytes);
        EXPECT_EQ(report.engine.total_upload_bytes, baseline.engine.total_upload_bytes);
        EXPECT_EQ(report.engine.total_batch_bytes, baseline.engine.total_batch_bytes);
        EXPECT_EQ(report.engine.events_processed, baseline.engine.events_processed);
        ASSERT_EQ(report.engine.rounds.size(), baseline.engine.rounds.size());
        for (std::size_t r = 0; r < report.engine.rounds.size(); ++r) {
            const auto& got = report.engine.rounds[r];
            const auto& want = baseline.engine.rounds[r];
            EXPECT_EQ(to_bits(got.mean_accuracy), to_bits(want.mean_accuracy))
                << linalg::simd::backend_name(backend) << " round " << r;
            EXPECT_EQ(got.devices_scored, want.devices_scored);
            EXPECT_EQ(got.crashed, want.crashed);
            EXPECT_EQ(got.uploads_dropped, want.uploads_dropped);
            EXPECT_EQ(to_bits(got.latency_p99_seconds), to_bits(want.latency_p99_seconds));
            EXPECT_EQ(got.device_degraded, want.device_degraded);
        }
    }
}

}  // namespace
}  // namespace drel
