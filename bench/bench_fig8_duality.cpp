// E9 / Fig. 8 — duality check: closed-form Wasserstein reformulation vs the
// generic numeric dual.
//
// For random (theta, dataset, rho) instances we report the absolute gap
// between the closed-form value and the nested-1D-optimization dual, plus
// the wall-clock of each path. Expect gaps at solver precision (<= 1e-3)
// and the closed form 3-5 orders of magnitude faster — the justification
// for using the reformulation inside the training loop.
#include "dro/wasserstein.hpp"
#include "util/stopwatch.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E9 (Fig. 8)",
                        "Strong duality: closed form vs numeric dual over random instances. "
                        "gap = |closed - numeric|; times per single evaluation.");

    const auto loss = models::make_logistic_loss();
    util::Table table({"n", "rho", "closed value", "numeric value", "gap", "closed us",
                       "numeric us"});

    stats::Rng rng(77);
    for (const std::size_t n : {10u, 30u, 100u}) {
        for (const double rho : {0.05, 0.2, 0.8}) {
            const data::TaskPopulation pop =
                data::TaskPopulation::make_synthetic(6, 2, 2.0, 0.05, rng);
            const models::Dataset d = pop.generate(pop.sample_task(rng), n, rng);
            const linalg::Vector theta = rng.standard_normal_vector(d.dim());

            const dro::WassersteinDroObjective closed(d, *loss, rho);
            util::Stopwatch closed_watch;
            double closed_value = 0.0;
            const int closed_reps = 1000;
            for (int r = 0; r < closed_reps; ++r) closed_value = closed.value(theta);
            const double closed_us = closed_watch.elapsed_seconds() * 1e6 / closed_reps;

            util::Stopwatch numeric_watch;
            const double numeric_value =
                dro::wasserstein_robust_value_numeric(theta, d, *loss, rho);
            const double numeric_us = numeric_watch.elapsed_seconds() * 1e6;

            table.add_row({std::to_string(n), util::Table::fmt(rho, 2),
                           util::Table::fmt(closed_value, 6),
                           util::Table::fmt(numeric_value, 6),
                           util::Table::fmt(std::fabs(closed_value - numeric_value), 6),
                           util::Table::fmt(closed_us, 1), util::Table::fmt(numeric_us, 1)});
        }
    }
    table.print(std::cout);
    return 0;
}
