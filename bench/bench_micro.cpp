// Micro-benchmarks (google-benchmark) for the numerical kernels on the
// training hot path. Complements the experiment binaries: when a table
// regresses, these localize which kernel moved.
#include <benchmark/benchmark.h>

#include "data/task_generator.hpp"
#include "dp/dpmm_gibbs.hpp"
#include "dp/mixture_prior.hpp"
#include "dro/chi_square.hpp"
#include "dro/kl.hpp"
#include "dro/wasserstein.hpp"
#include "edgesim/transfer.hpp"
#include "linalg/cholesky.hpp"
#include "models/erm_objective.hpp"
#include "models/stochastic_erm.hpp"
#include "optim/lbfgs.hpp"
#include "optim/sgd.hpp"
#include "stats/rng.hpp"

namespace {

using namespace drel;

models::Dataset bench_dataset(std::size_t n, std::size_t d) {
    stats::Rng rng(1);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(d, 3, 2.5, 0.05, rng);
    return pop.generate(pop.sample_task(rng), n, rng);
}

dp::MixturePrior bench_prior(std::size_t dim, std::size_t k) {
    stats::Rng rng(2);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t i = 0; i < k; ++i) {
        weights.push_back(1.0);
        atoms.push_back(stats::MultivariateNormal::isotropic(
            rng.standard_normal_vector(dim), 0.5));
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

void BM_CholeskyFactorSolve(benchmark::State& state) {
    const std::size_t n = state.range(0);
    stats::Rng rng(3);
    linalg::Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.normal();
    }
    linalg::Matrix spd = m.matmul(m.transposed());
    spd.add_diagonal(1.0);
    const linalg::Vector b = rng.standard_normal_vector(n);
    for (auto _ : state) {
        const linalg::Cholesky chol(spd);
        benchmark::DoNotOptimize(chol.solve(b));
    }
}
BENCHMARK(BM_CholeskyFactorSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ErmGradient(benchmark::State& state) {
    const models::Dataset d = bench_dataset(state.range(0), 8);
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective objective(d, *loss);
    stats::Rng rng(4);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    linalg::Vector grad;
    for (auto _ : state) {
        benchmark::DoNotOptimize(objective.eval(theta, &grad));
    }
}
BENCHMARK(BM_ErmGradient)->Arg(32)->Arg(128)->Arg(512);

void BM_WassersteinClosedForm(benchmark::State& state) {
    const models::Dataset d = bench_dataset(state.range(0), 8);
    const auto loss = models::make_logistic_loss();
    const dro::WassersteinDroObjective objective(d, *loss, 0.2);
    stats::Rng rng(5);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    linalg::Vector grad;
    for (auto _ : state) {
        benchmark::DoNotOptimize(objective.eval(theta, &grad));
    }
}
BENCHMARK(BM_WassersteinClosedForm)->Arg(32)->Arg(128)->Arg(512);

void BM_KlDual(benchmark::State& state) {
    stats::Rng rng(6);
    linalg::Vector losses(state.range(0));
    for (double& l : losses) l = rng.gamma(2.0, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dro::solve_kl_dual(losses, 0.3));
    }
}
BENCHMARK(BM_KlDual)->Arg(32)->Arg(128)->Arg(512);

void BM_ChiSquareDual(benchmark::State& state) {
    stats::Rng rng(7);
    linalg::Vector losses(state.range(0));
    for (double& l : losses) l = rng.gamma(2.0, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dro::solve_chi_square_dual(losses, 0.3));
    }
}
BENCHMARK(BM_ChiSquareDual)->Arg(32)->Arg(128)->Arg(512);

void BM_MixtureResponsibilities(benchmark::State& state) {
    const dp::MixturePrior prior = bench_prior(9, state.range(0));
    stats::Rng rng(8);
    const linalg::Vector theta = rng.standard_normal_vector(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(prior.responsibilities(theta));
    }
}
BENCHMARK(BM_MixtureResponsibilities)->Arg(2)->Arg(8)->Arg(32);

void BM_DpmmGibbsSweep(benchmark::State& state) {
    stats::Rng rng(9);
    std::vector<linalg::Vector> obs;
    for (int i = 0; i < 40; ++i) {
        linalg::Vector x = rng.standard_normal_vector(9);
        x[0] += (i % 3) * 6.0;
        obs.push_back(std::move(x));
    }
    dp::DpmmConfig config;
    config.base_mean = linalg::zeros(9);
    config.base_covariance = linalg::Matrix::identity(9) * 10.0;
    config.within_covariance = linalg::Matrix::identity(9) * 0.3;
    dp::DpmmGibbs sampler(obs, config);
    stats::Rng sweep_rng(10);
    for (auto _ : state) {
        sampler.sweep(sweep_rng);
    }
}
BENCHMARK(BM_DpmmGibbsSweep);

void BM_LbfgsErmFit(benchmark::State& state) {
    const models::Dataset d = bench_dataset(64, 8);
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective objective(d, *loss, 0.01);
    for (auto _ : state) {
        benchmark::DoNotOptimize(optim::minimize_lbfgs(objective, linalg::zeros(d.dim())));
    }
}
BENCHMARK(BM_LbfgsErmFit);

void BM_SgdEpoch(benchmark::State& state) {
    const models::Dataset d = bench_dataset(state.range(0), 8);
    const auto loss = models::make_logistic_loss();
    const models::StochasticErm stochastic(d, *loss, 0.01);
    stats::Rng rng(11);
    optim::SgdOptions options;
    options.epochs = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            optim::minimize_sgd(stochastic, linalg::zeros(d.dim()), rng, options));
    }
}
BENCHMARK(BM_SgdEpoch)->Arg(128)->Arg(1024);

void BM_PriorEncodeDecode(benchmark::State& state) {
    const dp::MixturePrior prior = bench_prior(9, 6);
    for (auto _ : state) {
        const auto encoded = edgesim::encode_prior(prior);
        benchmark::DoNotOptimize(edgesim::decode_prior(encoded));
    }
}
BENCHMARK(BM_PriorEncodeDecode);

}  // namespace
