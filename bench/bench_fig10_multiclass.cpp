// E12 (extension) — multiclass softmax: accuracy vs local sample size.
//
// The C-class analogue of E1 on a 4-class task. The prior is the true
// population mixture over stacked softmax weights (the cloud-side DPMM over
// stacked vectors is mechanically identical to the binary case; using the
// oracle prior isolates the multiclass learner itself). Expect the same
// shape as E1: em-dro well above local softmax ERM at small n, convergence
// by n=512, DRO-only between them.
#include "core/softmax_edge_learner.hpp"
#include "data/multiclass_generator.hpp"
#include "models/softmax.hpp"
#include "optim/lbfgs.hpp"

#include "bench_common.hpp"

namespace {

using namespace drel;

models::SoftmaxModel fit_softmax_erm(const models::Dataset& train, std::size_t classes,
                                     double rho) {
    const models::SoftmaxWassersteinObjective objective(train, classes, rho, 1e-6);
    const auto r = optim::minimize_lbfgs(objective, linalg::zeros(objective.dim()));
    return models::SoftmaxModel(classes, r.x);
}

}  // namespace

int main() {
    using namespace drel;
    bench::print_header("E12 (Fig. 10, extension)",
                        "4-class softmax edge learning: accuracy vs n, mean+-std over 5 "
                        "seeds; oracle population prior over stacked weights.");

    const std::size_t classes = 4;
    const std::vector<std::size_t> sample_sizes = {12, 24, 48, 96, 192, 384};
    const int num_seeds = 5;

    std::vector<stats::RunningStats> erm(sample_sizes.size());
    std::vector<stats::RunningStats> dro(sample_sizes.size());
    std::vector<stats::RunningStats> em_dro(sample_sizes.size());
    stats::RunningStats oracle;

    for (int s = 0; s < num_seeds; ++s) {
        stats::Rng rng(1900 + s);
        const data::MulticlassPopulation pop =
            data::MulticlassPopulation::make_synthetic(6, classes, 3, 2.5, 0.05, rng);
        const data::MulticlassTaskSpec task = pop.sample_task(rng);
        data::MulticlassDataOptions options;
        options.margin_scale = 2.0;
        const models::Dataset full = pop.generate(task, sample_sizes.back(), rng, options);
        const models::Dataset test = pop.generate(task, 3000, rng, options);
        oracle.push(
            models::softmax_accuracy(models::SoftmaxModel(classes, task.stacked_weights), test));

        linalg::Vector weights(pop.num_modes(), 1.0);
        const dp::MixturePrior prior(std::move(weights), pop.mode_distributions());

        for (std::size_t ni = 0; ni < sample_sizes.size(); ++ni) {
            std::vector<std::size_t> indices(sample_sizes[ni]);
            for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
            const models::Dataset train = full.subset(indices);

            erm[ni].push(models::softmax_accuracy(fit_softmax_erm(train, classes, 0.0), test));
            const double rho = dro::radius_for_sample_size(0.25, train.size());
            dro[ni].push(models::softmax_accuracy(fit_softmax_erm(train, classes, rho), test));

            core::SoftmaxEdgeLearnerConfig config;
            config.num_classes = classes;
            config.transfer_weight = 2.0;
            config.em.max_outer_iterations = 15;
            const core::SoftmaxEdgeLearner learner(prior, config);
            em_dro[ni].push(models::softmax_accuracy(learner.fit(train).model, test));
        }
    }

    std::vector<std::string> header = {"method"};
    for (const std::size_t n : sample_sizes) header.push_back("n=" + std::to_string(n));
    util::Table table(header);
    auto emit = [&](const std::string& name, const std::vector<stats::RunningStats>& row) {
        std::vector<std::string> cells = {name};
        for (const auto& s : row) cells.push_back(bench::mean_std(s));
        table.add_row(cells);
    };
    emit("softmax local-erm", erm);
    emit("softmax dro-only", dro);
    emit("softmax em-dro", em_dro);
    std::vector<std::string> oracle_row = {"oracle(W*)"};
    for (std::size_t i = 0; i < sample_sizes.size(); ++i) {
        oracle_row.push_back(bench::mean_std(oracle));
    }
    table.add_row(oracle_row);
    table.print(std::cout);
    return 0;
}
