// E11 (extension) — collaborative fleet learning via consensus ADMM.
//
// Devices that share a task family co-train one model without pooling raw
// data. Sweep the group size m with fixed per-device n=10: expect accuracy
// to climb toward the large-data ceiling as m grows (evidence pools through
// the consensus), while the solo em-dro baseline stays flat. We also report
// the ADMM communication rounds — the quantity a real deployment provisions
// bandwidth for.
#include "edgesim/collaborative.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E11 (Fig. 9, extension)",
                        "Consensus-ADMM co-training: accuracy vs group size (n=10 per "
                        "device, same task), mean+-std over 5 seeds.");

    const std::vector<std::size_t> group_sizes = {1, 2, 4, 8};
    const int num_seeds = 5;

    std::vector<stats::RunningStats> collaborative(group_sizes.size());
    std::vector<stats::RunningStats> rounds(group_sizes.size());
    stats::RunningStats solo;
    stats::RunningStats pooled_oracle;

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(1700 + s);
        stats::Rng rng(1800 + s);
        data::DataOptions options;
        options.margin_scale = 2.0;
        const data::TaskSpec task = fixture.population.sample_task(rng);
        const models::Dataset test = fixture.population.generate(task, 3000, rng, options);

        std::vector<models::Dataset> locals;
        for (std::size_t j = 0; j < group_sizes.back(); ++j) {
            locals.push_back(fixture.population.generate(task, 10, rng, options));
        }

        // Solo baseline: the first device alone through the standard learner.
        core::EdgeLearnerConfig learner_config;
        learner_config.transfer_weight = 2.0;
        const core::EdgeLearner learner(fixture.prior, learner_config);
        solo.push(models::accuracy(learner.fit(locals[0]).model, test));
        pooled_oracle.push(
            models::accuracy(models::LinearModel(task.theta_star), test));

        for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
            std::vector<const models::Dataset*> group;
            for (std::size_t j = 0; j < group_sizes[gi]; ++j) group.push_back(&locals[j]);
            edgesim::CollaborativeConfig config;
            config.transfer_weight = 2.0;
            config.admm.max_iterations = 60;
            const edgesim::CollaborativeResult r =
                edgesim::collaborative_fit(group, fixture.prior, config);
            collaborative[gi].push(models::accuracy(r.model, test));
            rounds[gi].push(static_cast<double>(r.total_admm_iterations));
        }
    }

    util::Table table({"group size m", "collaborative acc", "admm rounds", "solo em-dro",
                       "oracle"});
    for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
        table.add_row({std::to_string(group_sizes[gi]), bench::mean_std(collaborative[gi]),
                       bench::mean_std(rounds[gi], 0), bench::mean_std(solo),
                       bench::mean_std(pooled_oracle)});
    }
    table.print(std::cout);
    return 0;
}
