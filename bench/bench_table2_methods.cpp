// E5 / Table II — method comparison across the scenario suite.
//
// Rows: the 7-method standard suite (+ oracle). Columns: the edge
// conditions of data/scenarios.hpp. Expect em-dro to be best or tied-best
// in every column, with the biggest margins under contamination (outliers,
// label-noise) and shift; cloud-only/prior-map to be flat (data-free);
// local-erm to be the weakest under contamination.
#include "data/scenarios.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E5 (Table II)",
                        "Test accuracy per scenario (n_train=24), mean+-std over 5 seeds. "
                        "Prior learned by DPMM-Gibbs from 30 contributors per seed.");

    const std::vector<data::ScenarioKind> kinds = {
        data::ScenarioKind::kIid,        data::ScenarioKind::kCovariateShift,
        data::ScenarioKind::kLabelShift, data::ScenarioKind::kOutliers,
        data::ScenarioKind::kLabelNoise, data::ScenarioKind::kRotation};
    const int num_seeds = 5;

    std::vector<std::string> method_names;
    std::vector<std::vector<stats::RunningStats>> accuracy;  // [method][scenario]
    std::vector<stats::RunningStats> bayes(kinds.size());

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(900 + s);
        data::ScenarioConfig scenario_config;
        scenario_config.n_train = 24;
        scenario_config.n_test = 3000;
        scenario_config.margin_scale = 2.0;

        const auto suite =
            baselines::make_standard_suite(fixture.prior, models::LossKind::kLogistic);
        if (method_names.empty()) {
            for (const auto& t : suite) method_names.push_back(t->name());
            accuracy.assign(suite.size(), std::vector<stats::RunningStats>(kinds.size()));
        }

        stats::Rng task_rng(1000 + s);
        const data::TaskSpec task = fixture.population.sample_task(task_rng);
        for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
            stats::Rng rng(2000 + 100 * s + static_cast<std::uint64_t>(ki));
            const data::Scenario scenario = data::make_scenario_for_task(
                kinds[ki], scenario_config, fixture.population, task, rng);
            bayes[ki].push(scenario.bayes_accuracy);
            for (std::size_t m = 0; m < suite.size(); ++m) {
                accuracy[m][ki].push(
                    models::accuracy(suite[m]->fit(scenario.edge_train), scenario.edge_test));
            }
        }
    }

    std::vector<std::string> header = {"method"};
    for (const data::ScenarioKind kind : kinds) header.push_back(data::scenario_name(kind));
    util::Table table(header);
    for (std::size_t m = 0; m < method_names.size(); ++m) {
        std::vector<std::string> row = {method_names[m]};
        for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
            row.push_back(bench::mean_std(accuracy[m][ki]));
        }
        table.add_row(row);
    }
    std::vector<std::string> oracle_row = {"oracle(theta*)"};
    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
        oracle_row.push_back(bench::mean_std(bayes[ki]));
    }
    table.add_row(oracle_row);
    table.print(std::cout);
    return 0;
}
