// E5 / Table II — method comparison across the scenario suite.
//
// Rows: the 7-method standard suite (+ oracle). Columns: the edge
// conditions of data/scenarios.hpp. Expect em-dro to be best or tied-best
// in every column, with the biggest margins under contamination (outliers,
// label-noise) and shift; cloud-only/prior-map to be flat (data-free);
// local-erm to be the weakest under contamination.
#include "data/scenarios.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_table2_methods");
    bench::print_header("E5 (Table II)",
                        "Test accuracy per scenario (n_train=24), mean+-std over 5 seeds. "
                        "Prior learned by DPMM-Gibbs from 30 contributors per seed.");

    const std::vector<data::ScenarioKind> kinds = {
        data::ScenarioKind::kIid,        data::ScenarioKind::kCovariateShift,
        data::ScenarioKind::kLabelShift, data::ScenarioKind::kOutliers,
        data::ScenarioKind::kLabelNoise, data::ScenarioKind::kRotation};
    const std::size_t num_seeds = 5;

    // One trial per seed, run concurrently on the shared executor. Every
    // trial is self-contained (seeds derive from the trial index), and the
    // RunningStats accumulation below scans trials in seed order, so the
    // printed table is bit-identical at any thread count.
    struct SeedOutcome {
        std::vector<std::string> method_names;
        std::vector<std::vector<double>> accuracy;  // [method][scenario]
        std::vector<double> bayes;                  // [scenario]
    };
    const std::vector<SeedOutcome> outcomes =
        bench::parallel_trials(num_seeds, [&](std::size_t s) {
            SeedOutcome out;
            const bench::PipelineFixture fixture = bench::make_pipeline_fixture(900 + s);
            data::ScenarioConfig scenario_config;
            scenario_config.n_train = 24;
            scenario_config.n_test = 3000;
            scenario_config.margin_scale = 2.0;

            const auto suite =
                baselines::make_standard_suite(fixture.prior, models::LossKind::kLogistic);
            for (const auto& t : suite) out.method_names.push_back(t->name());
            out.accuracy.assign(suite.size(), std::vector<double>(kinds.size(), 0.0));
            out.bayes.assign(kinds.size(), 0.0);

            stats::Rng task_rng(1000 + s);
            const data::TaskSpec task = fixture.population.sample_task(task_rng);
            for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
                stats::Rng rng(2000 + 100 * s + static_cast<std::uint64_t>(ki));
                const data::Scenario scenario = data::make_scenario_for_task(
                    kinds[ki], scenario_config, fixture.population, task, rng);
                out.bayes[ki] = scenario.bayes_accuracy;
                for (std::size_t m = 0; m < suite.size(); ++m) {
                    out.accuracy[m][ki] = models::accuracy(
                        suite[m]->fit(scenario.edge_train), scenario.edge_test);
                }
            }
            return out;
        });

    const std::vector<std::string>& method_names = outcomes.front().method_names;
    std::vector<std::vector<stats::RunningStats>> accuracy(
        method_names.size(), std::vector<stats::RunningStats>(kinds.size()));
    std::vector<stats::RunningStats> bayes(kinds.size());
    for (const SeedOutcome& out : outcomes) {
        for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
            bayes[ki].push(out.bayes[ki]);
            for (std::size_t m = 0; m < method_names.size(); ++m) {
                accuracy[m][ki].push(out.accuracy[m][ki]);
            }
        }
    }

    std::vector<std::string> header = {"method"};
    for (const data::ScenarioKind kind : kinds) header.push_back(data::scenario_name(kind));
    util::Table table(header);
    for (std::size_t m = 0; m < method_names.size(); ++m) {
        std::vector<std::string> row = {method_names[m]};
        for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
            row.push_back(bench::mean_std(accuracy[m][ki]));
        }
        table.add_row(row);
    }
    std::vector<std::string> oracle_row = {"oracle(theta*)"};
    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
        oracle_row.push_back(bench::mean_std(bayes[ki]));
    }
    table.add_row(oracle_row);
    table.print(std::cout);
    return 0;
}
