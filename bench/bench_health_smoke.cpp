// Seconds-scale smoke test for the fleet health telemetry pipeline (ctest
// -R health_smoke): runs the sharded engine end to end twice and checks the
// SLO layer judges both runs the way the geometry says it must.
//
//   1. A small chaos fleet (10% uniform faults, fast server): the default
//      SLOs must NOT fail — chaos degrades devices but sheds no uploads.
//      Its health block lands in bench_health_smoke.metrics.json, the
//      document scripts/health_report.py renders in CI.
//   2. The same fleet behind a deliberately under-provisioned server (one
//      queued batch, 40 s service): admission control must shed load and
//      the backpressure SLO must FAIL, written to
//      bench_health_smoke_slow.metrics.json so the report script's nonzero
//      exit path is exercised on a real document, not a fixture.
//
// Exits nonzero when either expectation is violated.
#include <iostream>

#include "edgesim/server.hpp"
#include "obs/health.hpp"

#include "bench_common.hpp"

namespace {

drel::edgesim::ScaleFleetConfig smoke_config() {
    drel::edgesim::ScaleFleetConfig config;
    config.devices_per_round = 400;
    config.rounds = 3;
    config.num_shards = 8;
    config.num_threads = drel::util::Executor::global().max_threads();
    return config;
}

}  // namespace

int main() {
    using namespace drel;
    bench::print_header(
        "health_smoke",
        "Fleet health telemetry smoke: a healthy chaos fleet must pass the "
        "default SLOs; an under-provisioned server must trip the "
        "backpressure SLO. Both health blocks are written as sidecars for "
        "scripts/health_report.py.");

    int failures = 0;
    {
        bench::MetricsSidecar sidecar("bench_health_smoke");
        edgesim::ScaleFleetConfig config = smoke_config();
        config.faults = edgesim::FaultConfig::uniform(0.1);
        stats::Rng rng(2100);
        const edgesim::ScaleFleetReport report = edgesim::run_scale_fleet(config, rng);
        const health::SloReport slo =
            health::evaluate(health::Slo::fleet_default(), report.engine.telemetry);
        std::cout << "chaos fleet (10% faults, fast server): "
                  << health::to_string(slo.verdict) << "\n";
        if (obs::metrics_enabled()) {
            sidecar.set_health(report.engine.telemetry.to_json(&slo));
            if (slo.verdict == health::Verdict::kFail) {
                std::cerr << "FAIL: healthy chaos fleet failed its SLOs\n";
                ++failures;
            }
        }
    }
    {
        bench::MetricsSidecar sidecar("bench_health_smoke_slow");
        edgesim::ScaleFleetConfig config = smoke_config();
        config.server.queue_capacity = 1;
        config.server.service_seconds_per_batch = 40.0;
        stats::Rng rng(2100);
        const edgesim::ScaleFleetReport report = edgesim::run_scale_fleet(config, rng);
        const health::SloReport slo =
            health::evaluate(health::Slo::fleet_default(), report.engine.telemetry);
        std::cout << "slow server (queue 1, 40 s/batch): "
                  << health::to_string(slo.verdict) << "\n";
        if (obs::metrics_enabled()) {
            sidecar.set_health(report.engine.telemetry.to_json(&slo));
            bool tripped = false;
            for (const health::SloResult& rule : slo.rules) {
                if (rule.name == "backpressure_rejection_rate" &&
                    rule.verdict == health::Verdict::kFail) {
                    tripped = true;
                }
            }
            if (!tripped) {
                std::cerr << "FAIL: slow server did not trip the backpressure SLO\n";
                ++failures;
            }
        }
    }
    if (!obs::metrics_enabled()) {
        std::cout << "DREL_METRICS=0: telemetry empty by contract; nothing "
                     "to judge.\n";
    }
    return failures == 0 ? 0 : 1;
}
