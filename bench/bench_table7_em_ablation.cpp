// E18 (extension) — why the EM-inspired convex relaxation?
//
// The single-layer objective F(theta) = R(theta) - w log p_DP(theta) is
// nonconvex through the mixture log-prior; the paper's answer is the EM
// majorize-minimize scheme whose M-steps are convex. The obvious alternative
// is to throw a quasi-Newton method directly at F. This ablation compares:
//
//   em/multi      EM relaxation, multi-start (the library default)
//   em/single     EM relaxation, single start at the prior mean
//   direct/multi  L-BFGS on the nonconvex F, same multi-start
//   direct/single L-BFGS on F from the prior mean
//
// Expect EM and direct to be comparable per start (L-BFGS is decent on this
// mildly nonconvex landscape), multi-start to dominate single-start for
// BOTH (the landscape's real difficulty is mode selection), and EM to be
// cheaper per start (its inner problems are convex and warm-started).
// "subopt" counts runs ending >1e-4 above the best objective found for the
// task by any method.
#include "core/em_dro.hpp"
#include "util/stopwatch.hpp"

#include "bench_common.hpp"

namespace {

using namespace drel;

/// The raw nonconvex objective F with its exact gradient.
class DirectObjective final : public optim::Objective {
 public:
    DirectObjective(const optim::Objective& robust, const dp::MixturePrior& prior,
                    double weight)
        : robust_(robust), prior_(prior), weight_(weight) {}

    std::size_t dim() const override { return robust_.dim(); }

    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override {
        double value = robust_.eval(theta, grad) - weight_ * prior_.log_pdf(theta);
        if (grad) linalg::axpy(-weight_, prior_.log_pdf_gradient(theta), *grad);
        return value;
    }

 private:
    const optim::Objective& robust_;
    const dp::MixturePrior& prior_;
    double weight_;
};

}  // namespace

int main() {
    using namespace drel;
    bench::print_header("E18 (Table VII, extension)",
                        "EM convex relaxation vs direct nonconvex L-BFGS on F, 20 tasks "
                        "(n=16). subopt = runs ending >1e-4 above the task's best F.");

    struct Method {
        std::string name;
        stats::RunningStats objective_gap;
        stats::RunningStats accuracy;
        stats::RunningStats millis;
        int suboptimal = 0;
    };
    std::vector<Method> methods = {
        {"em/multi", {}, {}, {}, 0},
        {"em/single", {}, {}, {}, 0},
        {"direct/multi", {}, {}, {}, 0},
        {"direct/single", {}, {}, {}, 0},
    };
    const int tasks = 20;

    for (int t = 0; t < tasks; ++t) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(3500 + t / 4);
        stats::Rng rng(3600 + t);
        data::DataOptions options;
        options.margin_scale = 2.0;
        const bench::EdgeTask edge =
            bench::make_edge_task(fixture.population, 16, 2000, rng, options);
        const auto loss = models::make_logistic_loss();
        const dro::AmbiguitySet set = dro::AmbiguitySet::wasserstein(
            dro::radius_for_sample_size(0.25, edge.train.size()));
        const double weight = 2.0 / static_cast<double>(edge.train.size());
        const auto robust = dro::make_robust_objective(edge.train, *loss, set);
        const DirectObjective direct(*robust, fixture.prior, weight);

        // Shared multi-start list (mirrors EmDroSolver::solve()).
        std::vector<linalg::Vector> starts = {fixture.prior.mean()};
        for (std::size_t k = 0; k < std::min<std::size_t>(3, fixture.prior.num_components());
             ++k) {
            starts.push_back(fixture.prior.atom(k).mean());
        }

        core::EmDroOptions em_options;
        const core::EmDroSolver em(edge.train, *loss, fixture.prior, set, 2.0, em_options);
        optim::LbfgsOptions lbfgs_options;
        lbfgs_options.stopping.max_iterations = 500;

        struct Run {
            double objective;
            linalg::Vector theta;
            double ms;
        };
        auto run_em = [&](bool multi) {
            util::Stopwatch watch;
            core::EmDroResult best;
            bool first = true;
            for (const auto& start : starts) {
                core::EmDroResult r = em.solve_from(start);
                if (first || r.objective < best.objective) {
                    best = std::move(r);
                    first = false;
                }
                if (!multi) break;
            }
            return Run{best.objective, best.theta, watch.elapsed_millis()};
        };
        auto run_direct = [&](bool multi) {
            util::Stopwatch watch;
            optim::OptimResult best;
            bool first = true;
            for (const auto& start : starts) {
                optim::OptimResult r = optim::minimize_lbfgs(direct, start, lbfgs_options);
                if (first || r.value < best.value) {
                    best = std::move(r);
                    first = false;
                }
                if (!multi) break;
            }
            return Run{best.value, best.x, watch.elapsed_millis()};
        };

        const std::vector<Run> runs = {run_em(true), run_em(false), run_direct(true),
                                       run_direct(false)};
        double best_objective = runs[0].objective;
        for (const Run& r : runs) best_objective = std::min(best_objective, r.objective);
        for (std::size_t m = 0; m < methods.size(); ++m) {
            methods[m].objective_gap.push(runs[m].objective - best_objective);
            methods[m].accuracy.push(
                models::accuracy(models::LinearModel(runs[m].theta), edge.test));
            methods[m].millis.push(runs[m].ms);
            if (runs[m].objective - best_objective > 1e-4) ++methods[m].suboptimal;
        }
    }

    util::Table table({"method", "F gap to best", "test acc", "time ms", "subopt runs"});
    for (const Method& m : methods) {
        table.add_row({m.name, bench::mean_std(m.objective_gap, 5),
                       bench::mean_std(m.accuracy), bench::mean_std(m.millis, 2),
                       std::to_string(m.suboptimal) + "/" + std::to_string(tasks)});
    }
    table.print(std::cout);
    return 0;
}
