// E15 (extension) — learned per-cluster spreads vs fixed within-covariance.
//
// Heteroscedastic device population: two TIGHT device types (within-mode
// var 0.01) and two LOOSE ones (0.4). The fixed-Sw cloud model must pick one
// width for all clusters — too wide for tight types (prior under-commits) or
// too narrow for loose ones (over-commits / splinters clusters). The NIG
// model fits each cluster's width. Expect NIG to match or beat fixed-Sw
// accuracy overall, with the gap concentrated on one of the two type
// families, and to discover a cluster count closer to the true 4.
#include "data/task_generator.hpp"
#include "edgesim/cloud.hpp"

#include "bench_common.hpp"

namespace {

using namespace drel;

data::TaskPopulation heteroscedastic_population(std::size_t feature_dim, stats::Rng& rng) {
    std::vector<data::ParameterMode> modes;
    const std::vector<double> variances = {0.01, 0.01, 0.4, 0.4};
    for (const double v : variances) {
        data::ParameterMode mode;
        mode.weight = 1.0;
        linalg::Vector dir = rng.standard_normal_vector(feature_dim);
        linalg::scale(dir, 2.5 / linalg::norm2(dir));
        mode.mean = dir;
        mode.mean.push_back(0.2 * rng.normal());
        mode.covariance = linalg::Matrix::identity(feature_dim + 1);
        mode.covariance *= v;
        modes.push_back(std::move(mode));
    }
    return data::TaskPopulation(std::move(modes));
}

}  // namespace

int main() {
    using namespace drel;
    bench::print_header("E15 (Table VI, extension)",
                        "Heteroscedastic population (2 tight modes var=0.01, 2 loose "
                        "var=0.4): fixed-Sw Gibbs vs NIG Gibbs cloud priors, n_edge=16, "
                        "mean+-std over 5 seeds x 6 edge devices.");

    const int num_seeds = 5;
    struct Row {
        stats::RunningStats components;
        stats::RunningStats accuracy_all;
        stats::RunningStats accuracy_tight;
        stats::RunningStats accuracy_loose;
    };
    Row fixed_row;
    Row nig_row;

    for (int s = 0; s < num_seeds; ++s) {
        stats::Rng rng(2700 + s);
        const data::TaskPopulation population = heteroscedastic_population(8, rng);
        data::DataOptions options;
        options.margin_scale = 2.0;

        std::vector<models::Dataset> uploads;
        for (int j = 0; j < 32; ++j) {
            const data::TaskSpec task = population.sample_task(rng);
            uploads.push_back(population.generate(task, 300, rng, options));
        }

        struct Edge {
            data::TaskSpec task;
            models::Dataset train;
            models::Dataset test;
        };
        std::vector<Edge> edges;
        for (int j = 0; j < 6; ++j) {
            Edge e;
            e.task = population.sample_task(rng);
            e.train = population.generate(e.task, 16, rng, options);
            e.test = population.generate(e.task, 2500, rng, options);
            edges.push_back(std::move(e));
        }

        for (const bool use_nig : {false, true}) {
            edgesim::CloudConfig cloud_config;
            cloud_config.gibbs_sweeps = 80;
            cloud_config.inference = use_nig ? edgesim::PriorInference::kNigGibbs
                                             : edgesim::PriorInference::kGibbs;
            edgesim::CloudNode cloud(cloud_config);
            for (const auto& u : uploads) cloud.add_contributor_data(u);
            stats::Rng prior_rng(2800 + s);
            const dp::MixturePrior prior = cloud.fit_prior(prior_rng);

            Row& row = use_nig ? nig_row : fixed_row;
            row.components.push(static_cast<double>(prior.num_components()));
            core::EdgeLearnerConfig learner_config;
            learner_config.transfer_weight = 2.0;
            const core::EdgeLearner learner(prior, learner_config);
            for (const Edge& e : edges) {
                const double acc = models::accuracy(learner.fit(e.train).model, e.test);
                row.accuracy_all.push(acc);
                // Modes 0,1 are tight; 2,3 loose (construction order).
                (e.task.mode_index < 2 ? row.accuracy_tight : row.accuracy_loose).push(acc);
            }
        }
    }

    util::Table table({"cloud model", "components (true 4+esc)", "acc (all)", "acc (tight modes)",
                       "acc (loose modes)"});
    table.add_row({"fixed-Sw gibbs", bench::mean_std(fixed_row.components, 1),
                   bench::mean_std(fixed_row.accuracy_all),
                   bench::mean_std(fixed_row.accuracy_tight),
                   bench::mean_std(fixed_row.accuracy_loose)});
    table.add_row({"nig gibbs (learned)", bench::mean_std(nig_row.components, 1),
                   bench::mean_std(nig_row.accuracy_all),
                   bench::mean_std(nig_row.accuracy_tight),
                   bench::mean_std(nig_row.accuracy_loose)});
    table.print(std::cout);
    return 0;
}
