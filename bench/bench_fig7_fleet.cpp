// E8 / Fig. 7 — fleet simulation: per-device accuracy distribution and the
// communication bill.
//
// 60 heterogeneous edge devices, one cloud broadcast. We print the
// per-device accuracy CDF (quantiles) for em-dro vs local-erm plus fleet
// aggregates. Expect the em-dro CDF to dominate (shifted right), the
// largest gains in the lower tail (devices whose few samples mislead ERM),
// and a per-device payload of a few KB vs the hundreds of KB that shipping
// raw contributor data would take.
//
// DREL_THREADS overrides the worker count (default: hardware concurrency);
// all metrics go to stdout and are bit-identical at any thread count, while
// timing (wall clock, per-device train time) goes to stderr so
//   DREL_THREADS=1 ./bench_fig7_fleet > serial.txt
//   DREL_THREADS=8 ./bench_fig7_fleet > par8.txt && diff serial.txt par8.txt
// verifies determinism and the stderr lines show the speedup.
#include <cstdlib>
#include <thread>

#include "edgesim/simulation.hpp"

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_fig7_fleet");
    bench::print_header("E8 (Fig. 7)",
                        "Fleet of 60 devices (n=16 local samples each), prior from 30 "
                        "contributors. Per-device accuracy quantiles + communication.");

    edgesim::SimulationConfig config;
    config.feature_dim = 8;
    config.num_modes = 4;
    config.num_contributors = 30;
    config.contributor_samples = 300;
    config.num_edge_devices = 60;
    config.edge_samples = 16;
    config.test_samples = 2000;
    config.cloud.gibbs_sweeps = 60;
    config.learner.transfer_weight = 2.0;
    config.num_threads = std::max(1u, std::thread::hardware_concurrency());
    if (const char* env = std::getenv("DREL_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1) config.num_threads = static_cast<std::size_t>(parsed);
    }
    config.run_ensemble = true;

    stats::Rng rng(42);
    util::Stopwatch total_watch;
    const edgesim::FleetReport report = edgesim::run_fleet_simulation(config, rng);
    const double total_seconds = total_watch.elapsed_seconds();

    linalg::Vector em_dro;
    linalg::Vector ensemble;
    linalg::Vector local;
    linalg::Vector train_ms;
    for (const auto& d : report.devices) {
        em_dro.push_back(d.em_dro_accuracy);
        ensemble.push_back(d.ensemble_accuracy);
        local.push_back(d.local_erm_accuracy);
        train_ms.push_back(d.train_seconds * 1e3);
    }

    util::Table quantiles(
        {"quantile", "em-dro acc", "ensemble acc", "local-erm acc", "em-dro gap"});
    for (const double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
        const double a = stats::quantile(em_dro, q);
        const double e = stats::quantile(ensemble, q);
        const double b = stats::quantile(local, q);
        quantiles.add_row({util::Table::fmt(q, 2), util::Table::fmt(a, 4),
                           util::Table::fmt(e, 4), util::Table::fmt(b, 4),
                           util::Table::fmt(a - b, 4)});
    }
    quantiles.print(std::cout);

    const std::size_t raw_upload_bytes = config.num_contributors *
                                         config.contributor_samples *
                                         (config.feature_dim + 2) * sizeof(double);
    std::cout << "\nfleet aggregates\n"
              << "  mean em-dro accuracy    : "
              << util::Table::fmt(report.mean_em_dro_accuracy(), 4) << "\n"
              << "  mean ensemble accuracy  : "
              << util::Table::fmt(stats::mean(ensemble), 4) << "\n"
              << "  mean local-erm accuracy : "
              << util::Table::fmt(report.mean_local_erm_accuracy(), 4) << "\n"
              << "  devices improved        : "
              << util::Table::fmt(100.0 * report.win_rate(), 1) << "%\n"
              << "  prior components        : " << report.prior_components << "\n"
              << "  per-device payload      : " << report.prior_bytes << " bytes\n"
              << "  total broadcast         : " << report.total_broadcast_bytes << " bytes\n"
              << "  (raw contributor data would be " << raw_upload_bytes
              << " bytes per device)\n";

    // Timing is nondeterministic by nature — keep it off stdout so metric
    // output diffs clean across thread counts.
    std::cerr << "timing (threads=" << config.num_threads << ")\n"
              << "  median device train time: " << util::Table::fmt(stats::median(train_ms), 1)
              << " ms\n"
              << "  cloud inference time    : " << util::Table::fmt(report.cloud_seconds, 2)
              << " s\n"
              << "  fleet wall clock        : " << util::Table::fmt(total_seconds, 2)
              << " s\n";
    return 0;
}
