// E21 (extension) — deployment-shape fleet scale on the event-driven engine.
//
// Sweeps the sharded engine (edgesim/server.hpp) from a 10k-device warmup to
// the 100k-device deployment point, then shows thread scaling at 100k and a
// deliberately under-provisioned server row where admission control sheds
// load as DegradedReason::kBackpressure instead of stalling the fleet.
// Reported: wall throughput (device-rounds/s), the virtual-latency tail
// (p50/p99/p999 over every device, crashes pinned at the deadline), mean
// on-air bytes per device per round, and the MAP mode-recovery proxy.
// Every row is bit-identical across thread counts — re-run with
// DREL_FLEET_SCALE_HUGE=1 for a 1M-device row (same shape, ~10x the wall
// time).
#include <cstdlib>

#include "edgesim/server.hpp"
#include "obs/health.hpp"

#include "bench_common.hpp"

namespace {

struct Row {
    std::string label;
    drel::edgesim::ScaleFleetConfig config;
    /// The under-provisioned row exists to demonstrate load shedding: its
    /// SLO report MUST fail on backpressure, and a healthy row must not.
    bool expect_backpressure_fail = false;
    /// The churn row exists to demonstrate graceful membership handling:
    /// its telemetry MUST carry membership rows with real rejoins —
    /// including stale-prior resumes — while its SLOs still hold.
    bool expect_churn = false;
    /// The row whose health block rides in the metrics sidecar.
    bool export_health = false;
    /// The wire-v2 row exists to demonstrate compressed broadcasts: its
    /// broadcast bytes/device/round MUST come in at least 2x below the v1
    /// deployment row's, or the compression no longer earns its row.
    bool wire_v2 = false;
};

}  // namespace

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_fleet_scale");
    bench::print_header(
        "E21 (extension)",
        "Event-driven fleet engine at deployment scale. thr = device-rounds/s "
        "(wall clock); p50/p99/p999 = virtual completion-latency tail in "
        "seconds; B/dev/rnd = mean broadcast+upload+batch bytes per device "
        "per round; bcast B/dev/rnd = the broadcast share alone (what the "
        "wire format controls — the v2 row must land at least 2x below the "
        "v1 row); recovery = MAP mode-recovery rate over scored devices; "
        "rejected = uploads shed by server admission control (backpressure). "
        "The churn row runs the membership state machine: leaves, missed "
        "heartbeats, and stale-prior rejoins at a 10%/round uniform rate.");

    const std::size_t hw_threads = util::Executor::global().max_threads();
    // The shard count is the batch structure (one upload batch per shard per
    // round), so it is pinned rather than derived from the host's thread
    // count: every machine benches the same fleet layout, and the slow-server
    // row sheds the same load everywhere.
    const std::size_t shards = 16;

    std::vector<Row> rows;
    {
        Row warmup;
        warmup.label = "10k";
        warmup.config.devices_per_round = 10000;
        warmup.config.num_shards = shards;
        warmup.config.num_threads = hw_threads;
        rows.push_back(warmup);
    }
    {
        Row deploy;
        deploy.label = "100k";
        deploy.config.devices_per_round = 100000;
        deploy.config.num_shards = shards;
        deploy.config.num_threads = hw_threads;
        rows.push_back(deploy);
    }
    {
        // The 100k fleet again, but broadcasting wire v2: the bootstrap
        // push is a full 8-bit-quantized frame, every re-push a delta
        // against it. Same fleet, same rounds — only the broadcast bytes
        // move, and they must move by at least 2x.
        Row v2;
        v2.label = "100k wire v2";
        v2.config.devices_per_round = 100000;
        v2.config.num_shards = shards;
        v2.config.num_threads = hw_threads;
        v2.config.wire.version = edgesim::kWireV2;
        v2.config.wire.quantized = true;
        v2.config.wire.quantization_bits = 8;
        v2.config.wire.delta = true;
        v2.wire_v2 = true;
        rows.push_back(v2);
    }
    {
        Row single;
        single.label = "100k x1 thread";
        single.config.devices_per_round = 100000;
        single.config.num_shards = shards;
        single.config.num_threads = 1;
        rows.push_back(single);
    }
    {
        Row chaos;
        chaos.label = "100k chaos 10%";
        chaos.config.devices_per_round = 100000;
        chaos.config.num_shards = shards;
        chaos.config.num_threads = hw_threads;
        chaos.config.faults = edgesim::FaultConfig::uniform(0.1);
        chaos.export_health = true;
        rows.push_back(chaos);
    }
    {
        // A tenth of the fleet churning every round, over a 10k-slot
        // reserved tail: devices leave, go silent, die, and REJOIN — the
        // round keeps closing, skipped slots are unscored rather than
        // failed, and rejoiners resume on a stale prior instead of
        // erroring. The membership SLO rules judge the suspect fraction
        // and guard against mass extinction.
        Row churn;
        churn.label = "100k churn 10%";
        churn.config.devices_per_round = 100000;
        churn.config.num_shards = shards;
        churn.config.num_threads = hw_threads;
        churn.config.membership.churn = edgesim::ChurnConfig::uniform(0.10);
        churn.config.membership.initial_members = 90000;
        churn.expect_churn = true;
        rows.push_back(churn);
    }
    {
        // A server that needs 20 virtual seconds per batch with a 2-deep
        // queue cannot admit every shard of a wide fleet: the overflow is
        // reported per device, and the run still completes every round.
        Row slow;
        slow.label = "100k slow server";
        slow.config.devices_per_round = 100000;
        slow.config.num_shards = shards;
        slow.config.num_threads = hw_threads;
        slow.config.server.queue_capacity = 2;
        slow.config.server.service_seconds_per_batch = 20.0;
        slow.expect_backpressure_fail = true;
        rows.push_back(slow);
    }
    if (const char* env = std::getenv("DREL_FLEET_SCALE_HUGE");
        env != nullptr && std::string(env) == "1") {
        Row huge;
        huge.label = "1M";
        huge.config.devices_per_round = 1000000;
        huge.config.num_shards = shards;
        huge.config.num_threads = hw_threads;
        rows.push_back(huge);
    }

    util::Table table({"fleet", "rounds", "thr (dev-rnd/s)", "p50 s", "p99 s",
                       "p999 s", "B/dev/rnd", "bcast B/dev/rnd", "recovery",
                       "rejected", "slo"});
    bool slo_ok = true;
    double v1_broadcast_rate = -1.0;  // the "100k" row's bcast B/dev/rnd
    double v2_broadcast_rate = -1.0;  // the "100k wire v2" row's
    for (const Row& row : rows) {
        stats::Rng rng(2100);
        const edgesim::ScaleFleetReport report = edgesim::run_scale_fleet(row.config, rng);
        const edgesim::EngineReport& engine = report.engine;
        double p50 = 0.0, p99 = 0.0, p999 = 0.0;
        for (const edgesim::EngineRoundStats& round : engine.rounds) {
            p50 = std::max(p50, round.latency_p50_seconds);
            p99 = std::max(p99, round.latency_p99_seconds);
            p999 = std::max(p999, round.latency_p999_seconds);
        }
        // Broadcast bytes per device per round: the downlink budget the
        // wire format spends, isolated from uploads and server batches.
        const double broadcast_rate =
            engine.rounds.empty()
                ? 0.0
                : static_cast<double>(engine.total_broadcast_bytes) /
                      (static_cast<double>(row.config.devices_per_round) *
                       static_cast<double>(engine.rounds.size()));
        if (row.label == "100k") v1_broadcast_rate = broadcast_rate;
        if (row.wire_v2) v2_broadcast_rate = broadcast_rate;

        // Judge every row against the fleet SLOs plus the bandwidth rule
        // over the telemetry's broadcast_bytes column (v1 full frames land
        // in the warn band; v2 must clear it). The table shows the verdict
        // and the process exit code enforces the expectations (healthy rows
        // pass or warn; the slow server MUST fail on backpressure — if it
        // stops failing, the row no longer demos what it claims to).
        const health::SloReport slo = health::evaluate(
            health::Slo::fleet_with_bandwidth(/*warn=*/1024.0, /*fail=*/8192.0),
            engine.telemetry);
        if (!obs::metrics_enabled()) {
            // DREL_METRICS=0: the telemetry is empty by contract and every
            // rule passes vacuously — there is nothing to enforce.
        } else if (row.expect_backpressure_fail) {
            bool tripped = false;
            for (const health::SloResult& rule : slo.rules) {
                if (rule.name == "backpressure_rejection_rate" &&
                    rule.verdict == health::Verdict::kFail) {
                    tripped = true;
                }
            }
            if (!tripped) {
                std::cerr << "SLO expectation violated: row '" << row.label
                          << "' should trip backpressure_rejection_rate\n";
                slo_ok = false;
            }
        } else if (slo.verdict == health::Verdict::kFail) {
            std::cerr << "SLO expectation violated: healthy row '" << row.label
                      << "' failed its SLOs\n";
            slo_ok = false;
        }
        if (row.expect_churn && obs::metrics_enabled()) {
            // The demo claim, enforced: the fleet actually churned, dead
            // devices actually came back, and at least one rejoiner
            // resumed on an out-of-date prior — gracefully, with every
            // SLO (including the membership pair) holding above.
            using health::MembershipCol;
            const obs::RoundSeries& members = engine.telemetry.membership;
            if (members.num_rows() != engine.rounds.size() ||
                members.column_max(health::idx(MembershipCol::kRejoins)) == 0 ||
                members.column_max(health::idx(MembershipCol::kRejoinsStale)) == 0) {
                std::cerr << "churn expectation violated: row '" << row.label
                          << "' produced no stale-prior rejoins\n";
                slo_ok = false;
            }
        }
        if (row.export_health && obs::metrics_enabled()) {
            sidecar.set_health(engine.telemetry.to_json(&slo));
        }

        table.add_row({row.label, std::to_string(engine.rounds.size()),
                       util::Table::fmt(engine.device_rounds_per_second, 0),
                       util::Table::fmt(p50, 2), util::Table::fmt(p99, 2),
                       util::Table::fmt(p999, 2),
                       util::Table::fmt(engine.bytes_per_device_round(), 1),
                       util::Table::fmt(broadcast_rate, 1),
                       util::Table::fmt(report.mode_recovery_rate, 3),
                       std::to_string(engine.total_backpressure_rejected),
                       health::to_string(slo.verdict)});
    }
    table.print(std::cout);

    // The compression claim, enforced: wire v2 (8-bit + delta) must cut
    // broadcast bytes/device/round by at least 2x against the v1 row at
    // the same 100k scale.
    if (v1_broadcast_rate > 0.0 && v2_broadcast_rate >= 0.0 &&
        2.0 * v2_broadcast_rate > v1_broadcast_rate) {
        std::cerr << "wire-v2 expectation violated: broadcast bytes/device/round "
                  << v2_broadcast_rate << " is not 2x below the v1 row's "
                  << v1_broadcast_rate << "\n";
        slo_ok = false;
    }

    std::cout << "\nEvery row ran the full event loop (virtual clock, bounded "
                 "server queue); backpressure degrades devices, never the "
                 "run. Reports are bit-identical across thread counts; the "
                 "chaos row's health block lands in the metrics sidecar.\n";
    return slo_ok ? 0 : 1;
}
