// Performance baseline runner — produces BENCH_PERF.json.
//
// A fixed registry of microbenchmarks over the numerical kernels on the
// training hot path (the same kernels the phase profiler instruments) plus
// two end-to-end scenarios: a small EM solve and a small fleet round. Each
// benchmark is calibrated to a target sample duration, warmed up, and then
// repeated; we report robust statistics (min / median / MAD) rather than a
// bare mean so the regression gate (scripts/perf_compare.py) can use a
// noise-aware threshold: max(5% of median, 3x MAD).
//
// Usage:
//   bench_perf_runner [--out PATH] [--filter SUBSTR] [--smoke] [--list]
//
// --smoke shrinks calibration targets and repetition counts to keep the
// whole run in the low seconds for the perf_smoke ctest; the JSON written is
// schema-identical to a full run, just noisier — smoke output is for schema
// validation and plumbing tests, not for committing as a baseline.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/edge_learner.hpp"
#include "data/task_generator.hpp"
#include "dp/batch_responsibilities.hpp"
#include "dp/dpmm_gibbs.hpp"
#include "dp/mixture_prior.hpp"
#include "dro/chi_square.hpp"
#include "dro/kl.hpp"
#include "dro/wasserstein.hpp"
#include "edgesim/server.hpp"
#include "edgesim/simulation.hpp"
#include "edgesim/transfer.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/qr.hpp"
#include "models/erm_objective.hpp"
#include "models/stochastic_erm.hpp"
#include "obs/json.hpp"
#include "optim/lbfgs.hpp"
#include "optim/sgd.hpp"
#include "stats/alias_table.hpp"
#include "stats/rng.hpp"
#include "util/executor.hpp"
#include "util/workspace.hpp"

namespace {

using namespace drel;
using Clock = std::chrono::steady_clock;

/// Defeat dead-code elimination without google-benchmark's helpers.
volatile double g_sink = 0.0;
inline void sink(double v) { g_sink = g_sink + v; }

struct BenchSpec {
    std::string name;
    bool end_to_end = false;  ///< skip calibration, one iteration per sample
    std::function<void(std::size_t iters)> run;
};

struct BenchResult {
    std::uint64_t inner_iterations = 0;
    std::uint64_t repetitions = 0;
    double min_ms = 0.0;
    double median_ms = 0.0;
    double mad_ms = 0.0;
    double mean_ms = 0.0;
};

double elapsed_ms(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double median_of(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Median absolute deviation — the gate's noise estimate. Robust to the
/// occasional scheduler hiccup that would wreck a stddev.
double mad_of(const std::vector<double>& v, double median) {
    std::vector<double> dev;
    dev.reserve(v.size());
    for (const double x : v) dev.push_back(std::fabs(x - median));
    return median_of(std::move(dev));
}

/// Doubles the iteration count until one sample takes >= target_ms, so the
/// per-sample timing floor is well above clock granularity.
std::uint64_t calibrate(const BenchSpec& spec, double target_ms) {
    std::uint64_t iters = 1;
    for (int round = 0; round < 30; ++round) {
        const auto start = Clock::now();
        spec.run(iters);
        if (elapsed_ms(start) >= target_ms) break;
        iters *= 2;
    }
    return iters;
}

BenchResult measure(const BenchSpec& spec, double target_ms, std::uint64_t reps) {
    BenchResult result;
    result.inner_iterations = spec.end_to_end ? 1 : calibrate(spec, target_ms);
    result.repetitions = reps;

    spec.run(result.inner_iterations);  // warmup (cold caches, lazy pools)

    std::vector<double> samples;
    samples.reserve(reps);
    for (std::uint64_t r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        spec.run(result.inner_iterations);
        samples.push_back(elapsed_ms(start) / static_cast<double>(result.inner_iterations));
    }
    result.min_ms = *std::min_element(samples.begin(), samples.end());
    result.median_ms = median_of(samples);
    result.mad_ms = mad_of(samples, result.median_ms);
    double sum = 0.0;
    for (const double s : samples) sum += s;
    result.mean_ms = sum / static_cast<double>(samples.size());
    return result;
}

// ---------------------------------------------------------------------------
// Fixtures (mirror bench_micro.cpp so the two suites agree on shapes).

models::Dataset bench_dataset(std::size_t n, std::size_t d) {
    stats::Rng rng(1);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(d, 3, 2.5, 0.05, rng);
    return pop.generate(pop.sample_task(rng), n, rng);
}

dp::MixturePrior bench_prior(std::size_t dim, std::size_t k) {
    stats::Rng rng(2);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t i = 0; i < k; ++i) {
        weights.push_back(1.0);
        atoms.push_back(stats::MultivariateNormal::isotropic(
            rng.standard_normal_vector(dim), 0.5));
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

linalg::Matrix spd_matrix(std::size_t n, std::uint64_t seed) {
    stats::Rng rng(seed);
    linalg::Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.normal();
    }
    linalg::Matrix spd = m.matmul(m.transposed());
    spd.add_diagonal(1.0);
    return spd;
}

std::vector<BenchSpec> build_registry() {
    std::vector<BenchSpec> registry;

    registry.push_back({"linalg.cholesky_factor_solve", false, [](std::size_t iters) {
        static const linalg::Matrix spd = spd_matrix(32, 3);
        static const linalg::Vector b = stats::Rng(4).standard_normal_vector(32);
        for (std::size_t i = 0; i < iters; ++i) {
            const linalg::Cholesky chol(spd);
            sink(chol.solve(b)[0]);
        }
    }});

    registry.push_back({"linalg.eig_sym", false, [](std::size_t iters) {
        static const linalg::Matrix spd = spd_matrix(24, 5);
        for (std::size_t i = 0; i < iters; ++i) sink(linalg::eigen_sym(spd).values[0]);
    }});

    registry.push_back({"linalg.qr", false, [](std::size_t iters) {
        static const linalg::Matrix a = [] {
            stats::Rng rng(6);
            linalg::Matrix m(48, 16);
            for (std::size_t r = 0; r < 48; ++r) {
                for (std::size_t c = 0; c < 16; ++c) m(r, c) = rng.normal();
            }
            return m;
        }();
        for (std::size_t i = 0; i < iters; ++i) sink(linalg::QR(a).r()(0, 0));
    }});

    registry.push_back({"linalg.matmul", false, [](std::size_t iters) {
        static const linalg::Matrix a = spd_matrix(48, 7);
        static const linalg::Matrix b = spd_matrix(48, 8);
        for (std::size_t i = 0; i < iters; ++i) sink(a.matmul(b)(0, 0));
    }});

    // The dispatched SIMD kernels at a hot-path-typical length. These time
    // whatever backend linalg::simd::active() resolved (DREL_SIMD overrides),
    // so a recorded baseline pins the NATIVE backend's throughput.
    registry.push_back({"linalg.simd_dot", false, [](std::size_t iters) {
        static const linalg::Vector x = stats::Rng(31).standard_normal_vector(256);
        static const linalg::Vector y = stats::Rng(32).standard_normal_vector(256);
        for (std::size_t i = 0; i < iters; ++i) {
            sink(linalg::dot_n(x.data(), y.data(), x.size()));
        }
    }});

    registry.push_back({"linalg.simd_axpy", false, [](std::size_t iters) {
        static const linalg::Vector x = stats::Rng(33).standard_normal_vector(256);
        static linalg::Vector y = stats::Rng(34).standard_normal_vector(256);
        // Paired +a/-a updates keep y bounded at any iteration count; one
        // "iteration" therefore times TWO axpy calls.
        for (std::size_t i = 0; i < iters; ++i) {
            linalg::axpy_n(0.5, x.data(), y.data(), y.size());
            linalg::axpy_n(-0.5, x.data(), y.data(), y.size());
        }
        sink(y[0]);
    }});

    registry.push_back({"models.erm_gradient", false, [](std::size_t iters) {
        static const models::Dataset d = bench_dataset(256, 8);
        static const auto loss = models::make_logistic_loss();
        static const models::ErmObjective objective(d, *loss);
        static const linalg::Vector theta = stats::Rng(9).standard_normal_vector(d.dim());
        linalg::Vector grad;
        for (std::size_t i = 0; i < iters; ++i) sink(objective.eval(theta, &grad));
    }});

    registry.push_back({"dro.wasserstein_eval", false, [](std::size_t iters) {
        static const models::Dataset d = bench_dataset(256, 8);
        static const auto loss = models::make_logistic_loss();
        static const dro::WassersteinDroObjective objective(d, *loss, 0.2);
        static const linalg::Vector theta = stats::Rng(10).standard_normal_vector(d.dim());
        linalg::Vector grad;
        for (std::size_t i = 0; i < iters; ++i) sink(objective.eval(theta, &grad));
    }});

    registry.push_back({"dro.kl_dual", false, [](std::size_t iters) {
        static const linalg::Vector losses = [] {
            stats::Rng rng(11);
            linalg::Vector l(256);
            for (double& x : l) x = rng.gamma(2.0, 0.5);
            return l;
        }();
        for (std::size_t i = 0; i < iters; ++i) sink(dro::solve_kl_dual(losses, 0.3).value);
    }});

    registry.push_back({"dro.chi2_dual", false, [](std::size_t iters) {
        static const linalg::Vector losses = [] {
            stats::Rng rng(12);
            linalg::Vector l(256);
            for (double& x : l) x = rng.gamma(2.0, 0.5);
            return l;
        }();
        for (std::size_t i = 0; i < iters; ++i) {
            sink(dro::solve_chi_square_dual(losses, 0.3).value);
        }
    }});

    registry.push_back({"dp.mixture_responsibilities", false, [](std::size_t iters) {
        static const dp::MixturePrior prior = bench_prior(9, 16);
        static const linalg::Vector theta = stats::Rng(13).standard_normal_vector(9);
        for (std::size_t i = 0; i < iters; ++i) sink(prior.responsibilities(theta)[0]);
    }});

    // Batched shard scoring: the SAME mixture shape as
    // dp.mixture_responsibilities (dim 9, 16 atoms), 512 devices per call.
    // One iteration here does the work of 512 per-device evaluations, so
    // the ≥2x win shows up as median(this) < 0.5 * 512 *
    // median(dp.mixture_responsibilities) — the comparison EXPERIMENTS.md
    // E22 records.
    registry.push_back({"dp.batch_responsibilities", false, [](std::size_t iters) {
        static const dp::MixturePrior prior = bench_prior(9, 16);
        static const dp::BatchResponsibilities batch(prior);
        constexpr std::size_t kDevices = 512;
        static const std::vector<double> thetas = [] {
            stats::Rng rng(35);
            std::vector<double> t(kDevices * 9);
            for (double& v : t) v = rng.normal();
            return t;
        }();
        static const std::vector<std::size_t> tags(kDevices, 0);
        static std::vector<double> accuracy(kDevices, 0.0);
        util::Workspace& ws = util::Workspace::local();
        for (std::size_t i = 0; i < iters; ++i) {
            batch.score_match_into(thetas.data(), kDevices, tags.data(), accuracy.data(),
                                   ws);
            sink(accuracy[0]);
        }
    }});

    // One alias draw over a 64-way table (build amortized away): the O(1)
    // replacement for the O(K) categorical scan in the Gibbs sweep.
    registry.push_back({"stats.alias_draw", false, [](std::size_t iters) {
        static const stats::AliasTable table = [] {
            stats::Rng rng(36);
            std::vector<double> weights(64);
            for (double& w : weights) w = 0.1 + rng.uniform();
            stats::AliasTable t;
            t.rebuild(weights.data(), weights.size());
            return t;
        }();
        stats::Rng rng(37);
        double acc = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
            acc += static_cast<double>(table.draw(rng));
        }
        sink(acc);
    }});

    registry.push_back({"dp.gibbs_sweep", false, [](std::size_t iters) {
        static std::vector<linalg::Vector> observations = [] {
            stats::Rng rng(14);
            std::vector<linalg::Vector> obs;
            for (int i = 0; i < 40; ++i) {
                linalg::Vector x = rng.standard_normal_vector(9);
                x[0] += (i % 3) * 6.0;
                obs.push_back(std::move(x));
            }
            return obs;
        }();
        static dp::DpmmGibbs sampler = [] {
            dp::DpmmConfig config;
            config.base_mean = linalg::zeros(9);
            config.base_covariance = linalg::Matrix::identity(9) * 10.0;
            config.within_covariance = linalg::Matrix::identity(9) * 0.3;
            return dp::DpmmGibbs(observations, config);
        }();
        stats::Rng sweep_rng(15);
        for (std::size_t i = 0; i < iters; ++i) sampler.sweep(sweep_rng);
        sink(static_cast<double>(sampler.num_clusters()));
    }});

    registry.push_back({"optim.lbfgs_erm", false, [](std::size_t iters) {
        static const models::Dataset d = bench_dataset(64, 8);
        static const auto loss = models::make_logistic_loss();
        static const models::ErmObjective objective(d, *loss, 0.01);
        for (std::size_t i = 0; i < iters; ++i) {
            sink(optim::minimize_lbfgs(objective, linalg::zeros(d.dim())).value);
        }
    }});

    registry.push_back({"optim.sgd_epoch", false, [](std::size_t iters) {
        static const models::Dataset d = bench_dataset(256, 8);
        static const auto loss = models::make_logistic_loss();
        static const models::StochasticErm stochastic(d, *loss, 0.01);
        static const optim::SgdOptions options = [] {
            optim::SgdOptions o;
            o.epochs = 1;
            return o;
        }();
        stats::Rng rng(16);
        for (std::size_t i = 0; i < iters; ++i) {
            sink(optim::minimize_sgd(stochastic, linalg::zeros(d.dim()), rng, options).value);
        }
    }});

    registry.push_back({"edgesim.prior_encode_decode", false, [](std::size_t iters) {
        static const dp::MixturePrior prior = bench_prior(9, 6);
        for (std::size_t i = 0; i < iters; ++i) {
            const auto encoded = edgesim::encode_prior(prior);
            sink(edgesim::decode_prior(encoded).weights()[0]);
        }
    }});

    registry.push_back({"edgesim.prior_encode_decode_v2", false, [](std::size_t iters) {
        // The compressed broadcast path: 8-bit quantized + delta against the
        // last-acked prior, i.e. the per-round re-push a v2 fleet pays.
        static const dp::MixturePrior prior = bench_prior(9, 6);
        static const edgesim::PriorBase base{&prior, 1};
        static const edgesim::EncodingOptions options = [] {
            edgesim::EncodingOptions o;
            o.version = edgesim::kWireV2;
            o.quantized = true;
            o.quantization_bits = 8;
            o.delta = true;
            o.prior_version = 2;
            return o;
        }();
        for (std::size_t i = 0; i < iters; ++i) {
            const auto encoded = edgesim::encode_prior(prior, options, &base);
            sink(edgesim::decode_prior(encoded, &base).weights()[0]);
        }
    }});

    registry.push_back({"e2e.em_solve_small", true, [](std::size_t iters) {
        static const models::Dataset train = bench_dataset(48, 5);
        static const dp::MixturePrior prior = bench_prior(6, 3);
        static const core::EdgeLearner learner = [] {
            core::EdgeLearnerConfig config;
            config.em.max_outer_iterations = 8;
            return core::EdgeLearner(bench_prior(6, 3), config);
        }();
        for (std::size_t i = 0; i < iters; ++i) sink(learner.fit(train).objective);
    }});

    registry.push_back({"e2e.fleet_round_small", true, [](std::size_t iters) {
        edgesim::SimulationConfig config;
        config.feature_dim = 5;
        config.num_modes = 3;
        config.num_contributors = 4;
        config.contributor_samples = 80;
        config.num_edge_devices = 3;
        config.edge_samples = 8;
        config.test_samples = 100;
        config.cloud.gibbs_sweeps = 10;
        config.learner.em.max_outer_iterations = 5;
        config.num_threads = util::Executor::global().max_threads();
        for (std::size_t i = 0; i < iters; ++i) {
            stats::Rng rng(17);
            sink(edgesim::run_fleet_simulation(config, rng).mean_em_dro_accuracy());
        }
    }});

    registry.push_back({"edgesim.engine_event_loop", false, [](std::size_t iters) {
        // Pure engine overhead: scheduler + shard dispatch + server admission
        // with near-zero device work. Catches regressions in the event loop
        // itself that the large e2e run would hide under device work.
        static const stats::Rng root(18);
        static const stats::Rng device_root = root.fork(4);
        static const edgesim::FaultPlan plan({}, root);
        edgesim::EngineConfig config;
        config.rounds = 3;
        config.devices_per_round = 64;
        config.theta_dim = 2;
        config.num_shards = 4;
        const edgesim::DeviceWork work = [](std::size_t /*round*/, std::size_t /*device*/,
                                            stats::Rng& work_rng, util::Workspace& /*ws*/) {
            edgesim::DeviceResult result;
            result.scored = true;
            result.accuracy = work_rng.uniform();
            result.attempted_upload = true;
            result.upload_attempts = 1;
            result.upload_delivered = true;
            result.theta = work_rng.standard_normal_vector(2);
            return result;
        };
        const edgesim::RoundEndFn round_end = [](std::size_t /*round*/,
                                                 edgesim::CloudServer& server) {
            (void)server.take_serviced_thetas();
            return edgesim::RoundEndDecision{};
        };
        for (std::size_t i = 0; i < iters; ++i) {
            sink(edgesim::run_fleet_engine(config, device_root, plan, work, round_end)
                     .rounds.back()
                     .mean_accuracy);
        }
    }});

    registry.push_back({"e2e.fleet_round_large", true, [](std::size_t iters) {
        // Deployment-scale round: 100k devices through the sharded
        // event-driven engine (cheap per-device work, sufficient-statistics
        // uploads) — the throughput number bench_fleet_scale reports,
        // pinned here so the gate watches it.
        edgesim::ScaleFleetConfig config;
        config.devices_per_round = 100000;
        config.rounds = 1;
        config.num_shards = 16;
        config.num_threads = util::Executor::global().max_threads();
        for (std::size_t i = 0; i < iters; ++i) {
            stats::Rng rng(19);
            sink(edgesim::run_scale_fleet(config, rng).mode_recovery_rate);
        }
    }});

    return registry;
}

// ---------------------------------------------------------------------------
// Environment capture.

std::string capture_git_sha() {
    if (const char* env = std::getenv("DREL_GIT_SHA")) return env;
#if defined(__unix__) || defined(__APPLE__)
    if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buffer[128] = {0};
        std::string sha;
        if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
        ::pclose(pipe);
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
        if (sha.size() == 40) return sha;
    }
#endif
    return "unknown";
}

obs::JsonValue capture_environment() {
    obs::JsonValue::Object env;
    env["git_sha"] = capture_git_sha();
#if defined(__VERSION__)
    env["compiler"] = std::string(__VERSION__);
#else
    env["compiler"] = "unknown";
#endif
#if defined(DREL_BUILD_TYPE)
    env["build_type"] = std::string(DREL_BUILD_TYPE);
#else
    env["build_type"] = "unknown";
#endif
    env["threads"] = static_cast<std::uint64_t>(util::Executor::global().max_threads());
    return obs::JsonValue(std::move(env));
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_PERF.json";
    std::string filter;
    bool smoke = false;
    bool list_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--filter" && i + 1 < argc) {
            filter = argv[++i];
        } else {
            std::cerr << "usage: bench_perf_runner [--out PATH] [--filter SUBSTR]"
                         " [--smoke] [--list]\n";
            return 2;
        }
    }

    const std::vector<BenchSpec> registry = build_registry();
    if (list_only) {
        for (const BenchSpec& spec : registry) std::cout << spec.name << "\n";
        return 0;
    }

    // Full run: ~2ms samples x 11 reps gives a stable median on a quiet box.
    // Smoke: just enough to exercise every benchmark and the JSON schema.
    const double target_ms = smoke ? 0.1 : 2.0;
    const std::uint64_t reps_micro = smoke ? 3 : 11;
    const std::uint64_t reps_e2e = smoke ? 2 : 5;

    obs::JsonValue::Object benchmarks;
    for (const BenchSpec& spec : registry) {
        if (!filter.empty() && spec.name.find(filter) == std::string::npos) continue;
        std::cerr << "perf: " << spec.name << " ..." << std::flush;
        const BenchResult r = measure(spec, target_ms, spec.end_to_end ? reps_e2e : reps_micro);
        std::cerr << " median " << r.median_ms << " ms (mad " << r.mad_ms << ")\n";
        obs::JsonValue::Object entry;
        entry["inner_iterations"] = r.inner_iterations;
        entry["repetitions"] = r.repetitions;
        entry["min_ms"] = r.min_ms;
        entry["median_ms"] = r.median_ms;
        entry["mad_ms"] = r.mad_ms;
        entry["mean_ms"] = r.mean_ms;
        benchmarks[spec.name] = obs::JsonValue(std::move(entry));
    }
    if (benchmarks.empty()) {
        std::cerr << "bench_perf_runner: filter matched no benchmarks\n";
        return 2;
    }

    obs::JsonValue::Object config;
    config["smoke"] = smoke;
    config["target_sample_ms"] = target_ms;
    config["repetitions_micro"] = reps_micro;
    config["repetitions_e2e"] = reps_e2e;

    obs::JsonValue::Object doc;
    doc["schema_version"] = std::uint64_t{1};
    doc["environment"] = capture_environment();
    doc["config"] = obs::JsonValue(std::move(config));
    doc["benchmarks"] = obs::JsonValue(std::move(benchmarks));

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "bench_perf_runner: cannot open " << out_path << "\n";
        return 1;
    }
    out << obs::JsonValue(std::move(doc)).dump(2) << "\n";
    std::cerr << "perf: wrote " << out_path << "\n";
    return 0;
}
