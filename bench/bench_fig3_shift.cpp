// E2 / Fig. 3 — test accuracy vs edge/cloud distribution shift.
//
// The edge device trains on n=24 clean samples; the test distribution's
// feature mean is shifted by a growing magnitude. Expect: every method
// degrades, but em-dro (and dro-only) degrade most gracefully while
// local-erm falls off fastest — the robustness claim.
#include "data/shifts.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E2 (Fig. 3)",
                        "Test accuracy vs covariate-shift magnitude (n_train=24), mean+-std "
                        "over 5 seeds. Shift = mean displacement of test features.");

    const std::vector<double> magnitudes = {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
    const int num_seeds = 5;

    std::vector<std::string> method_names;
    std::vector<std::vector<stats::RunningStats>> accuracy;

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(300 + s);
        data::DataOptions options;
        options.margin_scale = 2.0;
        stats::Rng rng(400 + s);
        const bench::EdgeTask edge =
            bench::make_edge_task(fixture.population, 24, 4000, rng, options);

        const auto suite =
            baselines::make_standard_suite(fixture.prior, models::LossKind::kLogistic);
        if (method_names.empty()) {
            for (const auto& t : suite) method_names.push_back(t->name());
            accuracy.assign(suite.size(), std::vector<stats::RunningStats>(magnitudes.size()));
        }

        // Fit once per method (training data is shift-free), evaluate across
        // the whole magnitude sweep.
        std::vector<models::LinearModel> fitted;
        for (const auto& t : suite) fitted.push_back(t->fit(edge.train));

        linalg::Vector direction = rng.standard_normal_vector(fixture.population.feature_dim());
        linalg::scale(direction, 1.0 / linalg::norm2(direction));
        for (std::size_t gi = 0; gi < magnitudes.size(); ++gi) {
            const models::Dataset shifted =
                data::apply_mean_shift(edge.test, linalg::scaled(direction, magnitudes[gi]));
            for (std::size_t m = 0; m < fitted.size(); ++m) {
                accuracy[m][gi].push(models::accuracy(fitted[m], shifted));
            }
        }
    }

    std::vector<std::string> header = {"method"};
    for (const double g : magnitudes) header.push_back("shift=" + util::Table::fmt(g, 2));
    util::Table table(header);
    for (std::size_t m = 0; m < method_names.size(); ++m) {
        std::vector<std::string> row = {method_names[m]};
        for (std::size_t gi = 0; gi < magnitudes.size(); ++gi) {
            row.push_back(bench::mean_std(accuracy[m][gi]));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    return 0;
}
