// E6 / Table III — ablation over the two ingredients.
//
// Grid: prior in {none, single-gaussian (moment-matched), dp-mixture} x
// ambiguity in {none, wasserstein, kl, chi-square}, everything else fixed.
// Expect (a) dp > gaussian > none along the prior axis — the DP's
// multi-modality is load-bearing because the population IS multi-modal; and
// (b) any ambiguity set > none along the robustness axis at this n, with
// the combination (the paper's method) on top.
#include "data/shifts.hpp"

#include "bench_common.hpp"

namespace {

using namespace drel;

models::LinearModel fit_cell(const dp::MixturePrior* prior, dro::AmbiguityKind kind,
                             const models::Dataset& train) {
    if (prior == nullptr) {
        // No prior: plain (possibly robust) local training.
        const auto trainer =
            (kind == dro::AmbiguityKind::kNone)
                ? baselines::make_local_erm(models::LossKind::kLogistic)
                : baselines::make_dro_only(models::LossKind::kLogistic, kind, 0.25);
        return trainer->fit(train);
    }
    core::EdgeLearnerConfig config;
    config.ambiguity.kind = kind;
    config.transfer_weight = 1.0;
    const core::EdgeLearner learner(*prior, config);
    return learner.fit(train).model;
}

}  // namespace

int main() {
    using namespace drel;
    bench::print_header("E6 (Table III)",
                        "Ablation: prior family x ambiguity set, test accuracy (n_train=16), "
                        "mean+-std over 6 seeds. single-gaussian = moment-matched collapse "
                        "of the DP prior.");

    const std::vector<dro::AmbiguityKind> ambiguities = {
        dro::AmbiguityKind::kNone, dro::AmbiguityKind::kWasserstein, dro::AmbiguityKind::kKl,
        dro::AmbiguityKind::kChiSquare};
    const std::vector<std::string> prior_names = {"no-prior", "single-gaussian", "dp-mixture"};
    const int num_seeds = 6;

    std::vector<std::vector<stats::RunningStats>> accuracy_iid(
        prior_names.size(), std::vector<stats::RunningStats>(ambiguities.size()));
    std::vector<std::vector<stats::RunningStats>> accuracy_shifted(
        prior_names.size(), std::vector<stats::RunningStats>(ambiguities.size()));

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(1100 + s);
        const dp::MixturePrior gaussian =
            dp::MixturePrior::single(fixture.prior.moment_matched_gaussian());
        data::DataOptions options;
        options.margin_scale = 2.0;
        stats::Rng rng(1200 + s);
        const bench::EdgeTask edge =
            bench::make_edge_task(fixture.population, 16, 3000, rng, options);
        // The ambiguity set exists for deployment-time shift; score both.
        linalg::Vector direction =
            rng.standard_normal_vector(fixture.population.feature_dim());
        linalg::scale(direction, 1.0 / linalg::norm2(direction));
        const models::Dataset shifted_test =
            data::apply_mean_shift(edge.test, linalg::scaled(direction, 1.0));

        const std::vector<const dp::MixturePrior*> priors = {nullptr, &gaussian,
                                                             &fixture.prior};
        for (std::size_t pi = 0; pi < priors.size(); ++pi) {
            for (std::size_t ai = 0; ai < ambiguities.size(); ++ai) {
                const models::LinearModel model =
                    fit_cell(priors[pi], ambiguities[ai], edge.train);
                accuracy_iid[pi][ai].push(models::accuracy(model, edge.test));
                accuracy_shifted[pi][ai].push(models::accuracy(model, shifted_test));
            }
        }
    }

    std::vector<std::string> header = {"prior \\ ambiguity"};
    for (const dro::AmbiguityKind kind : ambiguities) {
        header.push_back(dro::ambiguity_name(kind));
    }
    auto emit = [&](const char* title,
                    const std::vector<std::vector<stats::RunningStats>>& accuracy) {
        std::cout << title << "\n";
        util::Table table(header);
        for (std::size_t pi = 0; pi < prior_names.size(); ++pi) {
            std::vector<std::string> row = {prior_names[pi]};
            for (std::size_t ai = 0; ai < ambiguities.size(); ++ai) {
                row.push_back(bench::mean_std(accuracy[pi][ai]));
            }
            table.add_row(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    };
    emit("(a) in-distribution test set", accuracy_iid);
    emit("(b) covariate-shifted test set (magnitude 1.0)", accuracy_shifted);
    return 0;
}
