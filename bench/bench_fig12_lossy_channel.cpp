// E16 (extension) — broadcasting the prior over an unreliable link.
//
// Sweeps the per-packet loss probability and compares the three prior
// encodings. The compact encodings fragment into fewer packets, so their
// whole-payload delivery probability per attempt is higher and the expected
// number of retransmissions lower — compression pays twice on a lossy edge
// link. Reported: attempts to deliver and total bytes on the air (mean over
// 200 trials), per encoding and loss rate.
#include "edgesim/network.hpp"
#include "edgesim/transfer.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_fig12_lossy_channel");
    bench::print_header("E16 (Fig. 12, extension)",
                        "Prior broadcast over a lossy link (256 B packets, ack/retransmit): "
                        "attempts and on-air bytes vs packet loss rate, 200 trials each.");

    // A realistic prior: 5 components over a 9-dim theta (the E1 setup).
    const bench::PipelineFixture fixture = bench::make_pipeline_fixture(3000);

    struct Encoding {
        const char* name;
        edgesim::EncodingOptions options;
    };
    const std::vector<Encoding> encodings = {
        {"f64 full-cov", {}},
        {"f32 full-cov", {true, false}},
        {"f32 diagonal", {true, true}},
    };
    const std::vector<double> loss_rates = {0.0, 0.05, 0.1, 0.2, 0.4};
    const int trials = 200;

    util::Table table({"encoding", "payload B", "packets", "loss rate", "attempts",
                       "on-air bytes", "delivery %"});
    for (const Encoding& encoding : encodings) {
        const auto payload = edgesim::encode_prior(fixture.prior, encoding.options);
        const std::size_t packets = (payload.size() + 255) / 256;
        for (const double loss : loss_rates) {
            edgesim::ChannelConfig channel;
            channel.packet_loss_prob = loss;
            channel.max_transmissions = 200;
            stats::RunningStats attempts;
            stats::RunningStats on_air;
            int delivered = 0;
            stats::Rng rng(3100);
            for (int t = 0; t < trials; ++t) {
                stats::Rng trial_rng = rng.fork(static_cast<std::uint64_t>(t) +
                                                1000 * static_cast<std::uint64_t>(loss * 100));
                const edgesim::TransmissionReport report =
                    edgesim::transmit_prior(payload, channel, trial_rng);
                attempts.push(static_cast<double>(report.attempts));
                on_air.push(static_cast<double>(report.transmitted_bytes));
                if (report.delivered) ++delivered;
            }
            table.add_row({encoding.name, std::to_string(payload.size()),
                           std::to_string(packets), util::Table::fmt(loss, 2),
                           bench::mean_std(attempts, 1), bench::mean_std(on_air, 0),
                           util::Table::fmt(100.0 * delivered / trials, 1)});
        }
    }
    table.print(std::cout);
    return 0;
}
