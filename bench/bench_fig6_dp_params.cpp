// E7 / Fig. 6 — the DP knobs: concentration alpha and truncation K.
//
// Left sweep: cloud alpha in {0.1 .. 10}. Alpha controls how readily the
// cloud posits new device types: too small under-segments (modes merged),
// too large fragments. We report discovered components, transfer bytes and
// downstream edge accuracy; expect accuracy flat-topped around the true
// mode count with degradation at the extremes.
// Right sweep: variational truncation K with the float32/diagonal encodings
// — the communication-vs-fidelity frontier.
#include "edgesim/transfer.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E7 (Fig. 6)",
                        "DP hyperparameters: alpha sweep (Gibbs) and truncation/encoding "
                        "sweep (variational), mean over 4 seeds; population has 4 true "
                        "modes; n_train=16.");

    const int num_seeds = 4;

    // ---------------- alpha sweep (Gibbs) ----------------
    {
        const std::vector<double> alphas = {0.1, 0.5, 1.0, 2.0, 5.0, 10.0};
        std::vector<stats::RunningStats> components(alphas.size());
        std::vector<stats::RunningStats> bytes(alphas.size());
        std::vector<stats::RunningStats> accuracy(alphas.size());

        for (int s = 0; s < num_seeds; ++s) {
            stats::Rng rng(1300 + s);
            const data::TaskPopulation population =
                data::TaskPopulation::make_synthetic(8, 4, 2.5, 0.05, rng);
            data::DataOptions options;
            options.margin_scale = 2.0;

            // Shared contributor uploads across the alpha sweep.
            std::vector<models::Dataset> uploads;
            for (int j = 0; j < 30; ++j) {
                const data::TaskSpec task = population.sample_task(rng);
                uploads.push_back(population.generate(task, 300, rng, options));
            }
            const bench::EdgeTask edge = bench::make_edge_task(population, 16, 3000, rng, options);

            for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
                edgesim::CloudConfig cloud_config;
                cloud_config.dp_alpha = alphas[ai];
                cloud_config.gibbs_sweeps = 60;
                edgesim::CloudNode cloud(cloud_config);
                for (const auto& u : uploads) cloud.add_contributor_data(u);
                stats::Rng prior_rng(1400 + 100 * s + static_cast<std::uint64_t>(ai));
                const dp::MixturePrior prior = cloud.fit_prior(prior_rng);
                components[ai].push(static_cast<double>(prior.num_components()));
                bytes[ai].push(static_cast<double>(edgesim::encode_prior(prior).size()));
                const core::EdgeLearner learner(prior, {});
                accuracy[ai].push(models::accuracy(learner.fit(edge.train).model, edge.test));
            }
        }

        util::Table table({"alpha", "prior components", "transfer bytes", "edge accuracy"});
        for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
            table.add_row({util::Table::fmt(alphas[ai], 1), bench::mean_std(components[ai], 1),
                           bench::mean_std(bytes[ai], 0), bench::mean_std(accuracy[ai])});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---------------- truncation & encoding sweep (variational) ----------------
    {
        const std::vector<std::size_t> truncations = {2, 4, 8, 16};
        util::Table table({"K", "encoding", "kept atoms", "bytes", "edge accuracy"});
        for (const std::size_t k : truncations) {
            stats::RunningStats kept;
            stats::RunningStats acc_full;
            stats::RunningStats bytes_full;
            stats::RunningStats acc_f32diag;
            stats::RunningStats bytes_f32diag;
            for (int s = 0; s < num_seeds; ++s) {
                stats::Rng rng(1500 + s);
                const data::TaskPopulation population =
                    data::TaskPopulation::make_synthetic(8, 4, 2.5, 0.05, rng);
                data::DataOptions options;
                options.margin_scale = 2.0;
                edgesim::CloudConfig cloud_config;
                cloud_config.inference = edgesim::PriorInference::kVariational;
                cloud_config.variational_truncation = k;
                edgesim::CloudNode cloud(cloud_config);
                for (int j = 0; j < 30; ++j) {
                    const data::TaskSpec task = population.sample_task(rng);
                    cloud.add_contributor_data(population.generate(task, 300, rng, options));
                }
                stats::Rng prior_rng(1600 + s);
                const dp::MixturePrior prior = cloud.fit_prior(prior_rng);
                kept.push(static_cast<double>(prior.num_components()));

                const bench::EdgeTask edge =
                    bench::make_edge_task(population, 16, 3000, rng, options);
                // Full-precision encoding.
                {
                    const auto payload = edgesim::encode_prior(prior);
                    bytes_full.push(static_cast<double>(payload.size()));
                    const core::EdgeLearner learner(edgesim::decode_prior(payload), {});
                    acc_full.push(models::accuracy(learner.fit(edge.train).model, edge.test));
                }
                // Compressed: float32 + diagonal covariances.
                {
                    edgesim::EncodingOptions compressed;
                    compressed.use_float32 = true;
                    compressed.diagonal_only = true;
                    const auto payload = edgesim::encode_prior(prior, compressed);
                    bytes_f32diag.push(static_cast<double>(payload.size()));
                    const core::EdgeLearner learner(edgesim::decode_prior(payload), {});
                    acc_f32diag.push(
                        models::accuracy(learner.fit(edge.train).model, edge.test));
                }
            }
            table.add_row({std::to_string(k), "f64 full-cov", bench::mean_std(kept, 1),
                           bench::mean_std(bytes_full, 0), bench::mean_std(acc_full)});
            table.add_row({std::to_string(k), "f32 diagonal", bench::mean_std(kept, 1),
                           bench::mean_std(bytes_f32diag, 0), bench::mean_std(acc_f32diag)});
        }
        table.print(std::cout);
    }
    return 0;
}
