// E17 (extension) — robust regression: the sqrt-ridge reformulation under
// test-time feature corruption.
//
// Train type-2 Wasserstein-robust linear regression at several radii on 40
// noisy samples; evaluate MSE on a clean test set and on test sets whose
// features carry extra sensor noise. Expect the classic robustness pattern:
// rho=0 wins on clean data, the best rho grows with the corruption level,
// and over-robust models flatten toward predicting the mean.
#include "data/shifts.hpp"
#include "data/task_generator.hpp"
#include "dro/wasserstein_regression.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E17 (Fig. 13, extension)",
                        "Type-2 Wasserstein regression (sqrt-ridge dual): test MSE vs "
                        "training rho under growing test-time feature noise, mean+-std "
                        "over 6 seeds (n_train=40, label noise 0.3).");

    const std::vector<double> radii = {0.0, 0.05, 0.1, 0.2, 0.4, 0.8};
    const std::vector<double> corruption = {0.0, 0.3, 0.8};
    const int num_seeds = 6;

    std::vector<std::vector<stats::RunningStats>> mse(
        corruption.size(), std::vector<stats::RunningStats>(radii.size()));

    for (int s = 0; s < num_seeds; ++s) {
        stats::Rng rng(3300 + s);
        linalg::Vector theta_star = rng.standard_normal_vector(6);
        linalg::scale(theta_star, 1.5);
        theta_star.push_back(0.4);
        const models::Dataset train =
            data::generate_regression_data(theta_star, 40, 0.3, rng);
        const models::Dataset clean_test =
            data::generate_regression_data(theta_star, 3000, 0.3, rng);

        std::vector<models::LinearModel> fitted;
        for (const double rho : radii) {
            const dro::WassersteinRegressionObjective objective(train, rho, 1e-8);
            fitted.emplace_back(
                optim::minimize_lbfgs(objective, linalg::zeros(train.dim())).x);
        }
        for (std::size_t ci = 0; ci < corruption.size(); ++ci) {
            const models::Dataset test =
                corruption[ci] == 0.0
                    ? clean_test
                    : data::apply_feature_noise(clean_test, corruption[ci], rng);
            for (std::size_t ri = 0; ri < radii.size(); ++ri) {
                mse[ci][ri].push(models::mse(fitted[ri], test));
            }
        }
    }

    std::vector<std::string> header = {"train rho"};
    for (const double c : corruption) {
        header.push_back("MSE @ noise " + util::Table::fmt(c, 1));
    }
    util::Table table(header);
    for (std::size_t ri = 0; ri < radii.size(); ++ri) {
        std::vector<std::string> row = {util::Table::fmt(radii[ri], 2)};
        for (std::size_t ci = 0; ci < corruption.size(); ++ci) {
            row.push_back(bench::mean_std(mse[ci][ri]));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    return 0;
}
