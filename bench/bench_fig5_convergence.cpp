// E4 / Fig. 5 — EM-DRO convergence.
//
// One representative run: the single-layer objective F(theta_t), its robust
// and log-prior components, the responsibility entropy, and held-out
// accuracy per outer iteration. Expect F monotone non-increasing (the
// majorize-minimize guarantee), entropy collapsing as the solver locks onto
// one prior component, and accuracy saturating within a handful of
// iterations — the "edge-friendly compute budget" claim.
#include "core/em_dro.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_fig5_convergence");
    bench::print_header("E4 (Fig. 5)",
                        "EM-DRO trace on one task (n_train=24, Wasserstein rho auto). "
                        "objective must be non-increasing; entropy shows component lock-in.");

    const bench::PipelineFixture fixture = bench::make_pipeline_fixture(700);
    data::DataOptions options;
    options.margin_scale = 2.0;
    stats::Rng rng(701);
    const bench::EdgeTask edge = bench::make_edge_task(fixture.population, 24, 4000, rng, options);

    const auto loss = models::make_logistic_loss();
    const dro::AmbiguitySet set =
        dro::AmbiguitySet::wasserstein(dro::radius_for_sample_size(0.25, edge.train.size()));
    core::EmDroOptions em_options;
    em_options.max_outer_iterations = 25;
    em_options.objective_tolerance = 0.0;  // run the full budget for the plot
    const core::EmDroSolver solver(edge.train, *loss, fixture.prior, set, 2.0, em_options);

    // Re-run manually so we can score accuracy at every iterate.
    linalg::Vector theta = fixture.prior.mean();
    util::Table table({"iter", "objective F", "robust loss R", "log prior", "resp entropy",
                       "test acc"});
    const core::EmDroResult result = solver.solve_from(theta);
    // The trace holds per-iteration components; replay accuracy by re-solving
    // prefix-by-prefix (cheap at this scale, exact).
    for (int t = 1; t <= result.trace.outer_iterations; ++t) {
        core::EmDroOptions prefix = em_options;
        prefix.max_outer_iterations = t;
        const core::EmDroSolver prefix_solver(edge.train, *loss, fixture.prior, set, 2.0,
                                              prefix);
        const core::EmDroResult r = prefix_solver.solve_from(fixture.prior.mean());
        const std::size_t i = static_cast<std::size_t>(t - 1);
        table.add_row({std::to_string(t), util::Table::fmt(result.trace.objective[i], 6),
                       util::Table::fmt(result.trace.robust_loss[i], 6),
                       util::Table::fmt(result.trace.log_prior[i], 4),
                       util::Table::fmt(result.trace.responsibility_entropy[i], 4),
                       util::Table::fmt(
                           models::accuracy(models::LinearModel(r.theta), edge.test), 4)});
    }
    table.print(std::cout);

    std::cout << "\nfinal objective " << util::Table::fmt(result.objective, 6) << " after "
              << result.trace.outer_iterations << " outer iterations (converged="
              << (result.trace.converged ? "yes" : "no") << ")\n";
    return 0;
}
