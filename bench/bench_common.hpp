// Shared fixtures for the experiment benches (E1..E10 in DESIGN.md).
//
// Each bench binary prints the rows/series of one reconstructed table or
// figure. The common fixture builds the full pipeline — device population,
// cloud contributors, DPMM prior — so every number reported downstream comes
// from the same code a deployment would run.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/trainers.hpp"
#include "core/edge_learner.hpp"
#include "data/task_generator.hpp"
#include "dp/mixture_prior.hpp"
#include "edgesim/cloud.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/executor.hpp"
#include "util/table.hpp"

namespace drel::bench {

struct PipelineFixture {
    data::TaskPopulation population;
    dp::MixturePrior prior;              ///< learned by the cloud (DPMM-Gibbs)
    dp::MixturePrior oracle_prior;       ///< the true population mixture
};

struct FixtureConfig {
    std::size_t feature_dim = 8;
    std::size_t num_modes = 4;
    double mode_radius = 2.5;
    double within_mode_var = 0.05;
    double margin_scale = 2.0;
    std::size_t num_contributors = 30;
    std::size_t contributor_samples = 300;
    int gibbs_sweeps = 60;
};

inline dp::MixturePrior oracle_prior_of(const data::TaskPopulation& population) {
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

/// Builds population + cloud-learned prior, all deterministic from `seed`.
inline PipelineFixture make_pipeline_fixture(std::uint64_t seed,
                                             const FixtureConfig& config = {}) {
    stats::Rng rng(seed);
    data::TaskPopulation population = data::TaskPopulation::make_synthetic(
        config.feature_dim, config.num_modes, config.mode_radius, config.within_mode_var, rng);

    data::DataOptions options;
    options.margin_scale = config.margin_scale;

    edgesim::CloudConfig cloud_config;
    cloud_config.gibbs_sweeps = config.gibbs_sweeps;
    edgesim::CloudNode cloud(cloud_config);
    for (std::size_t j = 0; j < config.num_contributors; ++j) {
        const data::TaskSpec task = population.sample_task(rng);
        cloud.add_contributor_data(
            population.generate(task, config.contributor_samples, rng, options));
    }
    dp::MixturePrior prior = cloud.fit_prior(rng);
    dp::MixturePrior oracle = oracle_prior_of(population);
    return PipelineFixture{std::move(population), std::move(prior), std::move(oracle)};
}

/// One edge task: small train set + large test set, same distribution unless
/// the caller shifts the test set afterwards.
struct EdgeTask {
    data::TaskSpec task;
    models::Dataset train;
    models::Dataset test;
};

inline EdgeTask make_edge_task(const data::TaskPopulation& population, std::size_t n_train,
                               std::size_t n_test, stats::Rng& rng,
                               const data::DataOptions& options) {
    const data::TaskSpec task = population.sample_task(rng);
    models::Dataset train = population.generate(task, n_train, rng, options);
    models::Dataset test = population.generate(task, n_test, rng, options);
    return EdgeTask{task, std::move(train), std::move(test)};
}

/// Runs `trials` independent repetitions concurrently on the shared
/// executor and returns the per-trial results in trial order.
///
/// `fn(t)` must derive all randomness from the trial index (fresh Rng seeded
/// or forked per trial) and write nothing shared — each result lands in an
/// indexed slot, so downstream statistics accumulated by scanning the
/// returned vector in order are bit-identical at any thread count. This is
/// the bench-side analogue of the fleet simulation's per-device contract.
template <typename Fn>
auto parallel_trials(std::size_t trials, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    std::vector<std::invoke_result_t<Fn&, std::size_t>> results(trials);
    util::parallel_for(trials, util::Executor::global().max_threads(),
                       [&](std::size_t t) { results[t] = fn(t); });
    return results;
}

/// RAII metrics sidecar: declare one at the top of a bench's main() and a
/// schema-versioned JSON document (see obs::bench_sidecar_json) is written
/// next to the bench's stdout when main() returns — `<name>.metrics.json`
/// in the working directory, or under $DREL_METRICS_DIR when set. Disable
/// with DREL_METRICS=0 (no file is written).
class MetricsSidecar {
 public:
    explicit MetricsSidecar(std::string bench_name) : bench_name_(std::move(bench_name)) {}
    MetricsSidecar(const MetricsSidecar&) = delete;
    MetricsSidecar& operator=(const MetricsSidecar&) = delete;

    /// Attaches a fleet-health block (health::FleetTelemetry::to_json) to
    /// the document the destructor writes — the sidecar's schema-v2 "health"
    /// key, consumed by scripts/health_report.py. Call at most once, with
    /// the run the bench considers its headline fleet.
    void set_health(obs::JsonValue health) {
        health_ = std::move(health);
        has_health_ = true;
    }

    ~MetricsSidecar() {
        if (!obs::metrics_enabled()) return;
        std::string dir;
        if (const char* env = std::getenv("DREL_METRICS_DIR")) dir = env;
        std::string path = dir.empty() ? bench_name_ + ".metrics.json"
                                       : dir + "/" + bench_name_ + ".metrics.json";
        if (obs::write_bench_sidecar(bench_name_, path, has_health_ ? &health_ : nullptr)) {
            // stderr, not stdout: bench stdout is table data that scripts may
            // redirect or diff, and the sidecar notice must not contaminate it.
            std::cerr << "metrics sidecar: " << path << "\n";
        }
    }

 private:
    std::string bench_name_;
    obs::JsonValue health_;
    bool has_health_ = false;
};

/// mean +- std formatting for table cells.
inline std::string mean_std(const stats::RunningStats& s, int precision = 3) {
    return util::Table::fmt(s.mean(), precision) + "+-" + util::Table::fmt(s.stddev(), precision);
}

inline void print_header(const std::string& experiment, const std::string& description) {
    std::cout << "=== " << experiment << " ===\n" << description << "\n\n";
}

}  // namespace drel::bench
