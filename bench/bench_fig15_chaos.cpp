// E20 (extension) — graceful degradation under deterministic chaos.
//
// A single knob sweeps every fault probability together (crash, straggler,
// corrupted/stale prior, link outage, upload loss/garbling) from a perfect
// world to total chaos, on a fixed seed per rate. The fault schedule is a
// pure function of (seed, round, device), so each row is exactly
// reproducible and the faulted-device set grows monotonically in the rate.
// Expect: fleet accuracy decays toward the untrained floor as crashes bite,
// the degraded-device count rises to 100%, and the lifecycle keeps paying
// on-air retry bytes for uploads that never land — with zero aborted runs
// anywhere in the sweep.
#include "edgesim/faults.hpp"
#include "edgesim/lifecycle.hpp"
#include "edgesim/simulation.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_fig15_chaos");
    bench::print_header(
        "E20 (Fig. 15, extension)",
        "Fault-rate sweep: every fault probability set to the rate, fixed seed "
        "per row. fleet acc = mean EM-DRO accuracy; floor = mean untrained "
        "accuracy; degraded = devices off the healthy path; lc bytes = "
        "lifecycle upload bytes on the air (every retry attempt counted).");

    const std::vector<double> rates = {0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0};

    util::Table table({"rate", "fleet acc", "floor", "degraded", "lc acc",
                       "lc dropped", "lc retries", "lc bytes"});
    for (const double rate : rates) {
        edgesim::SimulationConfig fleet_config;
        fleet_config.num_contributors = 20;
        fleet_config.contributor_samples = 200;
        fleet_config.num_edge_devices = 24;
        fleet_config.edge_samples = 16;
        fleet_config.test_samples = 800;
        fleet_config.cloud.gibbs_sweeps = 40;
        fleet_config.learner.em.max_outer_iterations = 10;
        fleet_config.num_threads = util::Executor::global().max_threads();
        fleet_config.faults = edgesim::FaultConfig::uniform(rate);
        stats::Rng fleet_rng(1500);
        const edgesim::FleetReport fleet =
            edgesim::run_fleet_simulation(fleet_config, fleet_rng);

        double untrained = 0.0;
        for (const auto& device : fleet.devices) untrained += device.untrained_accuracy;
        untrained /= static_cast<double>(fleet.devices.size());

        edgesim::LifecycleConfig lc_config;
        lc_config.rounds = 5;
        lc_config.devices_per_round = 8;
        lc_config.initial_contributors = 16;
        lc_config.contributor_samples = 200;
        lc_config.gibbs_sweeps = 40;
        lc_config.learner.em.max_outer_iterations = 10;
        lc_config.faults = edgesim::FaultConfig::uniform(rate);
        stats::Rng lc_rng(1600);
        const edgesim::LifecycleReport lifecycle =
            edgesim::run_lifecycle(lc_config, lc_rng);

        stats::RunningStats lc_acc;
        std::size_t dropped = 0;
        for (const auto& round : lifecycle.rounds) {
            if (round.devices_scored > 0) lc_acc.push(round.mean_accuracy);
            dropped += round.uploads_dropped + round.uploads_garbled;
        }

        table.add_row({util::Table::fmt(rate, 2),
                       util::Table::fmt(fleet.mean_em_dro_accuracy(), 3),
                       util::Table::fmt(untrained, 3),
                       std::to_string(fleet.degraded_devices()) + "/" +
                           std::to_string(fleet.devices.size()),
                       lc_acc.count() > 0 ? util::Table::fmt(lc_acc.mean(), 3) : "-",
                       std::to_string(dropped),
                       std::to_string(lifecycle.total_upload_retries),
                       std::to_string(lifecycle.total_upload_bytes)});
    }
    table.print(std::cout);

    std::cout << "\nEvery row completed without a throw: faults degrade devices "
                 "(reported per-device DegradedReason), never the run.\n";
    return 0;
}
