// E19 (extension) — the closed loop: feedback + online prior updates when a
// novel device type appears mid-deployment.
//
// A 3-type population runs for 9 rounds; from round 3 on, half of each
// round's new devices are a FOURTH, previously unseen type. Two worlds:
//   feedback ON  — devices upload fitted parameters, the cloud's DP
//                  posterior absorbs them online (DpmmGibbs::add_observation)
//                  and re-broadcasts when the prior drifts (symmetric-KL
//                  trigger);
//   feedback OFF — the round-0 prior is frozen forever.
// Expect: identical until round 3; afterwards the frozen world's novel-type
// accuracy stays depressed while the feedback world recovers within 1-2
// rounds as the posterior opens a cluster for the new type. The bytes
// column shows what the recovery costs on the wire.
#include "edgesim/lifecycle.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_fig14_lifecycle");
    bench::print_header("E19 (Fig. 14, extension)",
                        "Lifecycle with a novel device type from round 3 (half of new "
                        "devices), mean+-std over 4 seeds. nov-acc = accuracy of "
                        "novel-type devices that round.");

    const int num_seeds = 4;
    const std::size_t rounds = 9;

    struct World {
        std::vector<stats::RunningStats> mean_acc{rounds};
        std::vector<stats::RunningStats> novel_acc{rounds};
        std::vector<stats::RunningStats> components{rounds};
        stats::RunningStats total_bytes;
        int rebroadcasts = 0;
    };
    World fed;
    World frozen;

    for (int s = 0; s < num_seeds; ++s) {
        edgesim::LifecycleConfig config;
        config.rounds = rounds;
        config.devices_per_round = 10;
        config.novel_mode_round = 3;
        config.learner.transfer_weight = 2.0;
        config.learner.em.max_outer_iterations = 12;

        for (const bool feedback : {true, false}) {
            config.feedback = feedback;
            stats::Rng rng(4200 + s);
            const edgesim::LifecycleReport report = edgesim::run_lifecycle(config, rng);
            World& world = feedback ? fed : frozen;
            for (std::size_t r = 0; r < rounds; ++r) {
                world.mean_acc[r].push(report.rounds[r].mean_accuracy);
                if (report.rounds[r].novel_mode_accuracy >= 0.0) {
                    world.novel_acc[r].push(report.rounds[r].novel_mode_accuracy);
                }
                world.components[r].push(
                    static_cast<double>(report.rounds[r].prior_components));
                if (r > 0 && report.rounds[r].rebroadcast) ++world.rebroadcasts;
            }
            world.total_bytes.push(static_cast<double>(report.total_broadcast_bytes +
                                                       report.total_upload_bytes));
        }
    }

    util::Table table({"round", "fed acc", "fed nov-acc", "fed K", "frozen acc",
                       "frozen nov-acc", "frozen K"});
    for (std::size_t r = 0; r < rounds; ++r) {
        auto nov = [&](World& w) {
            return w.novel_acc[r].count() == 0 ? std::string("-")
                                               : bench::mean_std(w.novel_acc[r]);
        };
        table.add_row({std::to_string(r), bench::mean_std(fed.mean_acc[r]), nov(fed),
                       bench::mean_std(fed.components[r], 1),
                       bench::mean_std(frozen.mean_acc[r]), nov(frozen),
                       bench::mean_std(frozen.components[r], 1)});
    }
    table.print(std::cout);

    std::cout << "\nfeedback world : " << fed.rebroadcasts << " re-broadcasts across "
              << num_seeds << " seeds, " << bench::mean_std(fed.total_bytes, 0)
              << " total bytes (broadcast + uploads)\n"
              << "frozen world   : " << frozen.rebroadcasts << " re-broadcasts, "
              << bench::mean_std(frozen.total_bytes, 0) << " total bytes\n";
    return 0;
}
