// E14 (extension) — on-device hyperparameter selection.
//
// Compares: (a) fixed default knobs, (b) deliberately bad knobs, and
// (c) CV-selected knobs, across three scenarios. Expect CV to track the
// default closely (defaults are sane) and to rescue the bad-config gap —
// the point is that a deployment without a tuning oracle can self-serve.
#include "core/model_selection.hpp"
#include "data/scenarios.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E14 (Table V, extension)",
                        "4-fold CV selection of (radius coefficient c, transfer weight tau) "
                        "on 32 local samples, mean+-std over 5 seeds.");

    const std::vector<data::ScenarioKind> kinds = {data::ScenarioKind::kIid,
                                                   data::ScenarioKind::kOutliers,
                                                   data::ScenarioKind::kLabelNoise};
    const int num_seeds = 5;

    std::vector<stats::RunningStats> fixed_default(kinds.size());
    std::vector<stats::RunningStats> fixed_bad(kinds.size());
    std::vector<stats::RunningStats> cv_selected(kinds.size());
    std::vector<stats::RunningStats> chosen_c(kinds.size());
    std::vector<stats::RunningStats> chosen_tau(kinds.size());

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(2300 + s);
        data::ScenarioConfig scenario_config;
        scenario_config.n_train = 32;
        scenario_config.n_test = 3000;
        scenario_config.margin_scale = 2.0;
        stats::Rng task_rng(2400 + s);
        const data::TaskSpec task = fixture.population.sample_task(task_rng);

        for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
            stats::Rng rng(2500 + 100 * s + static_cast<std::uint64_t>(ki));
            const data::Scenario scenario = data::make_scenario_for_task(
                kinds[ki], scenario_config, fixture.population, task, rng);

            core::EdgeLearnerConfig base;
            base.em.max_outer_iterations = 10;

            // (a) defaults.
            {
                const core::EdgeLearner learner(fixture.prior, base);
                fixed_default[ki].push(
                    models::accuracy(learner.fit(scenario.edge_train).model,
                                     scenario.edge_test));
            }
            // (b) deliberately bad: no robustness, overwhelming prior.
            {
                core::EdgeLearnerConfig bad = base;
                bad.radius_coefficient = 0.0;
                bad.transfer_weight = 500.0;
                const core::EdgeLearner learner(fixture.prior, bad);
                fixed_bad[ki].push(models::accuracy(
                    learner.fit(scenario.edge_train).model, scenario.edge_test));
            }
            // (c) CV-selected.
            {
                core::SelectionGrid grid;
                grid.radius_coefficients = {0.0, 0.25, 1.0};
                grid.transfer_weights = {0.25, 2.0, 500.0};
                stats::Rng cv_rng(2600 + 100 * s + static_cast<std::uint64_t>(ki));
                const core::SelectionResult selection = core::select_edge_config(
                    scenario.edge_train, fixture.prior, base, grid, cv_rng);
                const core::EdgeLearner learner(fixture.prior, selection.best);
                cv_selected[ki].push(models::accuracy(
                    learner.fit(scenario.edge_train).model, scenario.edge_test));
                chosen_c[ki].push(selection.best_cell.radius_coefficient);
                chosen_tau[ki].push(selection.best_cell.transfer_weight);
            }
        }
    }

    util::Table table({"scenario", "fixed default", "fixed bad (tau=500)", "cv-selected",
                       "chosen c", "chosen tau"});
    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
        table.add_row({data::scenario_name(kinds[ki]), bench::mean_std(fixed_default[ki]),
                       bench::mean_std(fixed_bad[ki]), bench::mean_std(cv_selected[ki]),
                       bench::mean_std(chosen_c[ki], 2), bench::mean_std(chosen_tau[ki], 1)});
    }
    table.print(std::cout);
    return 0;
}
