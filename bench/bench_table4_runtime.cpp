// E10 / Table IV — runtime and scalability at edge-class budgets.
//
// End-to-end EdgeLearner::fit wall-clock as each axis grows: local samples
// n, feature dimension d, and prior components K. Expect roughly linear
// growth in n and K and super-linear (Cholesky-bound) growth in d, with
// absolute numbers in the tens of milliseconds — i.e. trainable on a
// constrained edge box.
//
// Timing comes from the phase profiler rather than an ad-hoc stopwatch: each
// fit runs under a "table4.fit" profile frame, so the per-cell numbers and
// the phase breakdown printed after the table are drawn from the same
// instrumentation used in production runs (DREL_PROFILE=1).
#include "obs/profiler.hpp"

#include "bench_common.hpp"

namespace {

using namespace drel;

/// Inclusive wall nanoseconds accumulated so far under the `table4.fit`
/// root phase, per the merged profiler snapshot.
std::uint64_t fit_phase_wall_ns() {
    const auto phases = obs::Profiler::global().merged_phases();
    const auto it = phases.find("table4.fit");
    return it == phases.end() ? 0 : it->second.wall_ns;
}

double time_fit(const dp::MixturePrior& prior, const models::Dataset& train, int reps) {
    core::EdgeLearnerConfig config;
    config.em.max_outer_iterations = 15;
    const core::EdgeLearner learner(prior, config);
    const std::uint64_t before = fit_phase_wall_ns();
    for (int r = 0; r < reps; ++r) {
        DREL_PROFILE_SCOPE("table4.fit");
        (void)learner.fit(train);
    }
    const std::uint64_t after = fit_phase_wall_ns();
    return static_cast<double>(after - before) / 1e6 / reps;
}

dp::MixturePrior prior_with_components(const data::TaskPopulation& population, std::size_t k,
                                       stats::Rng& rng) {
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t i = 0; i < k; ++i) {
        const auto& mode = population.modes()[i % population.num_modes()];
        weights.push_back(1.0);
        linalg::Vector mean = mode.mean;
        linalg::axpy(0.1, rng.standard_normal_vector(mean.size()), mean);
        atoms.emplace_back(std::move(mean), mode.covariance);
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

}  // namespace

int main() {
    using namespace drel;
    bench::MetricsSidecar sidecar("bench_table4_runtime");
    obs::Profiler::global().enable();
    bench::print_header("E10 (Table IV)",
                        "EdgeLearner::fit wall-clock (ms, averaged over 3 runs; 15 EM outer "
                        "iterations, Wasserstein auto radius). One axis varies per block.");

    util::Table table({"axis", "n", "d", "K", "fit ms"});
    const int reps = 3;

    // --- n sweep (d=8, K=4) ---
    {
        stats::Rng rng(101);
        const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(8, 4, 2.5, 0.05, rng);
        const dp::MixturePrior prior = bench::oracle_prior_of(pop);
        const data::TaskSpec task = pop.sample_task(rng);
        for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
            const models::Dataset train = pop.generate(task, n, rng);
            table.add_row({"n", std::to_string(n), "8", "4",
                           util::Table::fmt(time_fit(prior, train, reps), 2)});
        }
    }

    // --- d sweep (n=64, K=4) ---
    for (const std::size_t d : {4u, 8u, 16u, 32u, 64u}) {
        stats::Rng rng(200 + d);
        const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(d, 4, 2.5, 0.05, rng);
        const dp::MixturePrior prior = bench::oracle_prior_of(pop);
        const models::Dataset train = pop.generate(pop.sample_task(rng), 64, rng);
        table.add_row({"d", "64", std::to_string(d), "4",
                       util::Table::fmt(time_fit(prior, train, reps), 2)});
    }

    // --- K sweep (n=64, d=8) ---
    {
        stats::Rng rng(301);
        const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(8, 4, 2.5, 0.05, rng);
        const data::TaskSpec task = pop.sample_task(rng);
        const models::Dataset train = pop.generate(task, 64, rng);
        for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
            const dp::MixturePrior prior = prior_with_components(pop, k, rng);
            table.add_row({"K", "64", "8", std::to_string(k),
                           util::Table::fmt(time_fit(prior, train, reps), 2)});
        }
    }

    table.print(std::cout);

    std::cout << "\nPhase breakdown (all sweeps combined):\n"
              << obs::Profiler::global().report();
    return 0;
}
