// E13 (extension) — streaming edge learning.
//
// A device accumulates 8 samples per round for 12 rounds. Reported per
// round: held-out accuracy, the annealed radius rho(n), and the EM
// iterations spent by warm-started refits vs cold multi-start refits.
// Expect accuracy to climb toward the oracle, rho to fall as 1/sqrt(n), and
// warm starting to cut per-round iterations by ~2-4x after the first round.
#include "core/streaming.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E13 (Fig. 11, extension)",
                        "Streaming rounds (8 samples each), mean+-std over 5 seeds; warm "
                        "vs cold refit cost in EM outer iterations.");

    const int rounds = 12;
    const int num_seeds = 5;

    std::vector<stats::RunningStats> accuracy(rounds);
    std::vector<stats::RunningStats> radius(rounds);
    std::vector<stats::RunningStats> warm_iterations(rounds);
    std::vector<stats::RunningStats> cold_iterations(rounds);
    stats::RunningStats oracle;

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(2100 + s);
        stats::Rng rng(2200 + s);
        data::DataOptions options;
        options.margin_scale = 2.0;
        const data::TaskSpec task = fixture.population.sample_task(rng);
        const models::Dataset test = fixture.population.generate(task, 3000, rng, options);
        oracle.push(models::accuracy(models::LinearModel(task.theta_star), test));

        std::vector<models::Dataset> batches;
        for (int r = 0; r < rounds; ++r) {
            batches.push_back(fixture.population.generate(task, 8, rng, options));
        }

        core::StreamingConfig warm_config;
        warm_config.learner.transfer_weight = 2.0;
        warm_config.learner.em.max_outer_iterations = 30;
        core::StreamingConfig cold_config = warm_config;
        cold_config.warm_start = false;

        core::StreamingEdgeLearner warm(fixture.prior, warm_config);
        core::StreamingEdgeLearner cold(fixture.prior, cold_config);
        for (int r = 0; r < rounds; ++r) {
            const core::StreamingRound wr = warm.observe(batches[r]);
            const core::StreamingRound cr = cold.observe(batches[r]);
            accuracy[r].push(models::accuracy(warm.current_model(), test));
            radius[r].push(wr.chosen_radius);
            warm_iterations[r].push(static_cast<double>(wr.em_iterations));
            cold_iterations[r].push(static_cast<double>(cr.em_iterations));
        }
    }

    util::Table table({"round", "n", "accuracy", "rho(n)", "warm EM iters", "cold EM iters"});
    for (int r = 0; r < rounds; ++r) {
        table.add_row({std::to_string(r + 1), std::to_string(8 * (r + 1)),
                       bench::mean_std(accuracy[r]), bench::mean_std(radius[r]),
                       bench::mean_std(warm_iterations[r], 1),
                       bench::mean_std(cold_iterations[r], 1)});
    }
    table.print(std::cout);
    std::cout << "\noracle accuracy: " << bench::mean_std(oracle) << "\n";
    return 0;
}
