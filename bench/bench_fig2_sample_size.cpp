// E1 / Fig. 2 — test accuracy vs. local sample size n.
//
// The paper's headline: with little local data, cloud transfer + robustness
// dominates local-only learning; as n grows every method converges to the
// task's Bayes ceiling. Expect em-dro on top for small n, local-erm closing
// the gap by n=512.
#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E1 (Fig. 2)", "Test accuracy vs local sample size n, mean+-std over "
                                       "5 seeds; cloud prior learned by DPMM-Gibbs from 30 "
                                       "contributor devices.");

    const std::vector<std::size_t> sample_sizes = {8, 16, 32, 64, 128, 256, 512};
    const int num_seeds = 5;

    // method name -> per-n accuracy accumulators
    std::vector<std::string> method_names;
    std::vector<std::vector<stats::RunningStats>> accuracy;  // [method][n_index]
    stats::RunningStats bayes;

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(100 + s);
        data::DataOptions options;
        options.margin_scale = 2.0;
        stats::Rng rng(200 + s);
        const bench::EdgeTask edge =
            bench::make_edge_task(fixture.population, sample_sizes.back(), 4000, rng, options);
        bayes.push(models::accuracy(models::LinearModel(edge.task.theta_star), edge.test));

        const auto suite =
            baselines::make_standard_suite(fixture.prior, models::LossKind::kLogistic);
        if (method_names.empty()) {
            for (const auto& t : suite) method_names.push_back(t->name());
            accuracy.assign(suite.size(),
                            std::vector<stats::RunningStats>(sample_sizes.size()));
        }
        for (std::size_t ni = 0; ni < sample_sizes.size(); ++ni) {
            // Nested subsets: the same device accumulating data over time.
            std::vector<std::size_t> indices(sample_sizes[ni]);
            for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
            const models::Dataset train = edge.train.subset(indices);
            for (std::size_t m = 0; m < suite.size(); ++m) {
                accuracy[m][ni].push(models::accuracy(suite[m]->fit(train), edge.test));
            }
        }
    }

    std::vector<std::string> header = {"method"};
    for (const std::size_t n : sample_sizes) header.push_back("n=" + std::to_string(n));
    util::Table table(header);
    for (std::size_t m = 0; m < method_names.size(); ++m) {
        std::vector<std::string> row = {method_names[m]};
        for (std::size_t ni = 0; ni < sample_sizes.size(); ++ni) {
            row.push_back(bench::mean_std(accuracy[m][ni]));
        }
        table.add_row(row);
    }
    {
        std::vector<std::string> row = {"oracle(theta*)"};
        for (std::size_t ni = 0; ni < sample_sizes.size(); ++ni) {
            row.push_back(bench::mean_std(bayes));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    return 0;
}
