// E3 / Fig. 4 — worst-case (adversarial) loss vs Wasserstein radius rho.
//
// For models trained at each rho we report (a) the certified robust training
// loss from the dual, (b) the exact adversarial test loss under feature
// perturbations of several budgets, and (c) clean test loss. Expect the
// certificate to grow linearly in rho, adversarial loss to fall as the
// training rho approaches the evaluation budget, and clean loss to rise
// slightly — the classic robustness/accuracy trade-off curve.
#include "dro/robust_objective.hpp"

#include "bench_common.hpp"

int main() {
    using namespace drel;
    bench::print_header("E3 (Fig. 4)",
                        "Worst-case loss vs training radius rho (n_train=32), mean over 5 "
                        "seeds. adv(eps) = exact adversarial logistic test loss at budget "
                        "eps; certificate = dual robust training loss.");

    const std::vector<double> train_radii = {0.0, 0.05, 0.1, 0.2, 0.4, 0.8};
    const std::vector<double> eval_budgets = {0.2, 0.5};
    const int num_seeds = 5;
    const auto loss = models::make_logistic_loss();

    std::vector<stats::RunningStats> clean(train_radii.size());
    std::vector<stats::RunningStats> certificate(train_radii.size());
    std::vector<std::vector<stats::RunningStats>> adversarial(
        eval_budgets.size(), std::vector<stats::RunningStats>(train_radii.size()));

    for (int s = 0; s < num_seeds; ++s) {
        const bench::PipelineFixture fixture = bench::make_pipeline_fixture(500 + s);
        data::DataOptions options;
        options.margin_scale = 2.0;
        stats::Rng rng(600 + s);
        const bench::EdgeTask edge =
            bench::make_edge_task(fixture.population, 32, 3000, rng, options);

        for (std::size_t ri = 0; ri < train_radii.size(); ++ri) {
            core::EdgeLearnerConfig config;
            config.auto_radius = false;
            config.ambiguity = dro::AmbiguitySet::wasserstein(train_radii[ri]);
            const core::EdgeLearner learner(fixture.prior, config);
            const core::FitResult fit = learner.fit(edge.train);

            clean[ri].push(fit.model.average_loss(*loss, edge.test));
            certificate[ri].push(dro::robust_loss(fit.model.weights(), edge.train, *loss,
                                                  config.ambiguity));
            for (std::size_t ei = 0; ei < eval_budgets.size(); ++ei) {
                adversarial[ei][ri].push(
                    fit.model.average_adversarial_loss(*loss, edge.test, eval_budgets[ei]));
            }
        }
    }

    std::vector<std::string> header = {"train rho", "clean loss", "certificate"};
    for (const double eps : eval_budgets) header.push_back("adv(eps=" + util::Table::fmt(eps, 1) + ")");
    util::Table table(header);
    for (std::size_t ri = 0; ri < train_radii.size(); ++ri) {
        std::vector<std::string> row = {util::Table::fmt(train_radii[ri], 2),
                                        bench::mean_std(clean[ri]),
                                        bench::mean_std(certificate[ri])};
        for (std::size_t ei = 0; ei < eval_budgets.size(); ++ei) {
            row.push_back(bench::mean_std(adversarial[ei][ri]));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    return 0;
}
