// Robustness deep-dive: what the ambiguity set actually buys.
//
// A wearable-style classifier is trained on a few calibration samples, then
// attacked with growing feature perturbations (sensor bias, placement
// drift). The example sweeps the Wasserstein radius rho and prints the
// clean-vs-adversarial accuracy frontier, plus the exact worst-case loss
// certificates from the dual — demonstrating the knob a deployment engineer
// would actually tune.
//
//   ./robust_sensing [seed]
#include <cstdlib>
#include <iostream>

#include "core/edge_learner.hpp"
#include "data/task_generator.hpp"
#include "dro/robust_objective.hpp"
#include "dro/wasserstein.hpp"
#include "dro/worst_case.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace drel;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
    stats::Rng rng(seed);

    const data::TaskPopulation wearers =
        data::TaskPopulation::make_synthetic(6, 3, 2.5, 0.05, rng);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : wearers.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    const dp::MixturePrior prior(std::move(weights), std::move(atoms));

    const data::TaskSpec wearer = wearers.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    const models::Dataset calibration = wearers.generate(wearer, 24, rng, options);
    const models::Dataset daily_use = wearers.generate(wearer, 4000, rng, options);
    const auto loss = models::make_logistic_loss();

    util::Table table({"rho", "clean acc", "adv acc (eps=0.3)", "adv acc (eps=0.6)",
                       "certified worst-case loss", "||w_feat||"});
    for (const double rho : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
        core::EdgeLearnerConfig config;
        config.auto_radius = false;
        config.ambiguity = dro::AmbiguitySet::wasserstein(rho);
        const core::EdgeLearner learner(prior, config);
        const core::FitResult fit = learner.fit(calibration);

        const double certificate = dro::robust_loss(fit.model.weights(), calibration, *loss,
                                                    dro::AmbiguitySet::wasserstein(rho));
        table.add_row(
            {util::Table::fmt(rho, 2), util::Table::fmt(models::accuracy(fit.model, daily_use), 3),
             util::Table::fmt(models::adversarial_accuracy(fit.model, daily_use, 0.3), 3),
             util::Table::fmt(models::adversarial_accuracy(fit.model, daily_use, 0.6), 3),
             util::Table::fmt(certificate, 4),
             util::Table::fmt(dro::feature_norm(fit.model.weights(),
                                                dro::perturbable_dims(calibration)),
                              3)});
    }
    table.print(std::cout);

    // Show the attained worst case of the final model under a KL ball —
    // which calibration samples the adversary up-weights.
    core::EdgeLearnerConfig config;
    config.auto_radius = false;
    config.ambiguity = dro::AmbiguitySet::kl(0.3);
    const core::EdgeLearner learner(prior, config);
    const core::FitResult fit = learner.fit(calibration);
    const dro::WorstCase wc = dro::worst_case_distribution(
        fit.model.weights(), calibration, *loss, dro::AmbiguitySet::kl(0.3));
    double max_weight = 0.0;
    std::size_t hardest = 0;
    for (std::size_t i = 0; i < wc.weights.size(); ++i) {
        if (wc.weights[i] > max_weight) {
            max_weight = wc.weights[i];
            hardest = i;
        }
    }
    std::cout << "\nKL(0.3) worst case concentrates " << util::Table::fmt(100.0 * max_weight, 1)
              << "% of its mass on calibration sample #" << hardest
              << " (uniform would be " << util::Table::fmt(100.0 / wc.weights.size(), 1)
              << "%)\n";
    return 0;
}
