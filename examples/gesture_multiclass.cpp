// Multiclass scenario: on-device gesture recognition.
//
// A wearable classifies 5 gestures from 6 motion features. Gesture styles
// cluster into user archetypes (the population modes); the cloud's DP prior
// over stacked softmax weights captures them, and a new user's device
// personalizes from a short calibration session. Demonstrates the
// SoftmaxEdgeLearner public API end to end.
//
//   ./gesture_multiclass [seed]
#include <cstdlib>
#include <iostream>

#include "core/softmax_edge_learner.hpp"
#include "data/multiclass_generator.hpp"
#include "models/softmax.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace drel;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;
    stats::Rng rng(seed);

    constexpr std::size_t kClasses = 5;
    const data::MulticlassPopulation users =
        data::MulticlassPopulation::make_synthetic(/*feature_dim=*/6, kClasses,
                                                   /*num_modes=*/3, /*mode_radius=*/2.5,
                                                   /*within_mode_var=*/0.05, rng);

    // Cloud knowledge: the user-archetype mixture over stacked weights.
    linalg::Vector weights(users.num_modes(), 1.0);
    const dp::MixturePrior prior(std::move(weights), users.mode_distributions());

    // A new user calibrates with 5 examples per gesture.
    const data::MulticlassTaskSpec user = users.sample_task(rng);
    data::MulticlassDataOptions motion;
    motion.margin_scale = 2.0;
    const models::Dataset calibration = users.generate(user, 25, rng, motion);
    const models::Dataset daily = users.generate(user, 4000, rng, motion);

    core::SoftmaxEdgeLearnerConfig config;
    config.num_classes = kClasses;
    config.transfer_weight = 2.0;
    const core::SoftmaxEdgeLearner learner(prior, config);
    const core::SoftmaxFitResult fit = learner.fit(calibration);

    // Baseline: local softmax ERM on the same 25 examples.
    const models::SoftmaxErmObjective erm(calibration, kClasses, 1e-6);
    const models::SoftmaxModel local(
        kClasses, optim::minimize_lbfgs(erm, linalg::zeros(erm.dim())).x);
    const models::SoftmaxModel oracle(kClasses, user.stacked_weights);

    util::Table table({"recognizer", "accuracy", "log loss"});
    table.add_row({"softmax em-dro (paper ext.)",
                   util::Table::fmt(models::softmax_accuracy(fit.model, daily), 3),
                   util::Table::fmt(models::softmax_log_loss(fit.model, daily), 3)});
    table.add_row({"local softmax erm",
                   util::Table::fmt(models::softmax_accuracy(local, daily), 3),
                   util::Table::fmt(models::softmax_log_loss(local, daily), 3)});
    table.add_row({"oracle (user's true W)",
                   util::Table::fmt(models::softmax_accuracy(oracle, daily), 3),
                   util::Table::fmt(models::softmax_log_loss(oracle, daily), 3)});
    table.print(std::cout);

    std::cout << "\ncalibration: " << calibration.size() << " samples; matched archetype "
              << fit.map_component << " (true: " << user.mode_index << ") with confidence "
              << util::Table::fmt(fit.responsibilities[fit.map_component], 3) << "\n"
              << "EM iterations: " << fit.trace.outer_iterations
              << "; chosen rho: " << util::Table::fmt(fit.chosen_radius, 4) << "\n";
    return 0;
}
