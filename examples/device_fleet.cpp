// Fleet-scale deployment: the full distributed pipeline in one run.
//
// Exercises edgesim end to end — contributor devices upload to the cloud,
// the cloud runs DP mixture inference and broadcasts the truncated prior,
// and a fleet of data-poor edge devices trains locally. Prints per-device
// outcomes plus fleet-level aggregates and the exact communication bill.
//
//   ./device_fleet [seed] [num_edge_devices]
#include <cstdlib>
#include <iostream>

#include "edgesim/simulation.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace drel;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
    const std::size_t fleet_size = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;

    edgesim::SimulationConfig config;
    config.feature_dim = 8;
    config.num_modes = 4;
    config.num_contributors = 30;
    config.contributor_samples = 300;
    config.num_edge_devices = fleet_size;
    config.edge_samples = 16;
    config.test_samples = 2000;
    config.cloud.gibbs_sweeps = 80;
    config.learner.transfer_weight = 2.0;

    stats::Rng rng(seed);
    const edgesim::FleetReport report = edgesim::run_fleet_simulation(config, rng);

    util::Table table({"device", "mode", "em-dro", "local-erm", "bayes", "train ms"});
    for (const auto& d : report.devices) {
        table.add_row({d.device_id, std::to_string(d.mode_index),
                       util::Table::fmt(d.em_dro_accuracy, 3),
                       util::Table::fmt(d.local_erm_accuracy, 3),
                       util::Table::fmt(d.bayes_accuracy, 3),
                       util::Table::fmt(d.train_seconds * 1e3, 1)});
    }
    table.print(std::cout);

    std::cout << "\nfleet of " << report.devices.size() << " devices\n"
              << "  mean em-dro accuracy   : "
              << util::Table::fmt(report.mean_em_dro_accuracy(), 4) << "\n"
              << "  mean local-erm accuracy: "
              << util::Table::fmt(report.mean_local_erm_accuracy(), 4) << "\n"
              << "  devices improved       : "
              << util::Table::fmt(100.0 * report.win_rate(), 1) << "%\n"
              << "  prior components       : " << report.prior_components << "\n"
              << "  prior payload          : " << report.prior_bytes << " bytes\n"
              << "  total broadcast        : " << report.total_broadcast_bytes << " bytes\n"
              << "  cloud inference time   : "
              << util::Table::fmt(report.cloud_seconds, 2) << " s\n";
    return 0;
}
