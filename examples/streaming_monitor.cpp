// Streaming deployment with self-tuning: a condition monitor that starts
// nearly blind and keeps learning.
//
// A vibration monitor is installed with NO labeled data. It receives the
// cloud prior, starts predicting from the prior alone, and then labels
// trickle in (a technician confirms alarms). Every few rounds it re-tunes
// its two knobs by on-device cross-validation. Demonstrates
// core::StreamingEdgeLearner + core::select_edge_config working together.
//
//   ./streaming_monitor [seed]
#include <cstdlib>
#include <iostream>

#include "core/model_selection.hpp"
#include "core/streaming.hpp"
#include "data/task_generator.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace drel;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 13;
    stats::Rng rng(seed);

    const data::TaskPopulation machines =
        data::TaskPopulation::make_synthetic(8, 4, 2.5, 0.05, rng);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : machines.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    const dp::MixturePrior prior(std::move(weights), std::move(atoms));

    const data::TaskSpec machine = machines.sample_task(rng);
    data::DataOptions vibration;
    vibration.margin_scale = 2.0;
    const models::Dataset field_data = machines.generate(machine, 4000, rng, vibration);

    core::StreamingConfig config;
    config.learner.transfer_weight = 2.0;
    core::StreamingEdgeLearner monitor(prior, config);

    util::Table table({"round", "labels", "rho", "EM iters", "field accuracy", "note"});
    for (int round = 1; round <= 10; ++round) {
        const models::Dataset batch = machines.generate(machine, 8, rng, vibration);
        const core::StreamingRound r = monitor.observe(batch);
        std::string note = "-";

        // Every 4th round, re-tune (c, tau) by on-device CV once there is
        // enough accumulated data for 4 folds.
        if (round % 4 == 0 && monitor.accumulated_data().size() >= 16) {
            core::SelectionGrid grid;
            grid.radius_coefficients = {0.1, 0.25, 0.5};
            grid.transfer_weights = {0.5, 2.0, 8.0};
            stats::Rng cv_rng = rng.fork(1000 + round);
            const core::SelectionResult tuned = core::select_edge_config(
                monitor.accumulated_data(), prior, config.learner, grid, cv_rng);
            config.learner = tuned.best;
            // Rebuild the learner with the tuned knobs, keeping the data.
            core::StreamingEdgeLearner retuned(prior, config);
            retuned.observe(monitor.accumulated_data());
            monitor = std::move(retuned);
            note = "re-tuned c=" + util::Table::fmt(tuned.best.radius_coefficient, 2) +
                   " tau=" + util::Table::fmt(tuned.best.transfer_weight, 1);
        }

        table.add_row({std::to_string(round),
                       std::to_string(monitor.accumulated_data().size()),
                       util::Table::fmt(r.chosen_radius, 4), std::to_string(r.em_iterations),
                       util::Table::fmt(
                           models::accuracy(monitor.current_model(), field_data), 4),
                       note});
    }
    table.print(std::cout);

    std::cout << "\noracle field accuracy: "
              << util::Table::fmt(
                     models::accuracy(models::LinearModel(machine.theta_star), field_data), 4)
              << "\n";
    return 0;
}
