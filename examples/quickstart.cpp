// Quickstart: the smallest complete use of the library's public API.
//
// Flow: build a cloud prior (here, straight from a known device population;
// see device_fleet.cpp for the full DPMM pipeline), create an EdgeLearner,
// fit it on a handful of local samples, and compare against training on the
// local data alone.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/trainers.hpp"
#include "core/edge_learner.hpp"
#include "data/task_generator.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
    using namespace drel;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
    stats::Rng rng(seed);

    // A population of edge devices: tasks come from 3 "device types".
    const data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(/*feature_dim=*/8, /*num_modes=*/3,
                                             /*mode_radius=*/2.5, /*within_mode_var=*/0.05,
                                             rng);

    // Cloud knowledge as a DP-style mixture prior over model parameters.
    // Here we use the population's own modes; the device_fleet example shows
    // how the cloud learns this from contributor data with the DPMM.
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    const dp::MixturePrior prior(std::move(weights), std::move(atoms));

    // One data-poor edge device.
    const data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    const models::Dataset local = population.generate(task, /*n=*/16, rng, options);
    const models::Dataset held_out = population.generate(task, 5000, rng, options);

    // The paper's method: DRO + DP prior, EM-inspired convex relaxation.
    core::EdgeLearnerConfig config;   // defaults: Wasserstein ball, rho = 0.25/sqrt(n)
    const core::EdgeLearner learner(prior, config);
    const core::FitResult fit = learner.fit(local);

    // Baseline: the same 16 samples, no cloud, no robustness.
    const auto local_only = baselines::make_local_erm(models::LossKind::kLogistic);
    const models::LinearModel erm_model = local_only->fit(local);

    std::cout << "quickstart (seed " << seed << ", n=" << local.size() << ")\n"
              << "  em-dro accuracy     : " << models::accuracy(fit.model, held_out) << "\n"
              << "  local-erm accuracy  : " << models::accuracy(erm_model, held_out) << "\n"
              << "  oracle accuracy     : "
              << models::accuracy(models::LinearModel(task.theta_star), held_out) << "\n"
              << "  chosen radius rho   : " << fit.chosen_radius << "\n"
              << "  EM outer iterations : " << fit.trace.outer_iterations << "\n"
              << "  MAP prior component : " << fit.map_component
              << " (device's true mode: " << task.mode_index << ")\n";
    return 0;
}
