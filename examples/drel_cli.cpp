// drel_cli — the full cloud->edge pipeline from the shell.
//
// Subcommands:
//   demo-data   --dir DIR [--seed S] [--contributors N] [--contributor-samples N]
//               [--edge-samples N] [--test-samples N] [--feature-dim D] [--modes M]
//       Writes contributor_XX.csv, edge_train.csv, edge_test.csv.
//   fit-prior   --out prior.bin [--alpha A] [--variational] CSV...
//       Cloud side: per-contributor fits + DPMM -> binary prior file
//       (the exact wire format of edgesim/transfer.hpp).
//   inspect-prior --prior prior.bin
//   train       --prior prior.bin --data train.csv --out model.txt
//               [--radius-coef C] [--tau T] [--ambiguity wasserstein|kl|chi2|none]
//   eval        --model model.txt --data test.csv [--epsilon E]
//
// End-to-end demo:
//   drel_cli demo-data --dir /tmp/drel && cd /tmp/drel
//   drel_cli fit-prior --out prior.bin contributor_*.csv
//   drel_cli train --prior prior.bin --data edge_train.csv --out model.txt
//   drel_cli eval --model model.txt --data edge_test.csv --epsilon 0.3
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/edge_learner.hpp"
#include "data/csv_io.hpp"
#include "data/task_generator.hpp"
#include "edgesim/cloud.hpp"
#include "edgesim/transfer.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace drel;

struct Args {
    std::map<std::string, std::string> options;
    std::vector<std::string> positional;

    double number(const std::string& key, double fallback) const {
        const auto it = options.find(key);
        return it == options.end() ? fallback : util::parse_double(it->second);
    }
    std::string text(const std::string& key, const std::string& fallback = "") const {
        const auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }
    bool flag(const std::string& key) const { return options.count(key) > 0; }
    std::string require(const std::string& key) const {
        const auto it = options.find(key);
        if (it == options.end()) {
            throw std::invalid_argument("missing required option --" + key);
        }
        return it->second;
    }
};

Args parse_args(int argc, char** argv, int start) {
    Args args;
    for (int i = start; i < argc; ++i) {
        const std::string token = argv[i];
        if (util::starts_with(token, "--")) {
            const std::string key = token.substr(2);
            if (i + 1 < argc && !util::starts_with(argv[i + 1], "--")) {
                args.options[key] = argv[++i];
            } else {
                args.options[key] = "1";  // boolean flag
            }
        } else {
            args.positional.push_back(token);
        }
    }
    return args;
}

std::vector<std::uint8_t> read_binary(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open " + path);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(is)),
                                     std::istreambuf_iterator<char>());
}

void write_binary(const std::string& path, const std::vector<std::uint8_t>& data) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot open " + path);
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
}

void save_model(const std::string& path, const models::LinearModel& model) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path);
    os << std::setprecision(17) << model.dim() << "\n";
    for (const double w : model.weights()) os << w << "\n";
}

models::LinearModel load_model(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open " + path);
    std::size_t dim = 0;
    is >> dim;
    linalg::Vector w(dim);
    for (double& v : w) {
        if (!(is >> v)) throw std::runtime_error("truncated model file " + path);
    }
    return models::LinearModel(std::move(w));
}

int cmd_demo_data(const Args& args) {
    const std::string dir = args.require("dir");
    stats::Rng rng(static_cast<std::uint64_t>(args.number("seed", 7)));
    const std::size_t feature_dim = static_cast<std::size_t>(args.number("feature-dim", 8));
    const std::size_t modes = static_cast<std::size_t>(args.number("modes", 4));
    const std::size_t contributors =
        static_cast<std::size_t>(args.number("contributors", 30));
    const std::size_t contributor_samples =
        static_cast<std::size_t>(args.number("contributor-samples", 300));
    const std::size_t edge_samples = static_cast<std::size_t>(args.number("edge-samples", 16));
    const std::size_t test_samples = static_cast<std::size_t>(args.number("test-samples", 2000));

    const data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(feature_dim, modes, 2.5, 0.05, rng);
    data::DataOptions options;
    options.margin_scale = 2.0;

    for (std::size_t j = 0; j < contributors; ++j) {
        const data::TaskSpec task = population.sample_task(rng);
        std::ostringstream name;
        name << dir << "/contributor_" << std::setw(2) << std::setfill('0') << j << ".csv";
        data::save_csv_file(population.generate(task, contributor_samples, rng, options),
                            name.str());
    }
    const data::TaskSpec edge_task = population.sample_task(rng);
    data::save_csv_file(population.generate(edge_task, edge_samples, rng, options),
                        dir + "/edge_train.csv");
    data::save_csv_file(population.generate(edge_task, test_samples, rng, options),
                        dir + "/edge_test.csv");
    std::cout << "wrote " << contributors << " contributor files + edge_train.csv ("
              << edge_samples << " rows) + edge_test.csv (" << test_samples << " rows) to "
              << dir << "\n";
    return 0;
}

int cmd_fit_prior(const Args& args) {
    if (args.positional.empty()) {
        throw std::invalid_argument("fit-prior: need at least 2 contributor CSVs");
    }
    edgesim::CloudConfig config;
    config.dp_alpha = args.number("alpha", 1.0);
    if (args.flag("variational")) config.inference = edgesim::PriorInference::kVariational;
    edgesim::CloudNode cloud(config);
    for (const std::string& path : args.positional) {
        cloud.add_contributor_data(data::load_csv_file(path));
    }
    stats::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
    const dp::MixturePrior prior = cloud.fit_prior(rng);
    edgesim::EncodingOptions encoding;
    encoding.use_float32 = args.flag("float32");
    encoding.diagonal_only = args.flag("diagonal");
    const auto payload = edgesim::encode_prior(prior, encoding);
    write_binary(args.require("out"), payload);
    std::cout << "distilled " << cloud.num_contributors() << " contributors into "
              << prior.num_components() << " components (" << payload.size() << " bytes) -> "
              << args.require("out") << "\n";
    return 0;
}

int cmd_inspect_prior(const Args& args) {
    const dp::MixturePrior prior = edgesim::decode_prior(read_binary(args.require("prior")));
    std::cout << "components: " << prior.num_components() << "\n"
              << "dimension : " << prior.dim() << "\n";
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        std::cout << "  atom " << k << ": weight " << std::fixed << std::setprecision(4)
                  << prior.weights()[k] << ", |mean| "
                  << linalg::norm2(prior.atom(k).mean()) << ", tr(cov) "
                  << prior.atom(k).covariance().trace() << "\n";
    }
    return 0;
}

dro::AmbiguityKind parse_ambiguity(const std::string& name) {
    if (name == "wasserstein") return dro::AmbiguityKind::kWasserstein;
    if (name == "kl") return dro::AmbiguityKind::kKl;
    if (name == "chi2") return dro::AmbiguityKind::kChiSquare;
    if (name == "none") return dro::AmbiguityKind::kNone;
    throw std::invalid_argument("unknown ambiguity: " + name);
}

int cmd_train(const Args& args) {
    const dp::MixturePrior prior = edgesim::decode_prior(read_binary(args.require("prior")));
    const models::Dataset train = data::load_csv_file(args.require("data"));
    core::EdgeLearnerConfig config;
    config.radius_coefficient = args.number("radius-coef", 0.25);
    config.transfer_weight = args.number("tau", 1.0);
    config.ambiguity.kind = parse_ambiguity(args.text("ambiguity", "wasserstein"));
    const core::EdgeLearner learner(prior, config);
    const core::FitResult fit = learner.fit(train);
    save_model(args.require("out"), fit.model);
    std::cout << "trained on " << train.size() << " rows; rho=" << fit.chosen_radius
              << "; EM iterations=" << fit.trace.outer_iterations << "; MAP component="
              << fit.map_component << " -> " << args.require("out") << "\n";
    return 0;
}

int cmd_eval(const Args& args) {
    const models::LinearModel model = load_model(args.require("model"));
    const models::Dataset test = data::load_csv_file(args.require("data"));
    const double epsilon = args.number("epsilon", 0.0);
    std::cout << std::fixed << std::setprecision(4)
              << "accuracy      : " << models::accuracy(model, test) << "\n"
              << "log loss      : " << models::log_loss(model, test) << "\n"
              << "brier score   : " << models::brier_score(model, test) << "\n";
    if (epsilon > 0.0) {
        std::cout << "adv accuracy  : " << models::adversarial_accuracy(model, test, epsilon)
                  << " (epsilon=" << epsilon << ")\n";
    }
    const models::ClassErrors errors = models::per_class_errors(model, test);
    std::cout << "error (y=+1)  : " << errors.positive << "\n"
              << "error (y=-1)  : " << errors.negative << "\n";
    return 0;
}

int usage() {
    std::cerr << "usage: drel_cli <demo-data|fit-prior|inspect-prior|train|eval> [options]\n"
                 "see the header comment of examples/drel_cli.cpp for details\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        const Args args = parse_args(argc, argv, 2);
        if (command == "demo-data") return cmd_demo_data(args);
        if (command == "fit-prior") return cmd_fit_prior(args);
        if (command == "inspect-prior") return cmd_inspect_prior(args);
        if (command == "train") return cmd_train(args);
        if (command == "eval") return cmd_eval(args);
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "drel_cli " << command << ": " << e.what() << "\n";
        return 1;
    }
}
