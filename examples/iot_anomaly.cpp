// IoT anomaly detection at the edge.
//
// Scenario (the paper's motivating class of application): a gateway box
// monitors a machine through a handful of sensor channels and must decide
// "normal" vs "anomalous" in real time. Labeled anomalies are scarce — a
// new deployment has seen only a few incidents — but the cloud has watched
// many similar machines and knows that their detectors cluster into a few
// regimes (machine models, duty cycles). The gateway also drifts: ambient
// temperature shifts the sensor statistics between commissioning and
// operation, which is exactly what the Wasserstein ambiguity set absorbs.
//
//   ./iot_anomaly [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/trainers.hpp"
#include "core/edge_learner.hpp"
#include "data/shifts.hpp"
#include "data/task_generator.hpp"
#include "edgesim/cloud.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace drel;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
    stats::Rng rng(seed);

    // 6 sensor channels; 4 machine regimes in the installed base.
    const data::TaskPopulation machines =
        data::TaskPopulation::make_synthetic(6, 4, 2.5, 0.04, rng);
    data::DataOptions sensors;
    sensors.margin_scale = 2.0;
    sensors.label_noise = 0.03;  // occasional mislabeled incident reports

    // ---- Cloud: 30 mature deployments upload telemetry; DPMM distills. ----
    edgesim::CloudConfig cloud_config;
    cloud_config.gibbs_sweeps = 80;
    edgesim::CloudNode cloud(cloud_config);
    for (int j = 0; j < 30; ++j) {
        const data::TaskSpec machine = machines.sample_task(rng);
        cloud.add_contributor_data(machines.generate(machine, 400, rng, sensors));
    }
    const dp::MixturePrior prior = cloud.fit_prior(rng);
    std::cout << "cloud distilled " << cloud.num_contributors() << " deployments into "
              << prior.num_components() << " detector regimes\n\n";

    // ---- Edge: a new gateway with 20 labeled windows. ----
    const data::TaskSpec new_machine = machines.sample_task(rng);
    const models::Dataset commissioning =
        machines.generate(new_machine, 20, rng, sensors);

    // Operation data drifts: ambient shift on two channels.
    models::Dataset operation = machines.generate(new_machine, 4000, rng, sensors);
    operation = data::apply_mean_shift(operation, {0.5, -0.4, 0.0, 0.0, 0.3, 0.0});

    core::EdgeLearnerConfig config;
    config.transfer_weight = 2.0;
    const core::EdgeLearner learner(prior, config);
    const core::FitResult fit = learner.fit(commissioning);

    util::Table table({"detector", "clean acc", "drifted acc", "miss rate", "false alarm"});
    auto report = [&](const std::string& name, const models::LinearModel& model) {
        const models::Dataset clean = machines.generate(new_machine, 4000, rng, sensors);
        const models::ClassErrors errors = models::per_class_errors(model, operation);
        table.add_row({name, util::Table::fmt(models::accuracy(model, clean), 3),
                       util::Table::fmt(models::accuracy(model, operation), 3),
                       util::Table::fmt(errors.positive, 3),
                       util::Table::fmt(errors.negative, 3)});
    };

    report("em-dro (paper)", fit.model);
    report("local-erm",
           baselines::make_local_erm(models::LossKind::kLogistic)->fit(commissioning));
    report("fine-tune",
           baselines::make_finetune(prior, models::LossKind::kLogistic)->fit(commissioning));
    report("cloud-only", baselines::make_cloud_only(prior)->fit(commissioning));
    table.print(std::cout);

    std::cout << "\nthe gateway matched regime " << fit.map_component << " with confidence "
              << util::Table::fmt(fit.responsibilities[fit.map_component], 3) << "\n";
    return 0;
}
