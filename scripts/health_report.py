#!/usr/bin/env python3
"""Render the fleet-health block of a bench metrics sidecar.

Reads a schema-v2 sidecar (obs::write_bench_sidecar, e.g. the one
bench_fleet_scale or bench_health_smoke writes), and prints:

  * the per-round fleet series (headline columns; --all-columns for all),
  * the per-round MEMBERSHIP series when present (liveness census + churn
    events — only churn-tracking runs emit it),
  * a summary of the virtual-clock upload-latency histogram,
  * the SLO verdict table with the first violating round per failed rule.

Exit codes: 0 when the SLO verdict is pass or warn, 1 when it is fail,
2 when the sidecar is unreadable or carries no valid health block.

Usage:
  health_report.py SIDECAR.json [--all-columns] [--max-rows N]
"""

from __future__ import annotations

import argparse
import json
import math
import sys

# The columns rendered by default: the at-a-glance health of a round. The
# full schema (src/obs/health.hpp FleetCol) is available via --all-columns.
HEADLINE_COLUMNS = (
    "round",
    "devices",
    "healthy",
    "degraded",
    "uploads_attempted",
    "uploads_delivered",
    "uploads_rejected",
    "queue_depth_at_close",
    "broadcast_bytes",
    "latency_p50_ms",
    "latency_p99_ms",
)

# Headline subset of the membership series (src/obs/health.hpp
# MembershipCol); the event-counter tail is available via --all-columns.
MEMBERSHIP_HEADLINE_COLUMNS = (
    "round",
    "alive",
    "suspect",
    "dead",
    "joining",
    "participating",
    "joins",
    "rejoins",
    "rejoins_stale",
    "churn_events",
    "prior_version",
)


def schema_error(msg: str) -> SystemExit:
    """Exit code 2: the document itself is unusable (distinct from 1, which
    means the document is fine and reports an SLO failure)."""
    print(f"health_report: {msg}", file=sys.stderr)
    return SystemExit(2)


def load_health(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise schema_error(f"cannot read {path}: {err}")
    if not isinstance(doc, dict):
        raise schema_error(f"{path}: top level is not an object")
    health = doc.get("health")
    if not isinstance(health, dict):
        raise schema_error(f"{path}: no health block (schema_version "
                           f"{doc.get('schema_version')!r}; was the bench run "
                           "with DREL_METRICS=0 or without set_health?)")
    for key in ("series", "upload_latency_ms", "slo"):
        if key not in health:
            raise schema_error(f"{path}: health block missing {key!r}")
    return health


def print_table(headers: list[str], rows: list[list[str]]) -> None:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    print(fmt.format(*headers))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))


def print_series(series: dict, all_columns: bool, max_rows: int,
                 title: str = "per-round series",
                 headline: tuple[str, ...] = HEADLINE_COLUMNS) -> None:
    columns = series.get("columns")
    rows = series.get("rows")
    if not isinstance(columns, list) or not isinstance(rows, list):
        raise schema_error(f"{title} is missing columns/rows")
    if all_columns:
        selected = list(range(len(columns)))
    else:
        selected = [columns.index(c) for c in headline if c in columns]
        if not selected:  # unknown schema: show everything rather than nothing
            selected = list(range(len(columns)))
    shown = rows[:max_rows] if max_rows > 0 else rows
    print(f"{title} ({len(rows)} rounds):")
    print_table([str(columns[i]) for i in selected],
                [[str(row[i]) for i in selected] for row in shown])
    if len(shown) < len(rows):
        print(f"  ... {len(rows) - len(shown)} more rounds (--max-rows 0 for all)")
    print()


def histogram_quantile(bounds: list[int], buckets: list[int], count: int,
                       q: float) -> str:
    """Nearest-rank bucket upper bound, mirroring HistogramSnapshot::
    quantile_bound; the overflow bucket renders as >max."""
    if count == 0:
        return "-"
    rank = max(1, math.ceil(q * count))
    seen = 0
    for i, n in enumerate(buckets):
        seen += n
        if seen >= rank:
            return f">{bounds[-1]}" if i >= len(bounds) else str(bounds[i])
    return f">{bounds[-1]}"


def print_histogram(name: str, histogram: dict) -> None:
    bounds = histogram.get("bounds", [])
    buckets = histogram.get("buckets", [])
    count = int(histogram.get("count", 0))
    if len(buckets) != len(bounds) + 1:
        raise schema_error(f"{name}: {len(buckets)} buckets for {len(bounds)} bounds")
    print(f"{name}: count={count}", end="")
    if count > 0:
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p100", 1.0)):
            print(f"  {label}<={histogram_quantile(bounds, buckets, count, q)}", end="")
    print("\n")


def print_slo(slo: dict) -> str:
    verdict = slo.get("verdict")
    if verdict not in ("pass", "warn", "fail"):
        raise schema_error(f"slo verdict {verdict!r} is not pass/warn/fail")
    rows = []
    for rule in slo.get("rules", []):
        round_cell = rule.get("first_violating_round")
        rows.append([
            str(rule.get("name", "?")),
            str(rule.get("verdict", "?")),
            f"{rule.get('observed', 0.0):g}",
            f"{rule.get('warn', 0.0):g}",
            f"{rule.get('fail', 0.0):g}",
            "-" if round_cell is None else str(round_cell),
        ])
    print("SLO rules:")
    print_table(["rule", "verdict", "observed", "warn", "fail", "first bad round"], rows)
    print(f"\nSLO verdict: {verdict}")
    return verdict


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sidecar", help="path to a <bench>.metrics.json sidecar")
    parser.add_argument("--all-columns", action="store_true",
                        help="render every series column, not just the headline set")
    parser.add_argument("--max-rows", type=int, default=20,
                        help="series rows to render (0 = all; default 20)")
    args = parser.parse_args(argv)

    health = load_health(args.sidecar)
    print_series(health["series"], args.all_columns, args.max_rows)
    membership = health.get("membership")
    if isinstance(membership, dict):
        # Emitted only by churn-tracking runs: the liveness census and the
        # round's membership events (src/obs/health.hpp MembershipCol).
        print_series(membership, args.all_columns, args.max_rows,
                     title="membership series",
                     headline=MEMBERSHIP_HEADLINE_COLUMNS)
    print_histogram("upload_latency_ms", health["upload_latency_ms"])
    partition = health.get("partition")
    if isinstance(partition, dict) and "service_wait_ms" in partition:
        print_histogram("service_wait_ms (partition-scoped)",
                        partition["service_wait_ms"])
    verdict = print_slo(health["slo"])
    return 1 if verdict == "fail" else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
