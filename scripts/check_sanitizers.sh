#!/usr/bin/env bash
# Builds and runs the concurrency and chaos tests under ThreadSanitizer and
# AddressSanitizer (the DREL_SANITIZE CMake option). Part of the verify
# flow for any change to util/thread_pool, util/executor, or code running
# on the shared executor (fleet simulation, EM multi-start, collaborative),
# and for the fault-injection layer (test_faults): the chaos suite drives
# the degraded paths the healthy tests never touch, so memory/race bugs on
# those paths only surface here.
#
# Both sanitizer suites always run: a ThreadSanitizer failure no longer
# short-circuits the AddressSanitizer pass. The script exits non-zero if
# EITHER suite failed.
#
# The SIMD dispatch and sampling-statistics suites (test_simd_dispatch,
# test_sampling_stats) ride in both sanitizer builds: the dispatch layer's
# scoped-override atomics are TSan territory, and the alias/reservoir
# builds index worklists ASan should watch.
#
# The observability suite (test_obs: Timeseries/Health/FleetHealth) rides
# along too: histograms are observed from worker threads through relaxed
# atomics and the engine's telemetry fold runs on the driver while shards
# fan out — exactly the write/read boundary TSan must bless.
#
# The membership/churn suite (test_membership, test_membership_stats) is in
# both builds as well: shards read the driver-owned participation mask while
# fanned out, and Dead-slot skipping changes which SoA rows each thread
# touches — precisely the sharing pattern the sanitizers must bless.
#
# The streaming-posterior and wire-v2 suites (test_streaming_posterior,
# test_transfer_v2) ride in both builds too: the merge/fold property tests
# exercise the fixed-point SuffStats accumulators over arbitrary partition
# trees, and the v2 decoders parse attacker-shaped buffers with bit-packed
# reads — buffer arithmetic ASan exists to falsify.
#
# Usage: scripts/check_sanitizers.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

failed=()
for sanitizer in thread address; do
    build_dir="build-${sanitizer}san"
    echo "=== ${sanitizer} sanitizer ==="
    cmake -B "${build_dir}" -S . -DDREL_SANITIZE="${sanitizer}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "${build_dir}" -j "${jobs}" \
        --target test_util test_concurrency test_faults test_engine \
                 test_membership test_membership_stats \
                 test_linalg_property test_dro_invariants \
                 test_simd_dispatch test_sampling_stats test_obs \
                 test_streaming_posterior test_transfer_v2 > /dev/null
    # The property/differential harness (ctest -L property) runs here too:
    # the allocation-free kernels and workspace arenas are exactly the code
    # whose buffer reuse ASan/TSan can falsify. The event-driven engine
    # suite (test_engine) rides along because its shard fan-out merges
    # per-shard SoA slices across threads — the exact pattern TSan exists
    # to check.
    if ! (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}" \
        -R 'ThreadPool|ParallelFor|ParallelReduce|Executor|Determinism|Fault|Chaos|EmDroDegradation|WorkspaceKernels|LinalgProperty|DroInvariants|FleetEngine|FleetHealth|EventQueue|StreamScheme|ScaleFleet|ShardLayout|UploadSufficientStats|SimdDispatch|SamplingStats|Timeseries|Health\.|Metrics\.|Membership|Churn|Liveness|Streaming|Transfer'); then
        echo "!!! ${sanitizer} sanitizer suite FAILED"
        failed+=("${sanitizer}")
    fi
done

if [ "${#failed[@]}" -ne 0 ]; then
    echo "sanitizer checks FAILED: ${failed[*]}"
    exit 1
fi
echo "sanitizer checks passed"
