#!/usr/bin/env bash
# Perf baseline workflow around bench_perf_runner + perf_compare.py.
#
#   scripts/run_perf.sh record [OUT.json]    build + run the full suite,
#                                            write OUT.json (default
#                                            BENCH_PERF.json at repo root)
#   scripts/run_perf.sh compare [BASELINE]   run the suite into a temp file
#                                            and gate it against BASELINE
#                                            (default BENCH_PERF.json)
#   scripts/run_perf.sh smoke                seconds-scale plumbing check:
#                                            --smoke run, schema validation,
#                                            gate self-test
#
# Recording wants a quiet machine: close other workloads, and prefer a
# Release build (this script configures the default build dir as-is).
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-compare}"

build() {
    cmake -B build -S . > /dev/null
    cmake --build build -j "$(nproc)" --target bench_perf_runner > /dev/null
}

case "${mode}" in
    record)
        out="${2:-BENCH_PERF.json}"
        build
        ./build/bench/bench_perf_runner --out "${out}"
        python3 scripts/perf_compare.py --validate-only "${out}"
        ;;
    compare)
        baseline="${2:-BENCH_PERF.json}"
        [[ -f "${baseline}" ]] || { echo "run_perf.sh: no baseline at ${baseline}" >&2; exit 2; }
        build
        candidate="$(mktemp /tmp/bench_perf.XXXXXX.json)"
        trap 'rm -f "${candidate}"' EXIT
        ./build/bench/bench_perf_runner --out "${candidate}"
        python3 scripts/perf_compare.py "${baseline}" "${candidate}"
        ;;
    smoke)
        build
        smoke_out="$(mktemp /tmp/bench_perf_smoke.XXXXXX.json)"
        trap 'rm -f "${smoke_out}"' EXIT
        ./build/bench/bench_perf_runner --smoke --out "${smoke_out}"
        python3 scripts/perf_compare.py --validate-only "${smoke_out}"
        python3 scripts/perf_compare.py "${smoke_out}" "${smoke_out}"
        python3 scripts/perf_compare.py --self-test
        ;;
    *)
        echo "usage: scripts/run_perf.sh {record [OUT]|compare [BASELINE]|smoke}" >&2
        exit 2
        ;;
esac
