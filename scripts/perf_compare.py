#!/usr/bin/env python3
"""Noise-aware perf regression gate over BENCH_PERF.json files.

Compares a candidate run against a baseline (both produced by
bench_perf_runner) and fails when any benchmark's median regresses by more
than max(--pct % of the baseline median, --mad-mult x the baseline MAD).
The MAD term keeps jittery benchmarks from tripping the gate on noise; the
percentage term keeps rock-stable benchmarks honest.

Exit codes: 0 clean, 1 regression (or missing benchmark), 2 usage/schema.

Usage:
  perf_compare.py BASELINE.json CANDIDATE.json [--pct 5] [--mad-mult 3]
  perf_compare.py --validate-only FILE.json
  perf_compare.py --self-test
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

SCHEMA_VERSION = 1
REQUIRED_STATS = ("inner_iterations", "repetitions", "min_ms", "median_ms", "mad_ms", "mean_ms")


def schema_error(msg: str) -> "SystemExit":
    """Exit code 2 is the documented schema/usage failure (distinct from 1,
    which means the gate itself tripped)."""
    print(f"perf_compare: {msg}", file=sys.stderr)
    return SystemExit(2)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise schema_error(f"cannot read {path}: {err}")
    validate(doc, path)
    return doc


def validate(doc: dict, label: str) -> None:
    def fail(msg: str) -> None:
        raise schema_error(f"{label}: {msg}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    env = doc.get("environment")
    if not isinstance(env, dict):
        fail("missing environment object")
    for key in ("git_sha", "compiler", "build_type", "threads"):
        if key not in env:
            fail(f"environment missing {key!r}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        fail("missing or empty benchmarks object")
    for name, entry in benches.items():
        if not isinstance(entry, dict):
            fail(f"benchmark {name!r} is not an object")
        for stat in REQUIRED_STATS:
            if not isinstance(entry.get(stat), (int, float)):
                fail(f"benchmark {name!r} missing numeric {stat!r}")
        if entry["median_ms"] < 0 or entry["mad_ms"] < 0:
            fail(f"benchmark {name!r} has negative timing stats")


def compare(baseline: dict, candidate: dict, pct: float, mad_mult: float) -> int:
    base_benches = baseline["benchmarks"]
    cand_benches = candidate["benchmarks"]
    regressions = []
    improvements = []
    missing = [name for name in base_benches if name not in cand_benches]

    # Width spans BOTH sides so added-benchmark lines align with compared
    # ones even when the suite was renamed wholesale.
    width = max((len(n) for n in list(base_benches) + list(cand_benches)), default=0)
    for name in sorted(base_benches):
        if name in missing:
            continue
        base = base_benches[name]
        cand = cand_benches[name]
        base_median = float(base["median_ms"])
        cand_median = float(cand["median_ms"])
        threshold = max(pct / 100.0 * base_median, mad_mult * float(base["mad_ms"]))
        delta = cand_median - base_median
        ratio = (cand_median / base_median - 1.0) * 100.0 if base_median > 0 else 0.0
        status = "ok"
        if delta > threshold:
            status = "REGRESSED"
            regressions.append(name)
        elif delta < -threshold:
            status = "improved"
            improvements.append(name)
        print(
            f"{name:<{width}}  base {base_median:10.4f} ms  cand {cand_median:10.4f} ms"
            f"  {ratio:+7.2f}%  (allow +{threshold:.4f} ms)  {status}"
        )

    for name in sorted(missing):
        print(f"{name:<{width}}  MISSING from candidate")

    new_benches = sorted(set(cand_benches) - set(base_benches))
    for name in new_benches:
        print(f"{name:<{width}}  new benchmark (no baseline; not gated)")

    print(
        f"\nperf_compare: {len(base_benches) - len(missing)} compared,"
        f" {len(regressions)} regressed, {len(improvements)} improved,"
        f" {len(missing)} missing, {len(new_benches)} new"
    )
    if regressions or missing:
        for name in regressions:
            print(f"perf_compare: REGRESSION in {name}", file=sys.stderr)
        for name in missing:
            print(f"perf_compare: benchmark {name} missing from candidate", file=sys.stderr)
        return 1
    return 0


def self_test() -> int:
    """Gate sanity: identical inputs pass; an injected 2x regression fails."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "environment": {"git_sha": "0" * 40, "compiler": "self-test", "build_type": "Release",
                        "threads": 1},
        "benchmarks": {
            "kernel.stable": {"inner_iterations": 64, "repetitions": 11, "min_ms": 1.00,
                              "median_ms": 1.02, "mad_ms": 0.01, "mean_ms": 1.03},
            "kernel.noisy": {"inner_iterations": 8, "repetitions": 11, "min_ms": 4.2,
                             "median_ms": 5.0, "mad_ms": 0.8, "mean_ms": 5.1},
        },
    }
    validate(doc, "self-test fixture")

    if compare(doc, copy.deepcopy(doc), pct=5.0, mad_mult=3.0) != 0:
        print("perf_compare: SELF-TEST FAILED: identical inputs flagged", file=sys.stderr)
        return 1

    slow = copy.deepcopy(doc)
    for entry in slow["benchmarks"].values():
        for stat in ("min_ms", "median_ms", "mean_ms"):
            entry[stat] *= 2.0
    if compare(doc, slow, pct=5.0, mad_mult=3.0) != 1:
        print("perf_compare: SELF-TEST FAILED: 2x regression not flagged", file=sys.stderr)
        return 1

    # Noise tolerance: a bump inside 3x MAD on the noisy kernel must pass.
    wobble = copy.deepcopy(doc)
    wobble["benchmarks"]["kernel.noisy"]["median_ms"] += 2.0  # < 3 * 0.8 = 2.4
    if compare(doc, wobble, pct=5.0, mad_mult=3.0) != 0:
        print("perf_compare: SELF-TEST FAILED: in-noise wobble flagged", file=sys.stderr)
        return 1

    # Added benchmarks are reported but never gated: a candidate with an
    # extra benchmark (and no other change) must pass.
    grown = copy.deepcopy(doc)
    grown["benchmarks"]["kernel.brand_new"] = dict(doc["benchmarks"]["kernel.stable"])
    if compare(doc, grown, pct=5.0, mad_mult=3.0) != 0:
        print("perf_compare: SELF-TEST FAILED: added benchmark tripped the gate",
              file=sys.stderr)
        return 1

    # Removed benchmarks fail the gate (a silently dropped benchmark would
    # otherwise hide a regression forever) — including the fully disjoint
    # case, which must report, not crash.
    shrunk = copy.deepcopy(doc)
    del shrunk["benchmarks"]["kernel.noisy"]
    if compare(doc, shrunk, pct=5.0, mad_mult=3.0) != 1:
        print("perf_compare: SELF-TEST FAILED: removed benchmark not flagged",
              file=sys.stderr)
        return 1
    disjoint = copy.deepcopy(doc)
    disjoint["benchmarks"] = {
        "kernel.renamed": dict(doc["benchmarks"]["kernel.stable"]),
    }
    if compare(doc, disjoint, pct=5.0, mad_mult=3.0) != 1:
        print("perf_compare: SELF-TEST FAILED: disjoint suites not flagged",
              file=sys.stderr)
        return 1

    print("perf_compare: self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_PERF.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_PERF.json")
    parser.add_argument("--pct", type=float, default=5.0,
                        help="percentage regression allowance (default 5)")
    parser.add_argument("--mad-mult", type=float, default=3.0,
                        help="MAD multiples allowed on top of baseline median (default 3)")
    parser.add_argument("--validate-only", action="store_true",
                        help="only schema-validate the given file(s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate sanity checks")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.validate_only:
        paths = [p for p in (args.baseline, args.candidate) if p]
        if not paths:
            parser.error("--validate-only requires at least one file")
        for path in paths:
            load(path)
            print(f"perf_compare: {path} is valid (schema v{SCHEMA_VERSION})")
        return 0

    if not args.baseline or not args.candidate:
        parser.error("need BASELINE and CANDIDATE (or --validate-only / --self-test)")
    return compare(load(args.baseline), load(args.candidate), args.pct, args.mad_mult)


if __name__ == "__main__":
    sys.exit(main())
