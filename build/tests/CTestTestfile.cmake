# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_softmax[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_dp[1]_include.cmake")
include("/root/repo/build/tests/test_dpmm_nig[1]_include.cmake")
include("/root/repo/build/tests/test_diagnostics[1]_include.cmake")
include("/root/repo/build/tests/test_dro[1]_include.cmake")
include("/root/repo/build/tests/test_certificates[1]_include.cmake")
include("/root/repo/build/tests/test_regression_dro[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_label_shift[1]_include.cmake")
include("/root/repo/build/tests/test_sgd_ensemble[1]_include.cmake")
include("/root/repo/build/tests/test_conformal_groupdro[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_edgesim[1]_include.cmake")
include("/root/repo/build/tests/test_collaborative[1]_include.cmake")
include("/root/repo/build/tests/test_lifecycle[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
