file(REMOVE_RECURSE
  "CMakeFiles/test_regression_dro.dir/test_regression_dro.cpp.o"
  "CMakeFiles/test_regression_dro.dir/test_regression_dro.cpp.o.d"
  "test_regression_dro"
  "test_regression_dro.pdb"
  "test_regression_dro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regression_dro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
