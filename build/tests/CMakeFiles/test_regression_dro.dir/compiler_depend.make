# Empty compiler generated dependencies file for test_regression_dro.
# This may be replaced when dependencies are built.
