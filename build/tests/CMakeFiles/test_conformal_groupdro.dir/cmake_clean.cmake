file(REMOVE_RECURSE
  "CMakeFiles/test_conformal_groupdro.dir/test_conformal_groupdro.cpp.o"
  "CMakeFiles/test_conformal_groupdro.dir/test_conformal_groupdro.cpp.o.d"
  "test_conformal_groupdro"
  "test_conformal_groupdro.pdb"
  "test_conformal_groupdro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conformal_groupdro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
