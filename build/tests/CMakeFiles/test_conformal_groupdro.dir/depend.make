# Empty dependencies file for test_conformal_groupdro.
# This may be replaced when dependencies are built.
