file(REMOVE_RECURSE
  "CMakeFiles/test_edgesim.dir/test_edgesim.cpp.o"
  "CMakeFiles/test_edgesim.dir/test_edgesim.cpp.o.d"
  "test_edgesim"
  "test_edgesim.pdb"
  "test_edgesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edgesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
