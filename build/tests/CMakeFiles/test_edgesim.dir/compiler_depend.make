# Empty compiler generated dependencies file for test_edgesim.
# This may be replaced when dependencies are built.
