# Empty compiler generated dependencies file for test_sgd_ensemble.
# This may be replaced when dependencies are built.
