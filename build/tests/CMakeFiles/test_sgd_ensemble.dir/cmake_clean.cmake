file(REMOVE_RECURSE
  "CMakeFiles/test_sgd_ensemble.dir/test_sgd_ensemble.cpp.o"
  "CMakeFiles/test_sgd_ensemble.dir/test_sgd_ensemble.cpp.o.d"
  "test_sgd_ensemble"
  "test_sgd_ensemble.pdb"
  "test_sgd_ensemble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgd_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
