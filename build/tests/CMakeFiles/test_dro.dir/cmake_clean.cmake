file(REMOVE_RECURSE
  "CMakeFiles/test_dro.dir/test_dro.cpp.o"
  "CMakeFiles/test_dro.dir/test_dro.cpp.o.d"
  "test_dro"
  "test_dro.pdb"
  "test_dro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
