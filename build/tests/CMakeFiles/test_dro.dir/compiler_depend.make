# Empty compiler generated dependencies file for test_dro.
# This may be replaced when dependencies are built.
