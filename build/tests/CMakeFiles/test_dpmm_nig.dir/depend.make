# Empty dependencies file for test_dpmm_nig.
# This may be replaced when dependencies are built.
