file(REMOVE_RECURSE
  "CMakeFiles/test_dpmm_nig.dir/test_dpmm_nig.cpp.o"
  "CMakeFiles/test_dpmm_nig.dir/test_dpmm_nig.cpp.o.d"
  "test_dpmm_nig"
  "test_dpmm_nig.pdb"
  "test_dpmm_nig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpmm_nig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
