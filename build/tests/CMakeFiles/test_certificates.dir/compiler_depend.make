# Empty compiler generated dependencies file for test_certificates.
# This may be replaced when dependencies are built.
