file(REMOVE_RECURSE
  "CMakeFiles/test_label_shift.dir/test_label_shift.cpp.o"
  "CMakeFiles/test_label_shift.dir/test_label_shift.cpp.o.d"
  "test_label_shift"
  "test_label_shift.pdb"
  "test_label_shift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_label_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
