# Empty compiler generated dependencies file for test_label_shift.
# This may be replaced when dependencies are built.
