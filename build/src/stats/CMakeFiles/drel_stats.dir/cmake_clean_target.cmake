file(REMOVE_RECURSE
  "libdrel_stats.a"
)
