file(REMOVE_RECURSE
  "CMakeFiles/drel_stats.dir/descriptive.cpp.o"
  "CMakeFiles/drel_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/drel_stats.dir/distributions.cpp.o"
  "CMakeFiles/drel_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/drel_stats.dir/multivariate_normal.cpp.o"
  "CMakeFiles/drel_stats.dir/multivariate_normal.cpp.o.d"
  "CMakeFiles/drel_stats.dir/rng.cpp.o"
  "CMakeFiles/drel_stats.dir/rng.cpp.o.d"
  "libdrel_stats.a"
  "libdrel_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
