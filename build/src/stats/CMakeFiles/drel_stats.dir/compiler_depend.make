# Empty compiler generated dependencies file for drel_stats.
# This may be replaced when dependencies are built.
