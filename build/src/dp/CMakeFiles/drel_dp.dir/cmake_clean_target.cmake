file(REMOVE_RECURSE
  "libdrel_dp.a"
)
