
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/crp.cpp" "src/dp/CMakeFiles/drel_dp.dir/crp.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/crp.cpp.o.d"
  "/root/repo/src/dp/dpmm_gibbs.cpp" "src/dp/CMakeFiles/drel_dp.dir/dpmm_gibbs.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/dpmm_gibbs.cpp.o.d"
  "/root/repo/src/dp/dpmm_nig.cpp" "src/dp/CMakeFiles/drel_dp.dir/dpmm_nig.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/dpmm_nig.cpp.o.d"
  "/root/repo/src/dp/dpmm_variational.cpp" "src/dp/CMakeFiles/drel_dp.dir/dpmm_variational.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/dpmm_variational.cpp.o.d"
  "/root/repo/src/dp/mixture_prior.cpp" "src/dp/CMakeFiles/drel_dp.dir/mixture_prior.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/mixture_prior.cpp.o.d"
  "/root/repo/src/dp/prior_diagnostics.cpp" "src/dp/CMakeFiles/drel_dp.dir/prior_diagnostics.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/prior_diagnostics.cpp.o.d"
  "/root/repo/src/dp/stick_breaking.cpp" "src/dp/CMakeFiles/drel_dp.dir/stick_breaking.cpp.o" "gcc" "src/dp/CMakeFiles/drel_dp.dir/stick_breaking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
