file(REMOVE_RECURSE
  "CMakeFiles/drel_dp.dir/crp.cpp.o"
  "CMakeFiles/drel_dp.dir/crp.cpp.o.d"
  "CMakeFiles/drel_dp.dir/dpmm_gibbs.cpp.o"
  "CMakeFiles/drel_dp.dir/dpmm_gibbs.cpp.o.d"
  "CMakeFiles/drel_dp.dir/dpmm_nig.cpp.o"
  "CMakeFiles/drel_dp.dir/dpmm_nig.cpp.o.d"
  "CMakeFiles/drel_dp.dir/dpmm_variational.cpp.o"
  "CMakeFiles/drel_dp.dir/dpmm_variational.cpp.o.d"
  "CMakeFiles/drel_dp.dir/mixture_prior.cpp.o"
  "CMakeFiles/drel_dp.dir/mixture_prior.cpp.o.d"
  "CMakeFiles/drel_dp.dir/prior_diagnostics.cpp.o"
  "CMakeFiles/drel_dp.dir/prior_diagnostics.cpp.o.d"
  "CMakeFiles/drel_dp.dir/stick_breaking.cpp.o"
  "CMakeFiles/drel_dp.dir/stick_breaking.cpp.o.d"
  "libdrel_dp.a"
  "libdrel_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
