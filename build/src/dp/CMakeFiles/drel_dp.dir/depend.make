# Empty dependencies file for drel_dp.
# This may be replaced when dependencies are built.
