# Empty dependencies file for drel_baselines.
# This may be replaced when dependencies are built.
