file(REMOVE_RECURSE
  "libdrel_baselines.a"
)
