file(REMOVE_RECURSE
  "CMakeFiles/drel_baselines.dir/trainers.cpp.o"
  "CMakeFiles/drel_baselines.dir/trainers.cpp.o.d"
  "libdrel_baselines.a"
  "libdrel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
