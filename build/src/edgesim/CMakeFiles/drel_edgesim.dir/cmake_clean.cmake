file(REMOVE_RECURSE
  "CMakeFiles/drel_edgesim.dir/cloud.cpp.o"
  "CMakeFiles/drel_edgesim.dir/cloud.cpp.o.d"
  "CMakeFiles/drel_edgesim.dir/collaborative.cpp.o"
  "CMakeFiles/drel_edgesim.dir/collaborative.cpp.o.d"
  "CMakeFiles/drel_edgesim.dir/device.cpp.o"
  "CMakeFiles/drel_edgesim.dir/device.cpp.o.d"
  "CMakeFiles/drel_edgesim.dir/lifecycle.cpp.o"
  "CMakeFiles/drel_edgesim.dir/lifecycle.cpp.o.d"
  "CMakeFiles/drel_edgesim.dir/network.cpp.o"
  "CMakeFiles/drel_edgesim.dir/network.cpp.o.d"
  "CMakeFiles/drel_edgesim.dir/simulation.cpp.o"
  "CMakeFiles/drel_edgesim.dir/simulation.cpp.o.d"
  "CMakeFiles/drel_edgesim.dir/transfer.cpp.o"
  "CMakeFiles/drel_edgesim.dir/transfer.cpp.o.d"
  "libdrel_edgesim.a"
  "libdrel_edgesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_edgesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
