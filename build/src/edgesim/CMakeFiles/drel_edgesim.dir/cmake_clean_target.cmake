file(REMOVE_RECURSE
  "libdrel_edgesim.a"
)
