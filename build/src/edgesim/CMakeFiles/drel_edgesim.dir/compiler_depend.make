# Empty compiler generated dependencies file for drel_edgesim.
# This may be replaced when dependencies are built.
