
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edgesim/cloud.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/cloud.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/cloud.cpp.o.d"
  "/root/repo/src/edgesim/collaborative.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/collaborative.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/collaborative.cpp.o.d"
  "/root/repo/src/edgesim/device.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/device.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/device.cpp.o.d"
  "/root/repo/src/edgesim/lifecycle.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/lifecycle.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/lifecycle.cpp.o.d"
  "/root/repo/src/edgesim/network.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/network.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/network.cpp.o.d"
  "/root/repo/src/edgesim/simulation.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/simulation.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/simulation.cpp.o.d"
  "/root/repo/src/edgesim/transfer.cpp" "src/edgesim/CMakeFiles/drel_edgesim.dir/transfer.cpp.o" "gcc" "src/edgesim/CMakeFiles/drel_edgesim.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/drel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/drel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/drel_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/drel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/drel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dro/CMakeFiles/drel_dro.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/drel_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
