file(REMOVE_RECURSE
  "libdrel_util.a"
)
