file(REMOVE_RECURSE
  "CMakeFiles/drel_util.dir/logging.cpp.o"
  "CMakeFiles/drel_util.dir/logging.cpp.o.d"
  "CMakeFiles/drel_util.dir/stopwatch.cpp.o"
  "CMakeFiles/drel_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/drel_util.dir/strings.cpp.o"
  "CMakeFiles/drel_util.dir/strings.cpp.o.d"
  "CMakeFiles/drel_util.dir/table.cpp.o"
  "CMakeFiles/drel_util.dir/table.cpp.o.d"
  "CMakeFiles/drel_util.dir/thread_pool.cpp.o"
  "CMakeFiles/drel_util.dir/thread_pool.cpp.o.d"
  "libdrel_util.a"
  "libdrel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
