# Empty dependencies file for drel_util.
# This may be replaced when dependencies are built.
