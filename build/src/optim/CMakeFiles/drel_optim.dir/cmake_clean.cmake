file(REMOVE_RECURSE
  "CMakeFiles/drel_optim.dir/admm.cpp.o"
  "CMakeFiles/drel_optim.dir/admm.cpp.o.d"
  "CMakeFiles/drel_optim.dir/fista.cpp.o"
  "CMakeFiles/drel_optim.dir/fista.cpp.o.d"
  "CMakeFiles/drel_optim.dir/gradient_descent.cpp.o"
  "CMakeFiles/drel_optim.dir/gradient_descent.cpp.o.d"
  "CMakeFiles/drel_optim.dir/lbfgs.cpp.o"
  "CMakeFiles/drel_optim.dir/lbfgs.cpp.o.d"
  "CMakeFiles/drel_optim.dir/line_search.cpp.o"
  "CMakeFiles/drel_optim.dir/line_search.cpp.o.d"
  "CMakeFiles/drel_optim.dir/objective.cpp.o"
  "CMakeFiles/drel_optim.dir/objective.cpp.o.d"
  "CMakeFiles/drel_optim.dir/scalar.cpp.o"
  "CMakeFiles/drel_optim.dir/scalar.cpp.o.d"
  "CMakeFiles/drel_optim.dir/sgd.cpp.o"
  "CMakeFiles/drel_optim.dir/sgd.cpp.o.d"
  "libdrel_optim.a"
  "libdrel_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
