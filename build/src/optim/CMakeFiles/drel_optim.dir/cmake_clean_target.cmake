file(REMOVE_RECURSE
  "libdrel_optim.a"
)
