# Empty compiler generated dependencies file for drel_optim.
# This may be replaced when dependencies are built.
