
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/admm.cpp" "src/optim/CMakeFiles/drel_optim.dir/admm.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/admm.cpp.o.d"
  "/root/repo/src/optim/fista.cpp" "src/optim/CMakeFiles/drel_optim.dir/fista.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/fista.cpp.o.d"
  "/root/repo/src/optim/gradient_descent.cpp" "src/optim/CMakeFiles/drel_optim.dir/gradient_descent.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/gradient_descent.cpp.o.d"
  "/root/repo/src/optim/lbfgs.cpp" "src/optim/CMakeFiles/drel_optim.dir/lbfgs.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/lbfgs.cpp.o.d"
  "/root/repo/src/optim/line_search.cpp" "src/optim/CMakeFiles/drel_optim.dir/line_search.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/line_search.cpp.o.d"
  "/root/repo/src/optim/objective.cpp" "src/optim/CMakeFiles/drel_optim.dir/objective.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/objective.cpp.o.d"
  "/root/repo/src/optim/scalar.cpp" "src/optim/CMakeFiles/drel_optim.dir/scalar.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/scalar.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/optim/CMakeFiles/drel_optim.dir/sgd.cpp.o" "gcc" "src/optim/CMakeFiles/drel_optim.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
