
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dro/ambiguity.cpp" "src/dro/CMakeFiles/drel_dro.dir/ambiguity.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/ambiguity.cpp.o.d"
  "/root/repo/src/dro/certificates.cpp" "src/dro/CMakeFiles/drel_dro.dir/certificates.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/certificates.cpp.o.d"
  "/root/repo/src/dro/chi_square.cpp" "src/dro/CMakeFiles/drel_dro.dir/chi_square.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/chi_square.cpp.o.d"
  "/root/repo/src/dro/group_dro.cpp" "src/dro/CMakeFiles/drel_dro.dir/group_dro.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/group_dro.cpp.o.d"
  "/root/repo/src/dro/kl.cpp" "src/dro/CMakeFiles/drel_dro.dir/kl.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/kl.cpp.o.d"
  "/root/repo/src/dro/label_shift.cpp" "src/dro/CMakeFiles/drel_dro.dir/label_shift.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/label_shift.cpp.o.d"
  "/root/repo/src/dro/robust_objective.cpp" "src/dro/CMakeFiles/drel_dro.dir/robust_objective.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/robust_objective.cpp.o.d"
  "/root/repo/src/dro/softmax_dro.cpp" "src/dro/CMakeFiles/drel_dro.dir/softmax_dro.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/softmax_dro.cpp.o.d"
  "/root/repo/src/dro/wasserstein.cpp" "src/dro/CMakeFiles/drel_dro.dir/wasserstein.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/wasserstein.cpp.o.d"
  "/root/repo/src/dro/wasserstein_regression.cpp" "src/dro/CMakeFiles/drel_dro.dir/wasserstein_regression.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/wasserstein_regression.cpp.o.d"
  "/root/repo/src/dro/worst_case.cpp" "src/dro/CMakeFiles/drel_dro.dir/worst_case.cpp.o" "gcc" "src/dro/CMakeFiles/drel_dro.dir/worst_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/drel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/drel_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
