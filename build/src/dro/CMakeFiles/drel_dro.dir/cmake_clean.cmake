file(REMOVE_RECURSE
  "CMakeFiles/drel_dro.dir/ambiguity.cpp.o"
  "CMakeFiles/drel_dro.dir/ambiguity.cpp.o.d"
  "CMakeFiles/drel_dro.dir/certificates.cpp.o"
  "CMakeFiles/drel_dro.dir/certificates.cpp.o.d"
  "CMakeFiles/drel_dro.dir/chi_square.cpp.o"
  "CMakeFiles/drel_dro.dir/chi_square.cpp.o.d"
  "CMakeFiles/drel_dro.dir/group_dro.cpp.o"
  "CMakeFiles/drel_dro.dir/group_dro.cpp.o.d"
  "CMakeFiles/drel_dro.dir/kl.cpp.o"
  "CMakeFiles/drel_dro.dir/kl.cpp.o.d"
  "CMakeFiles/drel_dro.dir/label_shift.cpp.o"
  "CMakeFiles/drel_dro.dir/label_shift.cpp.o.d"
  "CMakeFiles/drel_dro.dir/robust_objective.cpp.o"
  "CMakeFiles/drel_dro.dir/robust_objective.cpp.o.d"
  "CMakeFiles/drel_dro.dir/softmax_dro.cpp.o"
  "CMakeFiles/drel_dro.dir/softmax_dro.cpp.o.d"
  "CMakeFiles/drel_dro.dir/wasserstein.cpp.o"
  "CMakeFiles/drel_dro.dir/wasserstein.cpp.o.d"
  "CMakeFiles/drel_dro.dir/wasserstein_regression.cpp.o"
  "CMakeFiles/drel_dro.dir/wasserstein_regression.cpp.o.d"
  "CMakeFiles/drel_dro.dir/worst_case.cpp.o"
  "CMakeFiles/drel_dro.dir/worst_case.cpp.o.d"
  "libdrel_dro.a"
  "libdrel_dro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_dro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
