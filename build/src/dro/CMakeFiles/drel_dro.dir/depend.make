# Empty dependencies file for drel_dro.
# This may be replaced when dependencies are built.
