file(REMOVE_RECURSE
  "libdrel_dro.a"
)
