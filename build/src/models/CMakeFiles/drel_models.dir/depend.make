# Empty dependencies file for drel_models.
# This may be replaced when dependencies are built.
