file(REMOVE_RECURSE
  "libdrel_models.a"
)
