file(REMOVE_RECURSE
  "CMakeFiles/drel_models.dir/dataset.cpp.o"
  "CMakeFiles/drel_models.dir/dataset.cpp.o.d"
  "CMakeFiles/drel_models.dir/erm_objective.cpp.o"
  "CMakeFiles/drel_models.dir/erm_objective.cpp.o.d"
  "CMakeFiles/drel_models.dir/linear_model.cpp.o"
  "CMakeFiles/drel_models.dir/linear_model.cpp.o.d"
  "CMakeFiles/drel_models.dir/loss.cpp.o"
  "CMakeFiles/drel_models.dir/loss.cpp.o.d"
  "CMakeFiles/drel_models.dir/metrics.cpp.o"
  "CMakeFiles/drel_models.dir/metrics.cpp.o.d"
  "CMakeFiles/drel_models.dir/softmax.cpp.o"
  "CMakeFiles/drel_models.dir/softmax.cpp.o.d"
  "CMakeFiles/drel_models.dir/stochastic_erm.cpp.o"
  "CMakeFiles/drel_models.dir/stochastic_erm.cpp.o.d"
  "libdrel_models.a"
  "libdrel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
