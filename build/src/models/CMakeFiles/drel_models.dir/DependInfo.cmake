
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/dataset.cpp" "src/models/CMakeFiles/drel_models.dir/dataset.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/dataset.cpp.o.d"
  "/root/repo/src/models/erm_objective.cpp" "src/models/CMakeFiles/drel_models.dir/erm_objective.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/erm_objective.cpp.o.d"
  "/root/repo/src/models/linear_model.cpp" "src/models/CMakeFiles/drel_models.dir/linear_model.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/linear_model.cpp.o.d"
  "/root/repo/src/models/loss.cpp" "src/models/CMakeFiles/drel_models.dir/loss.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/loss.cpp.o.d"
  "/root/repo/src/models/metrics.cpp" "src/models/CMakeFiles/drel_models.dir/metrics.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/metrics.cpp.o.d"
  "/root/repo/src/models/softmax.cpp" "src/models/CMakeFiles/drel_models.dir/softmax.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/softmax.cpp.o.d"
  "/root/repo/src/models/stochastic_erm.cpp" "src/models/CMakeFiles/drel_models.dir/stochastic_erm.cpp.o" "gcc" "src/models/CMakeFiles/drel_models.dir/stochastic_erm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/drel_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
