# Empty dependencies file for drel_data.
# This may be replaced when dependencies are built.
