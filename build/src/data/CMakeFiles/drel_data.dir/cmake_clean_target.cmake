file(REMOVE_RECURSE
  "libdrel_data.a"
)
