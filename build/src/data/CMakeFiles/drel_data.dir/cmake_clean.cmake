file(REMOVE_RECURSE
  "CMakeFiles/drel_data.dir/csv_io.cpp.o"
  "CMakeFiles/drel_data.dir/csv_io.cpp.o.d"
  "CMakeFiles/drel_data.dir/multiclass_generator.cpp.o"
  "CMakeFiles/drel_data.dir/multiclass_generator.cpp.o.d"
  "CMakeFiles/drel_data.dir/scenarios.cpp.o"
  "CMakeFiles/drel_data.dir/scenarios.cpp.o.d"
  "CMakeFiles/drel_data.dir/shifts.cpp.o"
  "CMakeFiles/drel_data.dir/shifts.cpp.o.d"
  "CMakeFiles/drel_data.dir/task_generator.cpp.o"
  "CMakeFiles/drel_data.dir/task_generator.cpp.o.d"
  "libdrel_data.a"
  "libdrel_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
