
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_io.cpp" "src/data/CMakeFiles/drel_data.dir/csv_io.cpp.o" "gcc" "src/data/CMakeFiles/drel_data.dir/csv_io.cpp.o.d"
  "/root/repo/src/data/multiclass_generator.cpp" "src/data/CMakeFiles/drel_data.dir/multiclass_generator.cpp.o" "gcc" "src/data/CMakeFiles/drel_data.dir/multiclass_generator.cpp.o.d"
  "/root/repo/src/data/scenarios.cpp" "src/data/CMakeFiles/drel_data.dir/scenarios.cpp.o" "gcc" "src/data/CMakeFiles/drel_data.dir/scenarios.cpp.o.d"
  "/root/repo/src/data/shifts.cpp" "src/data/CMakeFiles/drel_data.dir/shifts.cpp.o" "gcc" "src/data/CMakeFiles/drel_data.dir/shifts.cpp.o.d"
  "/root/repo/src/data/task_generator.cpp" "src/data/CMakeFiles/drel_data.dir/task_generator.cpp.o" "gcc" "src/data/CMakeFiles/drel_data.dir/task_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/drel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/drel_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
