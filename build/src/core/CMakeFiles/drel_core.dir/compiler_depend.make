# Empty compiler generated dependencies file for drel_core.
# This may be replaced when dependencies are built.
