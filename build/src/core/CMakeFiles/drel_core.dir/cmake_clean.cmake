file(REMOVE_RECURSE
  "CMakeFiles/drel_core.dir/conformal.cpp.o"
  "CMakeFiles/drel_core.dir/conformal.cpp.o.d"
  "CMakeFiles/drel_core.dir/edge_learner.cpp.o"
  "CMakeFiles/drel_core.dir/edge_learner.cpp.o.d"
  "CMakeFiles/drel_core.dir/em_dro.cpp.o"
  "CMakeFiles/drel_core.dir/em_dro.cpp.o.d"
  "CMakeFiles/drel_core.dir/ensemble.cpp.o"
  "CMakeFiles/drel_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/drel_core.dir/model_selection.cpp.o"
  "CMakeFiles/drel_core.dir/model_selection.cpp.o.d"
  "CMakeFiles/drel_core.dir/softmax_edge_learner.cpp.o"
  "CMakeFiles/drel_core.dir/softmax_edge_learner.cpp.o.d"
  "CMakeFiles/drel_core.dir/streaming.cpp.o"
  "CMakeFiles/drel_core.dir/streaming.cpp.o.d"
  "libdrel_core.a"
  "libdrel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
