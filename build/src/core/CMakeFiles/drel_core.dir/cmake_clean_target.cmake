file(REMOVE_RECURSE
  "libdrel_core.a"
)
