
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conformal.cpp" "src/core/CMakeFiles/drel_core.dir/conformal.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/conformal.cpp.o.d"
  "/root/repo/src/core/edge_learner.cpp" "src/core/CMakeFiles/drel_core.dir/edge_learner.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/edge_learner.cpp.o.d"
  "/root/repo/src/core/em_dro.cpp" "src/core/CMakeFiles/drel_core.dir/em_dro.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/em_dro.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/core/CMakeFiles/drel_core.dir/ensemble.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/ensemble.cpp.o.d"
  "/root/repo/src/core/model_selection.cpp" "src/core/CMakeFiles/drel_core.dir/model_selection.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/model_selection.cpp.o.d"
  "/root/repo/src/core/softmax_edge_learner.cpp" "src/core/CMakeFiles/drel_core.dir/softmax_edge_learner.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/softmax_edge_learner.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/drel_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/drel_core.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dro/CMakeFiles/drel_dro.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/drel_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/drel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/drel_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
