# Empty compiler generated dependencies file for drel_linalg.
# This may be replaced when dependencies are built.
