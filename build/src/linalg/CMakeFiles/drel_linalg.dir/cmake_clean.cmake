file(REMOVE_RECURSE
  "CMakeFiles/drel_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/drel_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/drel_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/drel_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/drel_linalg.dir/matrix.cpp.o"
  "CMakeFiles/drel_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/drel_linalg.dir/qr.cpp.o"
  "CMakeFiles/drel_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/drel_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/drel_linalg.dir/vector_ops.cpp.o.d"
  "libdrel_linalg.a"
  "libdrel_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
