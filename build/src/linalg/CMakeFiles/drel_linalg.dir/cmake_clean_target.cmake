file(REMOVE_RECURSE
  "libdrel_linalg.a"
)
