# Empty compiler generated dependencies file for bench_fig9_collaborative.
# This may be replaced when dependencies are built.
