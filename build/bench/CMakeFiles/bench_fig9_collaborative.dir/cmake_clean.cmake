file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_collaborative.dir/bench_fig9_collaborative.cpp.o"
  "CMakeFiles/bench_fig9_collaborative.dir/bench_fig9_collaborative.cpp.o.d"
  "bench_fig9_collaborative"
  "bench_fig9_collaborative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_collaborative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
