# Empty dependencies file for bench_fig10_multiclass.
# This may be replaced when dependencies are built.
