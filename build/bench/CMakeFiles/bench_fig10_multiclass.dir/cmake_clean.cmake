file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multiclass.dir/bench_fig10_multiclass.cpp.o"
  "CMakeFiles/bench_fig10_multiclass.dir/bench_fig10_multiclass.cpp.o.d"
  "bench_fig10_multiclass"
  "bench_fig10_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
