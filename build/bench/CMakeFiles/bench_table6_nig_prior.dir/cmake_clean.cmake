file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_nig_prior.dir/bench_table6_nig_prior.cpp.o"
  "CMakeFiles/bench_table6_nig_prior.dir/bench_table6_nig_prior.cpp.o.d"
  "bench_table6_nig_prior"
  "bench_table6_nig_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_nig_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
