# Empty compiler generated dependencies file for bench_table6_nig_prior.
# This may be replaced when dependencies are built.
