file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_lifecycle.dir/bench_fig14_lifecycle.cpp.o"
  "CMakeFiles/bench_fig14_lifecycle.dir/bench_fig14_lifecycle.cpp.o.d"
  "bench_fig14_lifecycle"
  "bench_fig14_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
