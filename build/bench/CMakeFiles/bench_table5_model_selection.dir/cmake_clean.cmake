file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_model_selection.dir/bench_table5_model_selection.cpp.o"
  "CMakeFiles/bench_table5_model_selection.dir/bench_table5_model_selection.cpp.o.d"
  "bench_table5_model_selection"
  "bench_table5_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
