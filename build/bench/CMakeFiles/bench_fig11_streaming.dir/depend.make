# Empty dependencies file for bench_fig11_streaming.
# This may be replaced when dependencies are built.
