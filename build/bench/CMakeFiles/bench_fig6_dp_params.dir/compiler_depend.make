# Empty compiler generated dependencies file for bench_fig6_dp_params.
# This may be replaced when dependencies are built.
