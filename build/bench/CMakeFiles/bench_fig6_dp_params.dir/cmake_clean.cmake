file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dp_params.dir/bench_fig6_dp_params.cpp.o"
  "CMakeFiles/bench_fig6_dp_params.dir/bench_fig6_dp_params.cpp.o.d"
  "bench_fig6_dp_params"
  "bench_fig6_dp_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dp_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
