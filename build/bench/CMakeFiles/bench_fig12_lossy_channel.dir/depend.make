# Empty dependencies file for bench_fig12_lossy_channel.
# This may be replaced when dependencies are built.
