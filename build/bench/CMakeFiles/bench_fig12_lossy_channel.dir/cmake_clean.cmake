file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lossy_channel.dir/bench_fig12_lossy_channel.cpp.o"
  "CMakeFiles/bench_fig12_lossy_channel.dir/bench_fig12_lossy_channel.cpp.o.d"
  "bench_fig12_lossy_channel"
  "bench_fig12_lossy_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lossy_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
