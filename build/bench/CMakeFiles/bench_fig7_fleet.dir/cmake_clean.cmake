file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fleet.dir/bench_fig7_fleet.cpp.o"
  "CMakeFiles/bench_fig7_fleet.dir/bench_fig7_fleet.cpp.o.d"
  "bench_fig7_fleet"
  "bench_fig7_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
