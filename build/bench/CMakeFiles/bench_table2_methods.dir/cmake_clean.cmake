file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_methods.dir/bench_table2_methods.cpp.o"
  "CMakeFiles/bench_table2_methods.dir/bench_table2_methods.cpp.o.d"
  "bench_table2_methods"
  "bench_table2_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
