
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_methods.cpp" "bench/CMakeFiles/bench_table2_methods.dir/bench_table2_methods.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_methods.dir/bench_table2_methods.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/edgesim/CMakeFiles/drel_edgesim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/drel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/drel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/drel_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/dro/CMakeFiles/drel_dro.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/drel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/drel_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drel_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/drel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
