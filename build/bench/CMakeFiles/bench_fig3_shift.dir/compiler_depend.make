# Empty compiler generated dependencies file for bench_fig3_shift.
# This may be replaced when dependencies are built.
