# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iot_anomaly "/root/repo/build/examples/iot_anomaly" "3")
set_tests_properties(example_iot_anomaly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_device_fleet "/root/repo/build/examples/device_fleet" "3" "4")
set_tests_properties(example_device_fleet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_robust_sensing "/root/repo/build/examples/robust_sensing" "3")
set_tests_properties(example_robust_sensing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gesture_multiclass "/root/repo/build/examples/gesture_multiclass" "3")
set_tests_properties(example_gesture_multiclass PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_monitor "/root/repo/build/examples/streaming_monitor" "3")
set_tests_properties(example_streaming_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pipeline "bash" "-c" "set -e; dir=\$(mktemp -d); trap 'rm -rf \$dir' EXIT;         /root/repo/build/examples/drel_cli demo-data --dir \$dir --contributors 6 --contributor-samples 120 &&         /root/repo/build/examples/drel_cli fit-prior --out \$dir/prior.bin \$dir/contributor_*.csv &&         /root/repo/build/examples/drel_cli inspect-prior --prior \$dir/prior.bin &&         /root/repo/build/examples/drel_cli train --prior \$dir/prior.bin --data \$dir/edge_train.csv --out \$dir/model.txt &&         /root/repo/build/examples/drel_cli eval --model \$dir/model.txt --data \$dir/edge_test.csv --epsilon 0.3")
set_tests_properties(example_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
