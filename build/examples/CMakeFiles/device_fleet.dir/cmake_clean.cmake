file(REMOVE_RECURSE
  "CMakeFiles/device_fleet.dir/device_fleet.cpp.o"
  "CMakeFiles/device_fleet.dir/device_fleet.cpp.o.d"
  "device_fleet"
  "device_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
