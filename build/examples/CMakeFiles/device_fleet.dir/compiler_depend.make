# Empty compiler generated dependencies file for device_fleet.
# This may be replaced when dependencies are built.
