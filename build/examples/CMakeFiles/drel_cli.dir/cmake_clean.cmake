file(REMOVE_RECURSE
  "CMakeFiles/drel_cli.dir/drel_cli.cpp.o"
  "CMakeFiles/drel_cli.dir/drel_cli.cpp.o.d"
  "drel_cli"
  "drel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
