# Empty dependencies file for drel_cli.
# This may be replaced when dependencies are built.
