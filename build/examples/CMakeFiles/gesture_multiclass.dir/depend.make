# Empty dependencies file for gesture_multiclass.
# This may be replaced when dependencies are built.
