file(REMOVE_RECURSE
  "CMakeFiles/gesture_multiclass.dir/gesture_multiclass.cpp.o"
  "CMakeFiles/gesture_multiclass.dir/gesture_multiclass.cpp.o.d"
  "gesture_multiclass"
  "gesture_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
