file(REMOVE_RECURSE
  "CMakeFiles/robust_sensing.dir/robust_sensing.cpp.o"
  "CMakeFiles/robust_sensing.dir/robust_sensing.cpp.o.d"
  "robust_sensing"
  "robust_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
