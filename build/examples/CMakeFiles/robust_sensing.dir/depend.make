# Empty dependencies file for robust_sensing.
# This may be replaced when dependencies are built.
