# Empty dependencies file for iot_anomaly.
# This may be replaced when dependencies are built.
